"""``memops`` — unrolled memcpy / memset / checksum (copy-heavy).

Models the copy loops that dominate OS and I/O paths: balanced load and
store streams with perfect spatial locality.  Store combining is the
technique with the most to win here.
"""

from __future__ import annotations

NAME = "memops"
DESCRIPTION = "unrolled memcpy + memset + checksum (store-heavy)"
TAGS = ("memory-dense", "store-heavy", "local")


def source(n: int = 1024, reps: int = 8) -> str:
    """Assembly: memset, memcpy and checksum *n* bytes, *reps* times."""
    if n % 32 or n <= 0:
        raise ValueError("n must be a positive multiple of 32")
    if reps <= 0:
        raise ValueError("reps must be positive")
    return f"""
.equ SYS_EXIT, 1
.equ N, {n}
.data
src_buf: .space {n}
dst_buf: .space {n}
.text
main:
    li   s3, {reps}
    li   s4, 0                 # checksum accumulator
outer:
    # -- memset: src_buf[i] = pattern (8B at a time, unrolled x4) ------
    la   t0, src_buf
    li   t1, N / 32
    li   t2, 0x0101010101      # fits in 35 bits; pattern per rep
    add  t2, t2, s3
set_loop:
    sd   t2, 0(t0)
    sd   t2, 8(t0)
    sd   t2, 16(t0)
    sd   t2, 24(t0)
    addi t0, t0, 32
    subi t1, t1, 1
    bnez t1, set_loop
    # -- memcpy: dst_buf = src_buf (unrolled x4) ------------------------
    la   t0, src_buf
    la   t3, dst_buf
    li   t1, N / 32
copy_loop:
    ld   t4, 0(t0)
    ld   t5, 8(t0)
    ld   t6, 16(t0)
    ld   s0, 24(t0)
    sd   t4, 0(t3)
    sd   t5, 8(t3)
    sd   t6, 16(t3)
    sd   s0, 24(t3)
    addi t0, t0, 32
    addi t3, t3, 32
    subi t1, t1, 1
    bnez t1, copy_loop
    # -- checksum dst (unrolled x2) -------------------------------------
    la   t0, dst_buf
    li   t1, N / 16
sum_loop:
    ld   t4, 0(t0)
    ld   t5, 8(t0)
    add  s4, s4, t4
    add  s4, s4, t5
    addi t0, t0, 16
    subi t1, t1, 1
    bnez t1, sum_loop
    subi s3, s3, 1
    bnez s3, outer
    li   t5, 0xffff
    and  a0, s4, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(n: int = 1024, reps: int = 8) -> int:
    total = 0
    for rep in range(reps, 0, -1):
        pattern = (0x0101010101 + rep) & ((1 << 64) - 1)
        total += pattern * (n // 8)
    return total & 0xFFFF
