"""``wc`` — word/line/character classification over text (branchy).

Byte loads with data-dependent branches every few instructions — the
eqntott/espresso-style low-memory-density end of the space, where the
branch predictor rather than the cache port governs performance.
"""

from __future__ import annotations

NAME = "wc"
DESCRIPTION = "word, line and digit counting over embedded text"
TAGS = ("branchy", "byte-oriented")

_WORDS = ("the", "cache", "port", "is", "busy", "line", "buffer", "wide",
          "load", "store", "combine", "91")


def make_text(words: int, seed: int) -> bytes:
    """Deterministic pseudo-prose."""
    out: list[str] = []
    x = seed & 0x7FFFFFFF
    for count in range(words):
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        out.append(_WORDS[(x >> 16) % len(_WORDS)])
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        out.append("\n" if (x >> 20) % 9 == 0 else " ")
    return "".join(out).encode()


def reference_counts(text: bytes) -> tuple[int, int, int]:
    """(words, lines, digits) exactly as the assembly counts them."""
    words = lines = digits = 0
    in_word = False
    for byte in text:
        if byte == ord("\n"):
            lines += 1
        if ord("0") <= byte <= ord("9"):
            digits += 1
        is_sep = byte in (ord(" "), ord("\n"), ord("\t"))
        if is_sep:
            in_word = False
        elif not in_word:
            in_word = True
            words += 1
    return words, lines, digits


def source(words: int = 600, seed: int = 3) -> str:
    """Assembly: scan the embedded text, count words/lines/digits."""
    text = make_text(words, seed)
    data_bytes = ", ".join(str(b) for b in text)
    return f"""
.equ SYS_EXIT, 1
.equ LEN, {len(text)}
.data
text: .byte {data_bytes}
.text
main:
    la   s0, text
    li   s1, LEN
    li   s2, 0                 # words
    li   s3, 0                 # lines
    li   s4, 0                 # digits
    li   s5, 0                 # in_word flag
scan:
    lbu  t0, 0(s0)
    addi s0, s0, 1
    li   t1, '\\n'
    bne  t0, t1, not_nl
    addi s3, s3, 1
not_nl:
    li   t1, '0'
    blt  t0, t1, not_digit
    li   t1, '9'
    bgt  t0, t1, not_digit
    addi s4, s4, 1
not_digit:
    li   t1, ' '
    beq  t0, t1, separator
    li   t1, '\\n'
    beq  t0, t1, separator
    li   t1, '\\t'
    beq  t0, t1, separator
    bnez s5, next              # already inside a word
    li   s5, 1
    addi s2, s2, 1
    j    next
separator:
    li   s5, 0
next:
    subi s1, s1, 1
    bnez s1, scan
    # exit = words * 2^20 + lines * 2^10 + digits
    slli a0, s2, 20
    slli t0, s3, 10
    add  a0, a0, t0
    add  a0, a0, s4
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(words: int = 600, seed: int = 3) -> int:
    word_count, lines, digits = reference_counts(make_text(words, seed))
    return (word_count << 20) + (lines << 10) + digits
