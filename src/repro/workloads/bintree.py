"""``bintree`` — binary search tree insert + search (health-like).

Pointer-linked data structure with data-dependent branching on every
level: a mix of the ``linked`` workload's dependent loads and real
compare-and-branch control flow.  Nodes are allocated from a bump
pointer, so tree layout is allocation-ordered while traversal order is
key-ordered — the classic locality mismatch.
"""

from __future__ import annotations

NAME = "bintree"
DESCRIPTION = "binary search tree build + membership queries"
TAGS = ("irregular", "branchy", "latency-bound")

_LCG_MUL = 6364136223846793005
_LCG_ADD = 1442695040888963407
_MASK64 = (1 << 64) - 1

_NODE = 24  # key(8) left(8) right(8)


def _keys(count: int, seed: int) -> list[int]:
    keys = []
    x = seed
    for _ in range(count):
        x = (x * _LCG_MUL + _LCG_ADD) & _MASK64
        keys.append((x >> 33) & 0xFFFF)
    return keys


def reference_result(n: int, queries: int, seed: int) -> int:
    """Exact model of the assembly's found-counter checksum."""
    tree: set[int] = set()
    for key in _keys(n, seed):
        tree.add(key)
    found = 0
    for key in _keys(queries, seed + 1):
        if key in tree:
            found += 1
    return found


def source(n: int = 256, queries: int = 512, seed: int = 17) -> str:
    """Assembly: insert *n* keys, run *queries* membership probes."""
    if n < 1 or queries < 1:
        raise ValueError("n and queries must be positive")
    return f"""
.equ SYS_EXIT, 1
.equ NODE, {_NODE}
.data
.align 8
pool:  .space {(n + 1) * _NODE}
.text
main:
    # s0 = bump pointer, s1 = root (0 until first insert)
    la   s0, pool
    li   s1, 0
    # -- insert phase --------------------------------------------------
    li   s2, {seed}            # lcg state
    li   s3, {n}
    li   s8, {_LCG_MUL}
    li   s9, {_LCG_ADD}
    li   s10, 0xffff
ins_loop:
    mul  s2, s2, s8
    add  s2, s2, s9
    srli t0, s2, 33
    and  t0, t0, s10           # key
    jal  insert
    subi s3, s3, 1
    bnez s3, ins_loop
    # -- query phase ----------------------------------------------------
    li   s2, {seed + 1}
    li   s3, {queries}
    li   s4, 0                 # found counter
qry_loop:
    mul  s2, s2, s8
    add  s2, s2, s9
    srli t0, s2, 33
    and  t0, t0, s10
    jal  search
    add  s4, s4, a0
    subi s3, s3, 1
    bnez s3, qry_loop
    mv   a0, s4
    li   a7, SYS_EXIT
    syscall 0

# -- insert(t0 = key); clobbers t1-t4; duplicate keys are dropped --------
insert:
    bnez s1, ins_walk
    mv   s1, s0                # first node becomes the root
    j    ins_alloc
ins_walk:
    mv   t1, s1
ins_step:
    ld   t2, 0(t1)             # node key
    beq  t2, t0, ins_done      # duplicate
    blt  t0, t2, ins_left
    ld   t3, 16(t1)            # right child
    beqz t3, ins_link_right
    mv   t1, t3
    j    ins_step
ins_left:
    ld   t3, 8(t1)             # left child
    beqz t3, ins_link_left
    mv   t1, t3
    j    ins_step
ins_link_left:
    sd   s0, 8(t1)
    j    ins_alloc
ins_link_right:
    sd   s0, 16(t1)
ins_alloc:
    sd   t0, 0(s0)             # key
    sd   zero, 8(s0)
    sd   zero, 16(s0)
    addi s0, s0, NODE
ins_done:
    ret

# -- search(t0 = key) -> a0 = 1 if present ------------------------------
search:
    mv   t1, s1
sea_step:
    beqz t1, sea_miss
    ld   t2, 0(t1)
    beq  t2, t0, sea_hit
    blt  t0, t2, sea_left
    ld   t1, 16(t1)
    j    sea_step
sea_left:
    ld   t1, 8(t1)
    j    sea_step
sea_hit:
    li   a0, 1
    ret
sea_miss:
    li   a0, 0
    ret
"""


def expected_exit(n: int = 256, queries: int = 512, seed: int = 17) -> int:
    return reference_result(n, queries, seed)
