"""``matmul`` — double-precision matrix multiply (FP + mixed strides).

Row-major ``C = A @ B`` with the inner product unrolled by two: the A
row streams (unit stride, line-buffer friendly) while the B column
strides a full row (one access per line).  Exercises the FP pipeline
and the FLD/FSD path.
"""

from __future__ import annotations

NAME = "matmul"
DESCRIPTION = "double-precision N x N matrix multiply"
TAGS = ("fp", "mixed-stride")


def _a(i: int, j: int, n: int) -> float:
    return float((i * n + j) % 23)


def _b(i: int, j: int) -> float:
    return 2.0 if i == j else 1.0


def source(n: int = 16) -> str:
    """Assembly: fill A and B, multiply, checksum C."""
    if n < 2 or n % 2:
        raise ValueError("n must be an even integer >= 2")
    row_bytes = n * 8
    return f"""
.equ SYS_EXIT, 1
.equ N, {n}
.equ ROW, {row_bytes}
.data
.align 8
A: .space {n * n * 8}
B: .space {n * n * 8}
C: .space {n * n * 8}
.text
main:
    # -- fill A[i][j] = (i*N+j) % 23, B = I + ones ----------------------
    la   t0, A
    li   t1, 0                 # k = i*N + j
    li   t2, N * N
    li   t6, 23
fill_a:
    rem  t3, t1, t6
    fcvt.d.l f0, t3
    fsd  f0, 0(t0)
    addi t0, t0, 8
    addi t1, t1, 1
    bne  t1, t2, fill_a
    la   t0, B
    li   t1, 0                 # i
fill_b_row:
    li   t2, 0                 # j
fill_b_col:
    li   t3, 1
    bne  t1, t2, fill_b_store
    li   t3, 2
fill_b_store:
    fcvt.d.l f0, t3
    fsd  f0, 0(t0)
    addi t0, t0, 8
    addi t2, t2, 1
    li   t4, N
    bne  t2, t4, fill_b_col
    addi t1, t1, 1
    bne  t1, t4, fill_b_row
    # -- C = A @ B (inner product unrolled x2) ---------------------------
    la   s0, A                 # A row pointer
    la   s2, C                 # C pointer
    li   s3, 0                 # i
mm_i:
    li   s4, 0                 # j
mm_j:
    la   s1, B
    slli t0, s4, 3
    add  s1, s1, t0            # &B[0][j]
    mv   t1, s0                # &A[i][0]
    li   t2, N / 2             # k pairs
    fcvt.d.l f2, zero          # acc = 0
mm_k:
    fld  f0, 0(t1)
    fld  f1, 0(s1)
    fmul f0, f0, f1
    fadd f2, f2, f0
    fld  f0, 8(t1)
    fld  f1, ROW(s1)
    fmul f0, f0, f1
    fadd f2, f2, f0
    addi t1, t1, 16
    addi s1, s1, ROW * 2
    subi t2, t2, 1
    bnez t2, mm_k
    fsd  f2, 0(s2)
    addi s2, s2, 8
    addi s4, s4, 1
    li   t4, N
    bne  s4, t4, mm_j
    addi s0, s0, ROW
    addi s3, s3, 1
    bne  s3, t4, mm_i
    # -- checksum: sum C[k] * (k % 7 + 1), truncated to integer ----------
    la   t0, C
    li   t1, 0
    li   t2, N * N
    li   t6, 7
    fcvt.d.l f3, zero
chk:
    fld  f0, 0(t0)
    rem  t3, t1, t6
    addi t3, t3, 1
    fcvt.d.l f1, t3
    fmul f0, f0, f1
    fadd f3, f3, f0
    addi t0, t0, 8
    addi t1, t1, 1
    bne  t1, t2, chk
    fcvt.l.d t5, f3
    li   t6, 0x3fffffff
    and  a0, t5, t6
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(n: int = 16) -> int:
    c_flat: list[float] = []
    for i in range(n):
        for j in range(n):
            c_flat.append(sum(_a(i, k, n) * _b(k, j) for k in range(n)))
    checksum = sum(value * (k % 7 + 1) for k, value in enumerate(c_flat))
    return int(checksum) & 0x3FFFFFFF
