"""``compress`` — LZW-style dictionary compression (hash probing).

The SPEC-compress analogue: byte loads over an input text, hashed
dictionary probes over a large table (irregular loads), inserts
(scattered stores).  Spatial locality is poor, so the line buffer has
little to latch onto — a deliberate contrast to ``stream``/``memops``.
"""

from __future__ import annotations

NAME = "compress"
DESCRIPTION = "LZW-style compression with a hashed dictionary"
TAGS = ("irregular", "byte-oriented")

_TABLE_ENTRIES = 4096
_HASH_MUL = 2654435761
_ALPHABET = b"abcdefgh Z\n"


def make_input(length: int, seed: int) -> bytes:
    """Deterministic pseudo-text with runs (so LZW finds matches)."""
    out = bytearray()
    x = seed & 0xFFFFFFFF
    while len(out) < length:
        x = (x * 1103515245 + 12345) & 0x7FFFFFFF
        symbol = _ALPHABET[(x >> 16) % len(_ALPHABET)]
        run = 1 + ((x >> 8) & 3)
        out += bytes([symbol]) * run
    return bytes(out[:length])


def reference_compress(data: bytes) -> int:
    """Bit-exact Python model of the assembly algorithm's checksum."""
    if not data:
        raise ValueError("empty input")
    table: dict[int, tuple[int, int]] = {}  # slot -> (key, value)
    mask = _TABLE_ENTRIES - 1
    code = data[0]
    next_code = 256
    checksum = 0
    for byte in data[1:]:
        key = (code << 8) | byte
        slot = ((key * _HASH_MUL) >> 16) & mask
        while True:
            entry = table.get(slot)
            if entry is None:
                table[slot] = (key, next_code)
                next_code += 1
                checksum += code
                code = byte
                break
            if entry[0] == key:
                code = entry[1]
                break
            slot = (slot + 1) & mask
    checksum += code
    return checksum & 0x3FFFFFFF


def source(length: int = 1500, seed: int = 99) -> str:
    """Assembly: LZW-compress an embedded pseudo-text."""
    data = make_input(length, seed)
    if len(data) >= _TABLE_ENTRIES - 64:
        raise ValueError("input too long for the dictionary table")
    input_bytes = ", ".join(str(b) for b in data)
    return f"""
.equ SYS_EXIT, 1
.equ LEN, {len(data)}
.equ TAB_MASK, {_TABLE_ENTRIES - 1}
.data
.align 8
table: .space {_TABLE_ENTRIES * 16}
input: .byte {input_bytes}
.text
main:
    la   s0, input
    lbu  s1, 0(s0)             # code = first byte
    addi s0, s0, 1
    li   s2, 256               # next dictionary code
    li   s3, 0                 # checksum of emitted codes
    li   s4, LEN - 1           # bytes remaining
    li   s5, {_HASH_MUL}
    la   s6, table
loop:
    beqz s4, done
    lbu  t0, 0(s0)             # c
    addi s0, s0, 1
    subi s4, s4, 1
    slli t1, s1, 8
    or   t1, t1, t0            # key = code<<8 | c
    mul  t3, t1, s5
    srli t3, t3, 16
    andi t3, t3, TAB_MASK
probe:
    slli t4, t3, 4
    add  t4, t4, s6
    ld   t6, 0(t4)
    beq  t6, t1, found
    beqz t6, empty
    addi t3, t3, 1
    andi t3, t3, TAB_MASK
    j    probe
found:
    ld   s1, 8(t4)
    j    loop
empty:
    sd   t1, 0(t4)
    sd   s2, 8(t4)
    addi s2, s2, 1
    add  s3, s3, s1            # emit current code
    mv   s1, t0
    j    loop
done:
    add  s3, s3, s1            # emit the final code
    li   t5, 0x3fffffff
    and  a0, s3, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(length: int = 1500, seed: int = 99) -> int:
    return reference_compress(make_input(length, seed))
