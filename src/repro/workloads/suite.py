"""The workload suite: registry, trace building, and the OS mix.

Every workload is an assembly program that verifies its own result and
exits with a checksum; :func:`build_trace` runs it on the functional
simulator, asserts the checksum, and returns the dynamic trace the
timing core consumes.  Traces are cached per (workload, scale) so a
grid of machine configurations reuses one functional run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..asm import assemble
from ..func.exceptions import SimError
from ..func.run import run_bare
from ..kernel import assemble_user, run_system
from ..trace.record import TraceRecord
from . import (
    bintree,
    compress,
    linkedlist,
    matmul,
    memops,
    qsort,
    spmv,
    stream,
    wordcount,
)

_MODULES = (stream, memops, qsort, compress, linkedlist, matmul,
            wordcount, bintree, spmv)


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload."""

    name: str
    description: str
    tags: tuple[str, ...]
    source: Callable[..., str]
    expected_exit: Callable[..., int]
    #: Parameter presets, smallest first: "tiny" (tests), "small"
    #: (benchmarks), "full" (examples / longer runs).
    scales: dict[str, dict[str, int]] = field(default_factory=dict)

    def params(self, scale: str) -> dict[str, int]:
        try:
            return self.scales[scale]
        except KeyError:
            raise ValueError(
                f"workload {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.scales)}") from None


_SCALES: dict[str, dict[str, dict[str, int]]] = {
    "stream": {
        "tiny": {"n": 128, "reps": 3},
        "small": {"n": 512, "reps": 12},
        "full": {"n": 2048, "reps": 24},
    },
    "memops": {
        "tiny": {"n": 256, "reps": 2},
        "small": {"n": 1024, "reps": 8},
        "full": {"n": 4096, "reps": 16},
    },
    "qsort": {
        "tiny": {"n": 64},
        "small": {"n": 300},
        "full": {"n": 1200},
    },
    "compress": {
        "tiny": {"length": 300},
        "small": {"length": 1500},
        "full": {"length": 3500},
    },
    "linked": {
        "tiny": {"n": 64, "rounds": 3},
        "small": {"n": 512, "rounds": 6},
        "full": {"n": 2048, "rounds": 10},
    },
    "matmul": {
        "tiny": {"n": 8},
        "small": {"n": 16},
        "full": {"n": 28},
    },
    "wc": {
        "tiny": {"words": 150},
        "small": {"words": 600},
        "full": {"words": 2500},
    },
    "bintree": {
        "tiny": {"n": 64, "queries": 128},
        "small": {"n": 200, "queries": 500},
        "full": {"n": 1200, "queries": 4000},
    },
    "spmv": {
        "tiny": {"rows": 24, "per_row": 6},
        "small": {"rows": 64, "per_row": 8},
        "full": {"rows": 150, "per_row": 12},
    },
}


def _build_registry() -> dict[str, WorkloadSpec]:
    registry: dict[str, WorkloadSpec] = {}
    for module in _MODULES:
        name = module.NAME
        registry[name] = WorkloadSpec(
            name=name,
            description=module.DESCRIPTION,
            tags=tuple(module.TAGS),
            source=module.source,
            expected_exit=module.expected_exit,
            scales=_SCALES[name],
        )
    return registry


#: All registered single-program workloads, keyed by name.
WORKLOADS: dict[str, WorkloadSpec] = _build_registry()

#: The default evaluation suite, in presentation order.
SUITE_NAMES = ("compress", "wc", "qsort", "bintree", "linked", "spmv",
               "stream", "memops", "matmul")

_trace_cache: dict[tuple, list[TraceRecord]] = {}


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _trace_cache.clear()


def build_trace(name: str, scale: str = "small",
                max_instructions: int = 3_000_000) -> list[TraceRecord]:
    """Functionally execute a workload and return its verified trace."""
    key = (name, scale)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    spec = WORKLOADS[name]
    params = spec.params(scale)
    program = assemble(spec.source(**params), source_name=f"<{name}>")
    result = run_bare(program, max_instructions=max_instructions,
                      collect_trace=True)
    expected = spec.expected_exit(**params)
    if result.exit_code != expected:
        raise SimError(
            f"workload {name!r} ({scale}) self-check failed: "
            f"exit {result.exit_code}, expected {expected}")
    _trace_cache[key] = result.trace
    return result.trace


#: Workloads composing the multiprogrammed OS mix, with per-scale params.
OS_MIX_MEMBERS = ("compress", "qsort", "memops")

#: Timer interval (instructions between preemptions) per scale.
OS_MIX_TIMER = {"tiny": 300, "small": 1500, "full": 5000}


def build_os_mix_trace(scale: str = "small", members=OS_MIX_MEMBERS,
                       timer_interval: int | None = None,
                       max_instructions: int = 8_000_000,
                       ) -> list[TraceRecord]:
    """A multiprogrammed mix under the mini-OS (kernel in the trace)."""
    key = ("os-mix", scale, tuple(members), timer_interval)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    interval = timer_interval if timer_interval is not None \
        else OS_MIX_TIMER[scale]
    programs = []
    expected = []
    for slot, name in enumerate(members):
        spec = WORKLOADS[name]
        params = spec.params(scale)
        programs.append(assemble_user(spec.source(**params), slot=slot,
                                      source_name=f"<{name}>"))
        expected.append(spec.expected_exit(**params))
    result = run_system(programs, timer_interval=interval,
                        max_instructions=max_instructions,
                        collect_trace=True)
    if result.process_exit_codes != expected:
        raise SimError(
            f"OS mix self-check failed: exits {result.process_exit_codes}, "
            f"expected {expected}")
    _trace_cache[key] = result.trace
    return result.trace


def trace_summary(trace: list[TraceRecord]) -> dict[str, float]:
    """Static characteristics of a trace (for T1-style tables)."""
    total = len(trace)
    loads = sum(1 for r in trace if r.is_load)
    stores = sum(1 for r in trace if r.is_store)
    branches = sum(1 for r in trace if r.is_control)
    kernel = sum(1 for r in trace if r.kernel)
    return {
        "instructions": total,
        "load_fraction": loads / total if total else 0.0,
        "store_fraction": stores / total if total else 0.0,
        "branch_fraction": branches / total if total else 0.0,
        "kernel_fraction": kernel / total if total else 0.0,
    }
