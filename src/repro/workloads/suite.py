"""The workload suite: registry, trace building, and the OS mix.

Every workload is an assembly program that verifies its own result and
exits with a checksum; :func:`build_trace` runs it on the functional
simulator, asserts the checksum, and returns the dynamic trace the
timing core consumes.  Traces are cached in two tiers so a grid of
machine configurations reuses one functional run:

* an in-process dictionary (as before), and
* a persistent on-disk tier (``~/.cache/repro-traces`` by default,
  overridable with ``REPRO_TRACE_CACHE`` / ``repro ... --trace-cache``)
  shared by parallel experiment workers and by repeat runs — a warm
  cache skips functional simulation entirely.

Disk entries are keyed by (workload, scale, content digest, trace
format version): the digest covers the generated assembly source and
build parameters, so editing a workload generator or bumping
``trace.io.FORMAT_VERSION`` invalidates stale entries instead of
silently serving them.  Disk I/O failures degrade to memory-only
caching; they never fail a run.
"""

from __future__ import annotations

import functools
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..asm import assemble
from ..func.exceptions import SimError
from ..func.run import run_bare
from ..kernel import assemble_user, run_system
from ..obs import spans as obs_spans
from ..trace import io as trace_io
from ..trace.record import TraceRecord
from . import (
    bintree,
    compress,
    linkedlist,
    matmul,
    memops,
    qsort,
    spmv,
    stream,
    wordcount,
)

_MODULES = (stream, memops, qsort, compress, linkedlist, matmul,
            wordcount, bintree, spmv)


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload."""

    name: str
    description: str
    tags: tuple[str, ...]
    source: Callable[..., str]
    expected_exit: Callable[..., int]
    #: Parameter presets, smallest first: "tiny" (tests), "small"
    #: (benchmarks), "full" (examples / longer runs).
    scales: dict[str, dict[str, int]] = field(default_factory=dict)

    def params(self, scale: str) -> dict[str, int]:
        try:
            return self.scales[scale]
        except KeyError:
            raise ValueError(
                f"workload {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.scales)}") from None


_SCALES: dict[str, dict[str, dict[str, int]]] = {
    "stream": {
        "tiny": {"n": 128, "reps": 3},
        "small": {"n": 512, "reps": 12},
        "full": {"n": 2048, "reps": 24},
    },
    "memops": {
        "tiny": {"n": 256, "reps": 2},
        "small": {"n": 1024, "reps": 8},
        "full": {"n": 4096, "reps": 16},
    },
    "qsort": {
        "tiny": {"n": 64},
        "small": {"n": 300},
        "full": {"n": 1200},
    },
    "compress": {
        "tiny": {"length": 300},
        "small": {"length": 1500},
        "full": {"length": 3500},
    },
    "linked": {
        "tiny": {"n": 64, "rounds": 3},
        "small": {"n": 512, "rounds": 6},
        "full": {"n": 2048, "rounds": 10},
    },
    "matmul": {
        "tiny": {"n": 8},
        "small": {"n": 16},
        "full": {"n": 28},
    },
    "wc": {
        "tiny": {"words": 150},
        "small": {"words": 600},
        "full": {"words": 2500},
    },
    "bintree": {
        "tiny": {"n": 64, "queries": 128},
        "small": {"n": 200, "queries": 500},
        "full": {"n": 1200, "queries": 4000},
    },
    "spmv": {
        "tiny": {"rows": 24, "per_row": 6},
        "small": {"rows": 64, "per_row": 8},
        "full": {"rows": 150, "per_row": 12},
    },
}


def _build_registry() -> dict[str, WorkloadSpec]:
    registry: dict[str, WorkloadSpec] = {}
    for module in _MODULES:
        name = module.NAME
        registry[name] = WorkloadSpec(
            name=name,
            description=module.DESCRIPTION,
            tags=tuple(module.TAGS),
            source=module.source,
            expected_exit=module.expected_exit,
            scales=_SCALES[name],
        )
    return registry


#: All registered single-program workloads, keyed by name.
WORKLOADS: dict[str, WorkloadSpec] = _build_registry()

#: The default evaluation suite, in presentation order.
SUITE_NAMES = ("compress", "wc", "qsort", "bintree", "linked", "spmv",
               "stream", "memops", "matmul")

_trace_cache: dict[tuple, list[TraceRecord]] = {}

#: Values of ``REPRO_TRACE_CACHE`` (or ``--trace-cache``) that disable
#: the disk tier.
_DISABLE_VALUES = frozenset({"", "0", "off", "none"})

#: Sentinel distinguishing "never configured" from "explicitly None".
_UNSET = object()

_disk_dir: object = _UNSET

_cache_stats = {"memory_hits": 0, "disk_hits": 0, "builds": 0}


def _default_cache_dir() -> Path | None:
    env = os.environ.get("REPRO_TRACE_CACHE")
    if env is not None:
        if env.strip().lower() in _DISABLE_VALUES:
            return None
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-traces"


def trace_cache_dir() -> Path | None:
    """The disk cache directory, or None when the disk tier is off."""
    global _disk_dir
    if _disk_dir is _UNSET:
        _disk_dir = _default_cache_dir()
    return _disk_dir  # type: ignore[return-value]


def set_trace_cache_dir(path: str | os.PathLike | None) -> Path | None:
    """Point the disk tier at *path* (None or an off-value disables it).

    Returns the resolved directory.  Parallel experiment workers call
    this so every process shares the parent's setting.
    """
    global _disk_dir
    if path is None or (isinstance(path, str)
                        and path.strip().lower() in _DISABLE_VALUES):
        _disk_dir = None
    else:
        _disk_dir = Path(path).expanduser()
    return _disk_dir


def trace_cache_stats() -> dict[str, int]:
    """Cache-tier counters since process start (copy): ``memory_hits``,
    ``disk_hits``, and ``builds`` (functional simulations performed)."""
    return dict(_cache_stats)


def clear_trace_cache() -> None:
    """Drop all in-memory cached traces (tests use this to bound
    memory).  The disk tier is unaffected."""
    _trace_cache.clear()


def content_digest(*parts: str) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(part.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()[:12]


@functools.lru_cache(maxsize=1)
def _kernel_fingerprint() -> str:
    """Digest of the mini-OS source.  Kernel instructions appear in
    every full-system trace, so kernel edits must invalidate cached
    os-mix and scenario traces."""
    from ..kernel.source import kernel_source
    return content_digest(kernel_source())


def cached_trace(label: str, digest: str,
                 build: Callable[[], list[TraceRecord]],
                 ) -> list[TraceRecord]:
    """Two-tier trace lookup: memory, then disk, then *build*.

    *label* names the entry (it becomes part of the filename); *digest*
    must cover everything that determines the trace's content.  New
    builds are written to the disk tier atomically so concurrent
    workers never observe a torn file.
    """
    key = (label, digest)
    cached = _trace_cache.get(key)
    if cached is not None:
        _cache_stats["memory_hits"] += 1
        return cached
    recorder = obs_spans.current()
    directory = trace_cache_dir()
    path = None
    if directory is not None:
        path = directory / \
            f"{label}-{digest}.v{trace_io.FORMAT_VERSION}.npz"
        try:
            if path.exists():
                if recorder is None:
                    trace = trace_io.load_trace(path)
                else:
                    with recorder.span("trace.load", "workload",
                                       label=label):
                        trace = trace_io.load_trace(path)
                _cache_stats["disk_hits"] += 1
                _trace_cache[key] = trace
                return trace
        except (OSError, ValueError, KeyError):
            pass  # unreadable/stale entry: rebuild and overwrite
    if recorder is None:
        trace = build()
    else:
        with recorder.span("trace.build", "workload", label=label):
            trace = build()
    _cache_stats["builds"] += 1
    _trace_cache[key] = trace
    if path is not None:
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if recorder is None:
                trace_io.save_trace_atomic(path, trace)
            else:
                with recorder.span("trace.save", "workload",
                                   label=label):
                    trace_io.save_trace_atomic(path, trace)
        except OSError:
            pass  # unwritable cache never fails the run
    return trace


def build_trace(name: str, scale: str = "small",
                max_instructions: int = 3_000_000) -> list[TraceRecord]:
    """Functionally execute a workload and return its verified trace."""
    spec = WORKLOADS[name]
    params = spec.params(scale)
    source = spec.source(**params)

    def build() -> list[TraceRecord]:
        program = assemble(source, source_name=f"<{name}>")
        result = run_bare(program, max_instructions=max_instructions,
                          collect_trace=True)
        expected = spec.expected_exit(**params)
        if result.exit_code != expected:
            raise SimError(
                f"workload {name!r} ({scale}) self-check failed: "
                f"exit {result.exit_code}, expected {expected}")
        return result.trace

    return cached_trace(f"{name}-{scale}",
                        content_digest(source, str(max_instructions)), build)


#: Workloads composing the multiprogrammed OS mix, with per-scale params.
OS_MIX_MEMBERS = ("compress", "qsort", "memops")

#: Timer interval (instructions between preemptions) per scale.
OS_MIX_TIMER = {"tiny": 300, "small": 1500, "full": 5000}


def build_os_mix_trace(scale: str = "small", members=OS_MIX_MEMBERS,
                       timer_interval: int | None = None,
                       max_instructions: int = 8_000_000,
                       ) -> list[TraceRecord]:
    """A multiprogrammed mix under the mini-OS (kernel in the trace)."""
    interval = timer_interval if timer_interval is not None \
        else OS_MIX_TIMER[scale]
    members = tuple(members)
    sources = []
    expected = []
    for name in members:
        spec = WORKLOADS[name]
        params = spec.params(scale)
        sources.append(spec.source(**params))
        expected.append(spec.expected_exit(**params))

    def build() -> list[TraceRecord]:
        programs = [assemble_user(source, slot=slot,
                                  source_name=f"<{name}>")
                    for slot, (name, source) in
                    enumerate(zip(members, sources))]
        result = run_system(programs, timer_interval=interval,
                            max_instructions=max_instructions,
                            collect_trace=True)
        if result.process_exit_codes != expected:
            raise SimError(
                f"OS mix self-check failed: exits "
                f"{result.process_exit_codes}, expected {expected}")
        return result.trace

    digest = content_digest(*sources, ",".join(members), str(interval),
                            str(max_instructions), _kernel_fingerprint())
    return cached_trace(f"os-mix-{scale}", digest, build)


def build_scenario_trace(name: str, scale: str = "small",
                         seed: int | None = None,
                         overrides: dict[str, int] | None = None,
                         ) -> list[TraceRecord]:
    """Build (or fetch) the verified trace of one scenario-corpus entry.

    The cache key covers the scenario name, scale, **seed**, every
    resolved parameter, the generated per-process sources, and the
    kernel fingerprint — the same scenario name with a different seed
    or knob override can never collide, and kernel edits invalidate
    stale entries.  The functional run is contract-checked (exit codes,
    memory regions, console) before the trace is cached.
    """
    from ..scenarios import SCENARIOS
    from ..scenarios.runtime import check_contract, materialize, run_build
    spec = SCENARIOS[name]
    build = materialize(spec, scale, seed=seed, overrides=overrides)

    def build_fn() -> list[TraceRecord]:
        run = run_build(build, collect_trace=True)
        problems = check_contract(build, run)
        if problems:
            raise SimError(
                f"scenario {name!r} ({scale}, seed {build.seed}) violated "
                f"its contract: " + "; ".join(problems))
        return run.result.trace

    params = ",".join(f"{key}={value}"
                      for key, value in sorted(build.params.items()))
    digest = content_digest(*build.sources, name, scale, str(build.seed),
                            params, _kernel_fingerprint())
    return cached_trace(f"sc-{name}-{scale}-s{build.seed}", digest,
                        build_fn)


def trace_summary(trace: list[TraceRecord]) -> dict[str, float]:
    """Static characteristics of a trace (for T1-style tables)."""
    total = len(trace)
    loads = sum(1 for r in trace if r.is_load)
    stores = sum(1 for r in trace if r.is_store)
    branches = sum(1 for r in trace if r.is_control)
    kernel = sum(1 for r in trace if r.kernel)
    return {
        "instructions": total,
        "load_fraction": loads / total if total else 0.0,
        "store_fraction": stores / total if total else 0.0,
        "branch_fraction": branches / total if total else 0.0,
        "kernel_fraction": kernel / total if total else 0.0,
    }
