"""``spmv`` — sparse matrix-vector multiply (CSR, gather pattern).

The gather workload: streaming loads over the CSR value/index arrays
mixed with indirect loads of ``x[col[j]]`` that scatter across the
vector.  Spatial techniques catch the streams but not the gathers —
a realistic mixed case for the port experiments, with FP compute.
"""

from __future__ import annotations

import random

NAME = "spmv"
DESCRIPTION = "CSR sparse matrix-vector multiply (indirect gathers)"
TAGS = ("fp", "irregular", "mixed-stride")


def _structure(rows: int, per_row: int, seed: int):
    """Deterministic CSR structure and values."""
    rng = random.Random(seed)
    col_idx: list[int] = []
    row_ptr = [0]
    values: list[float] = []
    for row in range(rows):
        cols = sorted(rng.sample(range(rows), per_row))
        col_idx.extend(cols)
        values.extend(float((row + col) % 7 + 1) for col in cols)
        row_ptr.append(len(col_idx))
    x = [float(i % 11 + 1) for i in range(rows)]
    return values, col_idx, row_ptr, x


def reference_result(rows: int, per_row: int, seed: int) -> int:
    values, col_idx, row_ptr, x = _structure(rows, per_row, seed)
    checksum = 0.0
    for row in range(rows):
        acc = 0.0
        for j in range(row_ptr[row], row_ptr[row + 1]):
            acc += values[j] * x[col_idx[j]]
        checksum += acc * (row % 5 + 1)
    return int(checksum) & 0x3FFFFFFF


def source(rows: int = 64, per_row: int = 8, seed: int = 23) -> str:
    """Assembly: y = A @ x over an embedded CSR matrix, checksum y."""
    if rows < 2 or per_row < 1 or per_row > rows:
        raise ValueError("need 2 <= per_row <= rows")
    values, col_idx, row_ptr, x = _structure(rows, per_row, seed)
    values_text = ", ".join(str(v) for v in values)
    cols_text = ", ".join(str(c) for c in col_idx)
    rows_text = ", ".join(str(r) for r in row_ptr)
    x_text = ", ".join(str(v) for v in x)
    return f"""
.equ SYS_EXIT, 1
.equ ROWS, {rows}
.data
.align 8
vals: .double {values_text}
cols: .dword {cols_text}
rptr: .dword {rows_text}
xvec: .double {x_text}
yvec: .space {rows * 8}
.text
main:
    la   s0, rptr
    la   s1, yvec
    li   s2, 0                 # row
    la   s5, vals
    la   s6, cols
    la   s7, xvec
row_loop:
    ld   t0, 0(s0)             # start index
    ld   t1, 8(s0)             # end index
    fcvt.d.l f2, zero          # acc = 0
    bge  t0, t1, row_store
elem_loop:
    slli t2, t0, 3
    add  t3, s5, t2
    fld  f0, 0(t3)             # value (streaming)
    add  t3, s6, t2
    ld   t4, 0(t3)             # column index (streaming)
    slli t4, t4, 3
    add  t4, s7, t4
    fld  f1, 0(t4)             # x[col] (gather)
    fmul f0, f0, f1
    fadd f2, f2, f0
    addi t0, t0, 1
    blt  t0, t1, elem_loop
row_store:
    fsd  f2, 0(s1)
    addi s1, s1, 8
    addi s0, s0, 8
    addi s2, s2, 1
    li   t5, ROWS
    bne  s2, t5, row_loop
    # -- checksum: sum y[row] * (row % 5 + 1) ---------------------------
    la   s1, yvec
    li   s2, 0
    li   t6, 5
    fcvt.d.l f3, zero
chk_loop:
    fld  f0, 0(s1)
    rem  t3, s2, t6
    addi t3, t3, 1
    fcvt.d.l f1, t3
    fmul f0, f0, f1
    fadd f3, f3, f0
    addi s1, s1, 8
    addi s2, s2, 1
    li   t5, ROWS
    bne  s2, t5, chk_loop
    fcvt.l.d t5, f3
    li   t6, 0x3fffffff
    and  a0, t5, t6
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(rows: int = 64, per_row: int = 8, seed: int = 23) -> int:
    return reference_result(rows, per_row, seed)
