"""Workload programs and the evaluation suite."""

from .suite import (
    OS_MIX_MEMBERS,
    SUITE_NAMES,
    WORKLOADS,
    WorkloadSpec,
    build_os_mix_trace,
    build_trace,
    clear_trace_cache,
    trace_summary,
)

__all__ = [
    "OS_MIX_MEMBERS",
    "SUITE_NAMES",
    "WORKLOADS",
    "WorkloadSpec",
    "build_os_mix_trace",
    "build_trace",
    "clear_trace_cache",
    "trace_summary",
]
