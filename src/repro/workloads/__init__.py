"""Workload programs and the evaluation suite."""

from .suite import (
    OS_MIX_MEMBERS,
    SUITE_NAMES,
    WORKLOADS,
    WorkloadSpec,
    build_os_mix_trace,
    build_scenario_trace,
    build_trace,
    cached_trace,
    clear_trace_cache,
    set_trace_cache_dir,
    trace_cache_dir,
    trace_cache_stats,
    trace_summary,
)

__all__ = [
    "OS_MIX_MEMBERS",
    "SUITE_NAMES",
    "WORKLOADS",
    "WorkloadSpec",
    "build_os_mix_trace",
    "build_scenario_trace",
    "build_trace",
    "cached_trace",
    "clear_trace_cache",
    "set_trace_cache_dir",
    "trace_cache_dir",
    "trace_cache_stats",
    "trace_summary",
]
