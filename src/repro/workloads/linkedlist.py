"""``linked`` — pointer chasing over a shuffled linked list.

Serial dependent loads with no spatial locality: the latency-bound
corner where *none* of the port techniques can help much (each load
needs the previous one's data before its address is even known).  The
paper-style contrast case.
"""

from __future__ import annotations

import random

NAME = "linked"
DESCRIPTION = "pointer chase over an LCG-shuffled linked list"
TAGS = ("latency-bound", "irregular")

_NODE_SIZE = 16  # value(8) + next-index(8)


def _permutation(n: int, seed: int) -> list[int]:
    """A single-cycle permutation (Sattolo) so the chase visits all nodes."""
    order = list(range(n))
    rng = random.Random(seed)
    i = n - 1
    while i > 0:
        j = rng.randrange(i)
        order[i], order[j] = order[j], order[i]
        i -= 1
    return order


def _next_indices(n: int, seed: int) -> list[int]:
    """next[i] = node after i in chase order; the last points to n (end)."""
    order = _permutation(n, seed)
    nxt = [0] * n
    for pos in range(n - 1):
        nxt[order[pos]] = order[pos + 1]
    nxt[order[-1]] = n  # sentinel: one past the last node
    return nxt, order[0]


def source(n: int = 512, rounds: int = 6, seed: int = 7) -> str:
    """Assembly: build the list from embedded indices, chase it."""
    if n < 2:
        raise ValueError("need at least two nodes")
    nxt, head = _next_indices(n, seed)
    index_words = ", ".join(str(i) for i in nxt)
    return f"""
.equ SYS_EXIT, 1
.equ N, {n}
.data
.align 8
nodes:   .space {n * _NODE_SIZE}
nextidx: .dword {index_words}
.text
main:
    # -- build: nodes[i] = (value=i, next=&nodes[nextidx[i]] or 0) ------
    la   t0, nodes
    la   t1, nextidx
    la   t6, nodes
    li   t2, 0
    li   t3, N
build:
    sd   t2, 0(t0)             # value = i
    ld   t4, 0(t1)             # next index
    beq  t4, t3, build_end     # sentinel -> null next
    slli t5, t4, 4
    add  t5, t5, t6
    sd   t5, 8(t0)
    j    build_next
build_end:
    sd   zero, 8(t0)
build_next:
    addi t0, t0, {_NODE_SIZE}
    addi t1, t1, 8
    addi t2, t2, 1
    bne  t2, t3, build
    # -- chase ------------------------------------------------------------
    li   s3, {rounds}
    li   s4, 0                 # checksum
    la   s5, nodes + {head * _NODE_SIZE}
round:
    mv   t0, s5
chase:
    ld   t1, 0(t0)             # value
    add  s4, s4, t1
    ld   t0, 8(t0)             # next pointer (dependent load)
    bnez t0, chase
    subi s3, s3, 1
    bnez s3, round
    li   t5, 0x3fffffff
    and  a0, s4, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(n: int = 512, rounds: int = 6, seed: int = 7) -> int:
    return (rounds * n * (n - 1) // 2) & 0x3FFFFFFF
