"""``stream`` — unrolled streaming sum/copy (dense, spatially local).

The optimised-array-code end of the workload space: four loads per
cache line, unrolled, with a store stream.  This is where the paper's
wide-port and line-buffer techniques have the most to combine.
"""

from __future__ import annotations

NAME = "stream"
DESCRIPTION = "unrolled streaming sum + store stream (spatially local)"
TAGS = ("memory-dense", "local")


def source(n: int = 512, reps: int = 12) -> str:
    """Assembly: sum an *n*-dword array *reps* times, storing partials."""
    if n % 4 or n <= 0:
        raise ValueError("n must be a positive multiple of 4")
    if reps <= 0:
        raise ValueError("reps must be positive")
    return f"""
.equ SYS_EXIT, 1
.equ N, {n}
.data
arr: .space {n * 8}
out: .space {n * 4}
.text
main:
    la   t0, arr
    li   t1, 0
    li   t2, N
init:
    sd   t1, 0(t0)
    addi t0, t0, 8
    addi t1, t1, 1
    bne  t1, t2, init
    li   s3, {reps}
outer:
    la   t0, arr
    la   t3, out
    li   t1, 0
    li   t4, 0
loop:
    ld   t5, 0(t0)
    ld   t6, 8(t0)
    ld   s4, 16(t0)
    ld   s5, 24(t0)
    add  t4, t4, t5
    add  t4, t4, t6
    add  t4, t4, s4
    add  t4, t4, s5
    sd   t4, 0(t3)
    sd   t4, 8(t3)
    addi t0, t0, 32
    addi t3, t3, 16
    addi t1, t1, 4
    bne  t1, t2, loop
    subi s3, s3, 1
    bnez s3, outer
    # fold to a small exit code
    li   t5, 0xffff
    and  a0, t4, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def expected_exit(n: int = 512, reps: int = 12) -> int:
    """The checksum the program exits with."""
    return (n * (n - 1) // 2) & 0xFFFF
