"""``qsort`` — recursive quicksort (irregular access + call stack).

Pointer-arithmetic partitioning with a real call stack: a mix of
data-dependent branches, spatially-scattered swaps and stack save/
restore traffic.  The SPECint-style middle of the workload space.
"""

from __future__ import annotations

NAME = "qsort"
DESCRIPTION = "recursive quicksort of an LCG-shuffled array"
TAGS = ("branchy", "irregular")

_LCG_MUL = 25214903917
_LCG_ADD = 11
_LCG_MASK = (1 << 48) - 1


def _lcg_values(n: int, seed: int) -> list[int]:
    values = []
    x = seed
    for _ in range(n):
        x = (x * _LCG_MUL + _LCG_ADD) & _LCG_MASK
        values.append((x >> 16) & 0x7FFF)
    return values


def source(n: int = 256, seed: int = 12345) -> str:
    """Assembly: generate *n* pseudo-random dwords, quicksort, verify."""
    if n < 2:
        raise ValueError("n must be at least 2")
    if not 0 < seed <= _LCG_MASK:
        raise ValueError("seed must be a positive 48-bit value")
    return f"""
.equ SYS_EXIT, 1
.equ N, {n}
.data
arr: .space {n * 8}
.text
main:
    # -- generate: arr[i] = (lcg() >> 16) & 0x7fff ----------------------
    la   s0, arr
    li   s1, N
    li   t0, {seed}
    li   t3, {_LCG_MASK}
    li   t4, {_LCG_MUL}
    li   s5, 0x7fff
gen:
    mul  t0, t0, t4
    addi t0, t0, {_LCG_ADD}
    and  t0, t0, t3
    srli t5, t0, 16
    and  t5, t5, s5
    sd   t5, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, gen
    # -- sort ------------------------------------------------------------
    la   a0, arr
    la   a1, arr + {(n - 1) * 8}
    jal  qsort
    # -- verify non-decreasing and checksum ------------------------------
    la   t0, arr
    li   t1, 0
    li   t2, N
    li   s4, 0
    li   t6, 0
chk:
    ld   t3, 0(t0)
    blt  t3, t6, bad
    addi t4, t1, 1
    mul  t5, t3, t4
    add  s4, s4, t5
    mv   t6, t3
    addi t0, t0, 8
    addi t1, t1, 1
    bne  t1, t2, chk
    li   t5, 0x3fffffff
    and  a0, s4, t5
    li   a7, SYS_EXIT
    syscall 0
bad:
    li   a0, -1
    li   a7, SYS_EXIT
    syscall 0

# -- qsort(a0 = lo ptr, a1 = hi ptr, inclusive) — Lomuto partition -------
qsort:
    bgeu a0, a1, qs_ret
    addi sp, sp, -32
    sd   ra, 0(sp)
    sd   s0, 8(sp)
    sd   s1, 16(sp)
    sd   s2, 24(sp)
    mv   s0, a0
    mv   s1, a1
    ld   t0, 0(s1)             # pivot = *hi
    subi t1, s0, 8             # i = lo - 1 (in elements)
    mv   t2, s0                # j = lo
part_loop:
    bgeu t2, s1, part_done
    ld   t3, 0(t2)
    bgt  t3, t0, part_next
    addi t1, t1, 8
    ld   t4, 0(t1)
    sd   t3, 0(t1)
    sd   t4, 0(t2)
part_next:
    addi t2, t2, 8
    j    part_loop
part_done:
    addi t1, t1, 8             # pivot slot
    ld   t4, 0(t1)
    ld   t3, 0(s1)
    sd   t3, 0(t1)
    sd   t4, 0(s1)
    mv   s2, t1
    mv   a0, s0
    subi a1, s2, 8
    jal  qsort
    addi a0, s2, 8
    mv   a1, s1
    jal  qsort
    ld   ra, 0(sp)
    ld   s0, 8(sp)
    ld   s1, 16(sp)
    ld   s2, 24(sp)
    addi sp, sp, 32
qs_ret:
    ret
"""


def expected_exit(n: int = 256, seed: int = 12345) -> int:
    values = sorted(_lcg_values(n, seed))
    checksum = sum(value * (index + 1) for index, value in enumerate(values))
    return checksum & 0x3FFFFFFF
