"""Sparse byte-addressable memory with memory-mapped devices.

Memory is organised as 4 KiB pages allocated on first touch.  A small
guard region at address zero is kept unmapped so that null-pointer
dereferences fault instead of silently reading zeros.  Devices claim
address ranges; loads and stores that hit a device range are routed to
the device instead of backing storage.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

#: Accesses below this address fault (null-pointer guard).
NULL_GUARD = 0x1000

_MASK64 = (1 << 64) - 1


class MemoryFault(Exception):
    """An access touched an illegal address."""

    def __init__(self, address: int, reason: str) -> None:
        self.address = address
        self.reason = reason
        super().__init__(f"memory fault at {address:#x}: {reason}")


class Device:
    """A memory-mapped device occupying ``[base, base+size)``."""

    def __init__(self, base: int, size: int) -> None:
        self.base = base
        self.size = size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def load(self, address: int, size: int) -> int:
        raise MemoryFault(address, "device is write-only")

    def store(self, address: int, size: int, value: int) -> None:
        raise MemoryFault(address, "device is read-only")


class ConsoleDevice(Device):
    """A write-only console: bytes stored to it accumulate in ``output``."""

    #: Conventional placement of the console in the physical map.
    DEFAULT_BASE = 0x7FFF_0000

    def __init__(self, base: int = DEFAULT_BASE) -> None:
        super().__init__(base, PAGE_SIZE)
        self.output = bytearray()

    def store(self, address: int, size: int, value: int) -> None:
        self.output += (value & ((1 << (8 * size)) - 1)).to_bytes(
            size, "little")

    def text(self) -> str:
        """Console output decoded as text (replacement on bad bytes)."""
        return self.output.decode("utf-8", errors="replace")


class Memory:
    """Sparse 64-bit physical memory."""

    def __init__(self, null_guard: int = NULL_GUARD) -> None:
        self._pages: dict[int, bytearray] = {}
        self._devices: list[Device] = []
        self.null_guard = null_guard

    # -- device plumbing ---------------------------------------------------
    def add_device(self, device: Device) -> None:
        for existing in self._devices:
            if (device.base < existing.base + existing.size and
                    existing.base < device.base + device.size):
                raise ValueError("device ranges overlap")
        self._devices.append(device)

    def _device_at(self, address: int) -> Device | None:
        for device in self._devices:
            if device.contains(address):
                return device
        return None

    # -- page plumbing -------------------------------------------------------
    def _page(self, address: int) -> bytearray:
        number = address >> PAGE_SHIFT
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
        return page

    def _check(self, address: int, size: int) -> None:
        if address < 0 or address + size > (1 << 64):
            raise MemoryFault(address, "outside the 64-bit address space")
        if address < self.null_guard:
            raise MemoryFault(address, "null-guard region")

    @property
    def mapped_bytes(self) -> int:
        """Bytes of backing store currently allocated."""
        return len(self._pages) * PAGE_SIZE

    def content_digest(self) -> str:
        """SHA-256 over all non-zero pages (number + contents).

        All-zero pages are skipped: pages allocate on first *touch*, so
        two runs of the same program can differ in which untouched-but-
        read pages exist without differing in content.  Device state is
        not memory content and is excluded.
        """
        hasher = hashlib.sha256()
        for number in sorted(self._pages):
            page = self._pages[number]
            if any(page):
                hasher.update(number.to_bytes(8, "little"))
                hasher.update(page)
        return hasher.hexdigest()

    # -- bulk access (image loading, string helpers) ------------------------
    def write_bytes(self, address: int, blob: bytes) -> None:
        """Copy *blob* into memory starting at *address*."""
        self._check(address, len(blob))
        offset = 0
        while offset < len(blob):
            page = self._page(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, len(blob) - offset)
            page[start:start + chunk] = blob[offset:offset + chunk]
            offset += chunk

    def read_bytes(self, address: int, size: int) -> bytes:
        """Read *size* bytes starting at *address*."""
        self._check(address, size)
        out = bytearray()
        offset = 0
        while offset < size:
            page = self._page(address + offset)
            start = (address + offset) & PAGE_MASK
            chunk = min(PAGE_SIZE - start, size - offset)
            out += page[start:start + chunk]
            offset += chunk
        return bytes(out)

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        while len(out) < limit:
            byte = self.load(address + len(out), 1)
            if byte == 0:
                return bytes(out)
            out.append(byte)
        raise MemoryFault(address, "unterminated string")

    # -- scalar access ------------------------------------------------------
    def load(self, address: int, size: int) -> int:
        """Load *size* bytes at *address* as an unsigned little-endian int."""
        device = self._device_at(address)
        if device is not None:
            return device.load(address, size)
        self._check(address, size)
        page = self._page(address)
        start = address & PAGE_MASK
        if start + size <= PAGE_SIZE:
            return int.from_bytes(page[start:start + size], "little")
        return int.from_bytes(self.read_bytes(address, size), "little")

    def store(self, address: int, size: int, value: int) -> None:
        """Store the low *size* bytes of *value* at *address*."""
        device = self._device_at(address)
        if device is not None:
            device.store(address, size, value)
            return
        self._check(address, size)
        value &= (1 << (8 * size)) - 1
        page = self._page(address)
        start = address & PAGE_MASK
        if start + size <= PAGE_SIZE:
            page[start:start + size] = value.to_bytes(size, "little")
        else:
            self.write_bytes(address, value.to_bytes(size, "little"))

    def load_signed(self, address: int, size: int) -> int:
        """Load and sign-extend to a 64-bit value (still returned unsigned)."""
        value = self.load(address, size)
        sign = 1 << (8 * size - 1)
        if value & sign:
            value |= _MASK64 ^ ((1 << (8 * size)) - 1)
        return value


def make_console_memory() -> tuple[Memory, ConsoleDevice]:
    """Convenience: memory with a console device attached."""
    memory = Memory()
    console = ConsoleDevice()
    memory.add_device(console)
    return memory, console
