"""Architectural state of the functional machine."""

from __future__ import annotations

import hashlib
import struct

from ..isa import (
    STATUS_INT_ENABLE,
    STATUS_KERNEL,
    TOTAL_REG_COUNT,
    SysReg,
)

_MASK64 = (1 << 64) - 1

#: STATUS bits holding the pre-trap (previous) mode, MIPS style.
STATUS_PREV_KERNEL = 1 << 2
STATUS_PREV_INT_ENABLE = 1 << 3

SYSREG_COUNT = 16


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as signed."""
    return value - (1 << 64) if value & (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int to a 64-bit unsigned value."""
    return value & _MASK64


def bits_to_float(bits: int) -> float:
    """Reinterpret a 64-bit pattern as an IEEE-754 double."""
    return struct.unpack("<d", bits.to_bytes(8, "little"))[0]


def float_to_bits(value: float) -> int:
    """Reinterpret an IEEE-754 double as its 64-bit pattern."""
    return int.from_bytes(struct.pack("<d", value), "little")


class ArchState:
    """Registers, pc and system registers.

    All 64 architectural registers (integer bank 0..31, fp bank 32..63)
    hold raw 64-bit unsigned patterns; floating point helpers reinterpret
    the pattern.  Register 0 is hardwired to zero — writes to it are
    dropped by :meth:`write_reg`.
    """

    __slots__ = ("regs", "pc", "sysregs")

    def __init__(self, pc: int = 0) -> None:
        self.regs: list[int] = [0] * TOTAL_REG_COUNT
        self.pc = pc
        self.sysregs: list[int] = [0] * SYSREG_COUNT
        # Bare machines boot in kernel mode with interrupts off.
        self.sysregs[SysReg.STATUS] = STATUS_KERNEL

    # -- general registers ---------------------------------------------------
    def read_reg(self, index: int) -> int:
        return self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index == 0:
            return
        self.regs[index] = value & _MASK64

    def read_float(self, index: int) -> float:
        return bits_to_float(self.regs[index])

    def write_float(self, index: int, value: float) -> None:
        self.regs[index] = float_to_bits(value)

    # -- system registers -----------------------------------------------------
    def read_sysreg(self, index: int) -> int:
        if not 0 <= index < SYSREG_COUNT:
            raise IndexError(f"system register {index} out of range")
        return self.sysregs[index]

    def write_sysreg(self, index: int, value: int) -> None:
        if not 0 <= index < SYSREG_COUNT:
            raise IndexError(f"system register {index} out of range")
        self.sysregs[index] = value & _MASK64

    def digest(self) -> str:
        """SHA-256 over registers, pc and system registers — the
        architectural register digest used by the validation layer."""
        hasher = hashlib.sha256()
        for value in self.regs:
            hasher.update(value.to_bytes(8, "little"))
        hasher.update(self.pc.to_bytes(8, "little"))
        for value in self.sysregs:
            hasher.update(value.to_bytes(8, "little"))
        return hasher.hexdigest()

    # -- mode bits ---------------------------------------------------------
    @property
    def status(self) -> int:
        return self.sysregs[SysReg.STATUS]

    @status.setter
    def status(self, value: int) -> None:
        self.sysregs[SysReg.STATUS] = value

    @property
    def kernel_mode(self) -> bool:
        return bool(self.status & STATUS_KERNEL)

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.status & STATUS_INT_ENABLE)

    def enter_trap(self) -> None:
        """Shift current mode bits to the 'previous' slots; enter kernel
        with interrupts disabled (MIPS-style two-level status stack)."""
        status = self.status
        prev = (status & (STATUS_KERNEL | STATUS_INT_ENABLE)) << 2
        self.status = (status & ~(STATUS_PREV_KERNEL | STATUS_PREV_INT_ENABLE
                                  | STATUS_KERNEL | STATUS_INT_ENABLE)
                       ) | prev | STATUS_KERNEL

    def leave_trap(self) -> None:
        """Restore the pre-trap mode bits (ERET)."""
        status = self.status
        prev = (status & (STATUS_PREV_KERNEL | STATUS_PREV_INT_ENABLE)) >> 2
        self.status = (status & ~(STATUS_KERNEL | STATUS_INT_ENABLE)) | prev
