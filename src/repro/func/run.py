"""Convenience runners that wire memory, console and interpreter together."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Program
from ..trace.record import TraceRecord
from .interp import Interpreter, load_program
from .memory import ConsoleDevice, Memory
from .syscalls import HostSyscalls

#: Default stack placement for bare runs (grows down).
DEFAULT_STACK_TOP = 0x400000
_SP = 2  # stack pointer register index


@dataclass
class RunResult:
    """Outcome of a functional run."""

    exit_code: int
    console: str
    retired: int
    kernel_retired: int
    loads: int
    stores: int
    traps_taken: int = 0
    timer_interrupts: int = 0
    trace: list[TraceRecord] = field(default_factory=list)
    #: Architectural end-state digests (``compute_digests=True`` only);
    #: comparable against :attr:`repro.core.pipeline.CoreResult.digests`.
    digests: dict[str, str] | None = None

    @property
    def user_retired(self) -> int:
        return self.retired - self.kernel_retired


def run_bare(program: Program, max_instructions: int = 5_000_000,
             collect_trace: bool = False,
             stack_top: int = DEFAULT_STACK_TOP,
             user_mode: bool = True,
             compute_digests: bool = False) -> RunResult:
    """Run a single program without the mini-OS.

    Syscalls are serviced by the host; the trace (if collected) contains
    only user-mode instructions.  Pass ``user_mode=False`` for bare-metal
    programs that use privileged instructions (MFSR/MTSR/HALT).
    ``compute_digests`` hashes the final architectural state for
    differential comparison (see :mod:`repro.validate`).
    """
    memory = Memory()
    console = ConsoleDevice()
    memory.add_device(console)
    load_program(memory, program)
    trace: list[TraceRecord] = []
    sink = trace.append if collect_trace else None
    interp = Interpreter(memory, entry=program.entry,
                         syscall_handler=HostSyscalls(console),
                         trace_sink=sink)
    if user_mode:
        interp.state.status = 0
    interp.state.write_reg(_SP, stack_top)
    exit_code = interp.run(max_instructions)
    digests = None
    if compute_digests:
        digests = {"registers": interp.state.digest(),
                   "memory": memory.content_digest()}
    return RunResult(
        exit_code=exit_code,
        console=console.text(),
        retired=interp.retired,
        kernel_retired=interp.kernel_retired,
        loads=interp.loads,
        stores=interp.stores,
        traps_taken=interp.traps_taken,
        timer_interrupts=interp.timer_interrupts,
        trace=trace,
        digests=digests,
    )
