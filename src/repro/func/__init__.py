"""Functional (ISA-level) simulation: memory, state, interpreter."""

from .exceptions import SimError, SimHalted, TrapCause
from .interp import ARG_REG, SYSCALL_REG, Interpreter, load_program
from .memory import (
    NULL_GUARD,
    PAGE_SIZE,
    ConsoleDevice,
    Device,
    Memory,
    MemoryFault,
    make_console_memory,
)
from .run import DEFAULT_STACK_TOP, RunResult, run_bare
from .state import ArchState, bits_to_float, float_to_bits, to_signed, to_unsigned
from .syscalls import HostSyscalls

__all__ = [
    "SimError",
    "SimHalted",
    "TrapCause",
    "ARG_REG",
    "SYSCALL_REG",
    "Interpreter",
    "load_program",
    "NULL_GUARD",
    "PAGE_SIZE",
    "ConsoleDevice",
    "Device",
    "Memory",
    "MemoryFault",
    "make_console_memory",
    "DEFAULT_STACK_TOP",
    "RunResult",
    "run_bare",
    "ArchState",
    "bits_to_float",
    "float_to_bits",
    "to_signed",
    "to_unsigned",
    "HostSyscalls",
]
