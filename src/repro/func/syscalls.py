"""Host-side syscall handling for *bare mode* (no kernel image).

When a program runs without the mini-OS, SYSCALL instructions are
serviced directly by the host via :class:`HostSyscalls` — handy for unit
tests and for generating user-only traces (the paper's "without OS"
comparison point).
"""

from __future__ import annotations

from .. import abi
from .exceptions import SimError, SimHalted
from .interp import ARG_REG, SYSCALL_REG, Interpreter
from .memory import ConsoleDevice
from .state import to_signed

_PAGE = 4096


class HostSyscalls:
    """Implements the syscall ABI on the host, for single-program runs."""

    def __init__(self, console: ConsoleDevice | None = None,
                 initial_break: int = 0x200000) -> None:
        self.console = console
        self.brk = initial_break

    def __call__(self, interp: Interpreter) -> None:
        state = interp.state
        number = state.regs[SYSCALL_REG]
        a0 = state.regs[ARG_REG]
        a1 = state.regs[ARG_REG + 1]
        if number == abi.SYS_EXIT:
            raise SimHalted(to_signed(a0))
        if number == abi.SYS_WRITE:
            blob = interp.memory.read_bytes(a0, a1)
            if self.console is not None:
                self.console.output += blob
            state.write_reg(ARG_REG, a1)
            return
        if number == abi.SYS_BRK:
            if a0:
                self.brk = (a0 + _PAGE - 1) & ~(_PAGE - 1)
            state.write_reg(ARG_REG, self.brk)
            return
        if number == abi.SYS_YIELD:
            state.write_reg(ARG_REG, 0)  # single program: nothing to do
            return
        if number == abi.SYS_GETPID:
            state.write_reg(ARG_REG, 1)
            return
        if number == abi.SYS_TIME:
            state.write_reg(ARG_REG, interp.retired)
            return
        raise SimError(f"unknown syscall {number}")
