"""Trap causes and simulator control-flow exceptions."""

from __future__ import annotations

import enum


class TrapCause(enum.IntEnum):
    """Values written to the CAUSE system register on a trap."""

    SYSCALL = 1
    TIMER = 2
    ILLEGAL = 3
    MISALIGNED = 4
    BADADDR = 5


class SimHalted(Exception):
    """The simulated machine executed HALT."""

    def __init__(self, exit_code: int = 0) -> None:
        self.exit_code = exit_code
        super().__init__(f"machine halted (exit code {exit_code})")


class SimError(Exception):
    """An unrecoverable simulation error (bad program, bad config)."""
