"""Functional (ISA-level) simulator with tracing.

The interpreter executes instructions out of simulated memory (so the
kernel and all user processes share one image), delivers traps and timer
interrupts, and emits one :class:`repro.trace.record.TraceRecord` per
retired instruction.  ``next_pc`` in each record is the address of the
*actually* executed next instruction — on traps it points into the trap
vector, which is how the timing core learns about pipeline redirects
that are not ordinary branches.
"""

from __future__ import annotations

from collections.abc import Callable

from ..isa import (
    INSTRUCTION_BYTES,
    Instruction,
    OpClass,
    Opcode,
    Program,
    SysReg,
    decode,
)
from ..trace.record import TraceRecord
from .exceptions import SimError, SimHalted, TrapCause
from .memory import Memory, MemoryFault
from .state import ArchState, bits_to_float, float_to_bits, to_signed

_MASK64 = (1 << 64) - 1

#: Register the syscall number travels in (a7).
SYSCALL_REG = 17
#: First syscall argument / return value register (a0).
ARG_REG = 10


def load_program(memory: Memory, program: Program) -> None:
    """Write a program's text and data images into memory."""
    from ..isa.encoding import encode_program_text

    if program.text:
        memory.write_bytes(program.text_base,
                           encode_program_text(program.text))
    if program.data:
        memory.write_bytes(program.data_base, program.data)


class _Trap(Exception):
    """Internal: unwinds execution of a faulting instruction."""

    def __init__(self, cause: TrapCause, badaddr: int = 0) -> None:
        self.cause = cause
        self.badaddr = badaddr
        super().__init__(cause.name)


class Interpreter:
    """Executes the mini RISC ISA against a :class:`Memory`.

    Parameters
    ----------
    memory:
        Physical memory, already loaded with the program image(s).
    entry:
        Initial program counter.
    trap_vector:
        Address of the kernel trap entry point.  ``None`` runs in
        *bare mode*: syscalls are serviced by ``syscall_handler`` on the
        host side and faults raise :class:`SimError`.
    syscall_handler:
        Bare-mode syscall callback ``handler(interpreter) -> None``.
    trace_sink:
        Called once per retired instruction with a
        :class:`TraceRecord`; ``None`` disables tracing.
    """

    def __init__(self, memory: Memory, entry: int,
                 trap_vector: int | None = None,
                 syscall_handler: Callable[["Interpreter"], None] | None = None,
                 trace_sink: Callable[[TraceRecord], None] | None = None) -> None:
        self.memory = memory
        self.state = ArchState(pc=entry)
        self.trap_vector = trap_vector
        self.syscall_handler = syscall_handler
        self.trace_sink = trace_sink
        self._decode_cache: dict[int, Instruction] = {}
        self._pending_record: TraceRecord | None = None
        # Statistics.
        self.retired = 0
        self.kernel_retired = 0
        self.loads = 0
        self.stores = 0
        self.traps_taken = 0
        self.timer_interrupts = 0
        self._timer_count = 0

    # ------------------------------------------------------------------
    # Fetch / decode
    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> Instruction:
        instr = self._decode_cache.get(pc)
        if instr is not None:
            return instr
        if pc % INSTRUCTION_BYTES:
            raise SimError(f"misaligned pc {pc:#x}")
        try:
            word = self.memory.load(pc, INSTRUCTION_BYTES)
        except MemoryFault as exc:
            raise SimError(f"instruction fetch fault: {exc}") from exc
        instr = decode(word)
        self._decode_cache[pc] = instr
        return instr

    # ------------------------------------------------------------------
    # Trap delivery
    # ------------------------------------------------------------------
    def _take_trap(self, cause: TrapCause, epc: int, badaddr: int = 0) -> None:
        if self.trap_vector is None:
            raise SimError(f"trap {cause.name} at {epc:#x} with no kernel "
                           f"(badaddr={badaddr:#x})")
        state = self.state
        state.write_sysreg(SysReg.EPC, epc)
        state.write_sysreg(SysReg.CAUSE, int(cause))
        state.write_sysreg(SysReg.BADADDR, badaddr)
        state.enter_trap()
        state.pc = self.trap_vector
        self.traps_taken += 1

    def _timer_pending(self) -> bool:
        interval = self.state.read_sysreg(SysReg.TIMER)
        return (interval > 0 and self._timer_count >= interval
                and self.state.interrupts_enabled)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_instructions: int | None = None) -> int:
        """Run until HALT or *max_instructions*; returns the exit code.

        Raises :class:`SimError` if the budget is exhausted first (a
        budget overrun almost always means a hung workload).
        """
        budget = max_instructions if max_instructions is not None else -1
        try:
            while budget != 0:
                self.step()
                if budget > 0:
                    budget -= 1
        except SimHalted as halt:
            self._flush_trace()
            return halt.exit_code
        self._flush_trace()
        raise SimError(
            f"instruction budget exhausted after {self.retired} instructions "
            f"(pc={self.state.pc:#x})")

    def step(self) -> None:
        """Execute one instruction (or deliver one pending interrupt)."""
        state = self.state
        if self._timer_pending():
            self._timer_count = 0
            self.timer_interrupts += 1
            self._take_trap(TrapCause.TIMER, state.pc)
            return
        pc = state.pc
        kernel = state.kernel_mode
        instr = self._fetch(pc)
        record = self._begin_record(pc, instr)
        try:
            next_pc = self._execute(instr, pc, record)
        except _Trap as trap:
            epc = pc + INSTRUCTION_BYTES if trap.cause is TrapCause.SYSCALL \
                else pc
            if trap.cause is TrapCause.SYSCALL:
                # The syscall instruction itself retires before the trap.
                self._retire(record, instr, kernel)
            self._take_trap(trap.cause, epc, trap.badaddr)
            return
        state.pc = next_pc
        self._retire(record, instr, kernel)

    def _begin_record(self, pc: int, instr: Instruction) -> TraceRecord | None:
        if self.trace_sink is None:
            return None
        info = instr.info
        return TraceRecord(
            pc=pc,
            opclass=info.opclass,
            dest=instr.dest,
            sources=instr.sources,
            is_load=info.is_load,
            is_store=info.is_store,
            is_control=info.is_control,
            kernel=self.state.kernel_mode,
            instr=instr,
        )

    def _retire(self, record: TraceRecord | None, instr: Instruction,
                kernel: bool) -> None:
        self.retired += 1
        self._timer_count += 1
        if kernel:
            self.kernel_retired += 1
        if instr.is_load:
            self.loads += 1
        elif instr.is_store:
            self.stores += 1
        if record is not None:
            pending = self._pending_record
            if pending is not None:
                pending.next_pc = record.pc
                self.trace_sink(pending)
            self._pending_record = record

    def _flush_trace(self) -> None:
        pending = self._pending_record
        if pending is not None:
            pending.next_pc = pending.pc + INSTRUCTION_BYTES
            self.trace_sink(pending)
            self._pending_record = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction, pc: int,
                 record: TraceRecord | None) -> int:
        op = instr.opcode
        state = self.state
        regs = state.regs
        handler = _ALU_OPS.get(op)
        if handler is not None:
            value = handler(regs[instr.rs1], regs[instr.rs2], instr.imm)
            state.write_reg(instr.rd, value)
            return pc + 4
        info = instr.info
        if info.is_mem:
            return self._execute_mem(instr, pc, record)
        if info.opclass is OpClass.BRANCH:
            taken = _BRANCH_OPS[op](regs[instr.rs1], regs[instr.rs2])
            if record is not None:
                record.taken = taken
            return pc + 4 * instr.imm if taken else pc + 4
        if info.opclass is OpClass.JUMP:
            if record is not None:
                record.taken = True
            if op is Opcode.J:
                return pc + 4 * instr.imm
            if op is Opcode.JAL:
                state.write_reg(instr.rd, pc + 4)
                return pc + 4 * instr.imm
            target = regs[instr.rs1]
            if op is Opcode.JALR:
                state.write_reg(instr.rd, pc + 4)
            if target % INSTRUCTION_BYTES:
                raise _Trap(TrapCause.MISALIGNED, target)
            return target
        handler = _FP_OPS.get(op)
        if handler is not None:
            self._execute_fp(instr, handler)
            return pc + 4
        return self._execute_system(instr, pc)

    def _execute_mem(self, instr: Instruction, pc: int,
                     record: TraceRecord | None) -> int:
        state = self.state
        info = instr.info
        address = (state.regs[instr.rs1] + instr.imm) & _MASK64
        size = info.mem_size
        if address % size:
            raise _Trap(TrapCause.MISALIGNED, address)
        if record is not None:
            record.mem_addr = address
            record.mem_size = size
        try:
            if info.is_load:
                if info.mem_signed:
                    value = self.memory.load_signed(address, size)
                else:
                    value = self.memory.load(address, size)
                state.write_reg(instr.rd, value)
            else:
                self.memory.store(address, size, state.regs[instr.rs2])
        except MemoryFault as exc:
            raise _Trap(TrapCause.BADADDR, exc.address) from exc
        return pc + 4

    def _execute_fp(self, instr: Instruction,
                    handler: Callable[[float, float], float | int]) -> None:
        state = self.state
        op = instr.opcode
        if op is Opcode.FCVT_D_L:
            state.write_float(instr.rd, float(to_signed(state.regs[instr.rs1])))
            return
        if op is Opcode.FCVT_L_D:
            value = bits_to_float(state.regs[instr.rs1])
            state.write_reg(instr.rd, _clamp_to_int64(value))
            return
        if op is Opcode.FMOV:
            state.write_reg(instr.rd, state.regs[instr.rs1])
            return
        a = bits_to_float(state.regs[instr.rs1])
        b = bits_to_float(state.regs[instr.rs2])
        result = handler(a, b)
        if op in (Opcode.FEQ, Opcode.FLT, Opcode.FLE):
            state.write_reg(instr.rd, int(result))
        else:
            state.write_float(instr.rd, float(result))

    def _execute_system(self, instr: Instruction, pc: int) -> int:
        op = instr.opcode
        state = self.state
        if op is Opcode.NOP:
            return pc + 4
        if op is Opcode.HALT:
            if not state.kernel_mode:
                raise _Trap(TrapCause.ILLEGAL)
            raise SimHalted(to_signed(state.regs[ARG_REG]))
        if op is Opcode.SYSCALL:
            if self.trap_vector is None:
                if self.syscall_handler is None:
                    raise SimError(f"syscall at {pc:#x} with no handler")
                self.syscall_handler(self)
                return pc + 4
            raise _Trap(TrapCause.SYSCALL)
        # The remaining system ops are privileged.
        if not state.kernel_mode:
            raise _Trap(TrapCause.ILLEGAL)
        if op is Opcode.MFSR:
            if instr.imm == SysReg.CYCLES:
                state.write_reg(instr.rd, self.retired)
            else:
                state.write_reg(instr.rd, state.read_sysreg(instr.imm))
            return pc + 4
        if op is Opcode.MTSR:
            state.write_sysreg(instr.imm, state.regs[instr.rs1])
            if instr.imm == SysReg.TIMER:
                self._timer_count = 0
            return pc + 4
        if op is Opcode.ERET:
            target = state.read_sysreg(SysReg.EPC)
            state.leave_trap()
            if target % INSTRUCTION_BYTES:
                raise SimError(f"eret to misaligned pc {target:#x}")
            return target
        raise SimError(f"unhandled system opcode {op}")  # pragma: no cover


def _clamp_to_int64(value: float) -> int:
    if value != value:  # NaN
        return 0
    if value >= 2.0 ** 63:
        return (1 << 63) - 1
    if value <= -(2.0 ** 63):
        return 1 << 63  # -2^63 as unsigned
    return int(value) & _MASK64


def _fdiv(a: float, b: float) -> float:
    """IEEE-754 division: x/0 gives a signed infinity, 0/0 gives NaN."""
    try:
        return a / b
    except ZeroDivisionError:
        if a == 0.0 or a != a:
            return float("nan")
        return float("inf") if (a > 0) == (_sign_bit(b) == 0) else float("-inf")


def _sign_bit(value: float) -> int:
    return float_to_bits(value) >> 63


def _sra(a: int, shift: int) -> int:
    return (to_signed(a) >> shift) & _MASK64


def _div(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return _MASK64  # all ones, RISC-V convention
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return quotient & _MASK64


def _rem(a: int, b: int) -> int:
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        return a
    magnitude = abs(sa) % abs(sb)
    return (-magnitude if sa < 0 else magnitude) & _MASK64


#: rs1_value, rs2_value, imm -> result (unsigned 64-bit).
_ALU_OPS: dict[Opcode, Callable[[int, int, int], int]] = {
    Opcode.ADD: lambda a, b, i: (a + b) & _MASK64,
    Opcode.SUB: lambda a, b, i: (a - b) & _MASK64,
    Opcode.AND: lambda a, b, i: a & b,
    Opcode.OR: lambda a, b, i: a | b,
    Opcode.XOR: lambda a, b, i: a ^ b,
    Opcode.NOR: lambda a, b, i: ~(a | b) & _MASK64,
    Opcode.SLL: lambda a, b, i: (a << (b & 63)) & _MASK64,
    Opcode.SRL: lambda a, b, i: a >> (b & 63),
    Opcode.SRA: lambda a, b, i: _sra(a, b & 63),
    Opcode.SLT: lambda a, b, i: int(to_signed(a) < to_signed(b)),
    Opcode.SLTU: lambda a, b, i: int(a < b),
    Opcode.ADDI: lambda a, b, i: (a + i) & _MASK64,
    Opcode.ANDI: lambda a, b, i: a & (i & _MASK64),
    Opcode.ORI: lambda a, b, i: a | (i & _MASK64),
    Opcode.XORI: lambda a, b, i: a ^ (i & _MASK64),
    Opcode.SLLI: lambda a, b, i: (a << (i & 63)) & _MASK64,
    Opcode.SRLI: lambda a, b, i: a >> (i & 63),
    Opcode.SRAI: lambda a, b, i: _sra(a, i & 63),
    Opcode.SLTI: lambda a, b, i: int(to_signed(a) < i),
    Opcode.SLTIU: lambda a, b, i: int(a < (i & _MASK64)),
    Opcode.LUI: lambda a, b, i: (i << 15) & _MASK64,
    Opcode.MUL: lambda a, b, i: (a * b) & _MASK64,
    Opcode.MULH: lambda a, b, i: ((to_signed(a) * to_signed(b)) >> 64) & _MASK64,
    Opcode.DIV: lambda a, b, i: _div(a, b),
    Opcode.REM: lambda a, b, i: _rem(a, b),
}

_BRANCH_OPS: dict[Opcode, Callable[[int, int], bool]] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
    Opcode.BLTU: lambda a, b: a < b,
    Opcode.BGEU: lambda a, b: a >= b,
}

_FP_OPS: dict[Opcode, Callable[[float, float], float | int]] = {
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: _fdiv(a, b),
    Opcode.FNEG: lambda a, b: -a,
    Opcode.FABS: lambda a, b: abs(a),
    Opcode.FMOV: lambda a, b: a,
    Opcode.FCVT_D_L: lambda a, b: a,   # handled specially
    Opcode.FCVT_L_D: lambda a, b: a,   # handled specially
    Opcode.FEQ: lambda a, b: a == b,
    Opcode.FLT: lambda a, b: a < b,
    Opcode.FLE: lambda a, b: a <= b,
}
