"""``repro dash``: a self-contained static HTML dashboard.

Renders the ledger's longitudinal content — simulator throughput
(kIPS) and simulated IPC over code versions, the F2 headline table
(the paper's "one port reaches ~91% of dual-port" claim) over time,
and port-utilization sparklines from stored interval metrics — into
**one HTML file with inline CSS and SVG only**: no JavaScript
frameworks, no external fonts, no network access.  Open it from a CI
artifact or a laptop and it just renders.

Chart conventions (deliberate, for legibility and accessibility):

* every trend is a **single-series sparkline panel** (small multiples
  rather than a tangle of colored lines), so identity never rides on
  color alone;
* every point carries a native ``<title>`` tooltip with the code
  version, value and ingest date;
* every section ships a ``<details>`` table view of the underlying
  numbers;
* colors are defined once as CSS custom properties with selected
  light- and dark-mode values.
"""

from __future__ import annotations

import datetime
import html
import json

from .ledger import Ledger

__all__ = ["build_dashboard"]

#: Panels per sparkline section (the table view is never truncated).
MAX_PANELS = 12

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --good: #006300;
  --bad: #d03b3b;
  --border: rgba(11, 11, 11, 0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --good: #0ca30c;
    --bad: #e66767;
    --border: rgba(255, 255, 255, 0.10);
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1080px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 120px;
}
.tile .value { font-size: 22px; font-weight: 600; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.panels {
  display: grid; gap: 12px;
  grid-template-columns: repeat(auto-fill, minmax(300px, 1fr));
}
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px 6px;
}
.panel .name { font-size: 12px; color: var(--text-secondary);
  overflow-wrap: anywhere; }
.panel .latest { font-size: 18px; font-weight: 600; }
.panel .delta { font-size: 12px; margin-left: 6px; }
.delta.up { color: var(--good); }
.delta.down { color: var(--bad); }
.delta.flat { color: var(--text-muted); }
.panel svg { display: block; width: 100%; height: 56px;
  margin-top: 4px; }
.empty {
  background: var(--surface-1); border: 1px dashed var(--baseline);
  border-radius: 8px; padding: 16px; color: var(--text-muted);
}
table { border-collapse: collapse; background: var(--surface-1);
  font-variant-numeric: tabular-nums; }
th, td { border: 1px solid var(--grid); padding: 4px 10px;
  text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--text-secondary); font-weight: 600; }
details { margin: 8px 0 0; }
summary { cursor: pointer; color: var(--text-secondary);
  font-size: 12px; }
footer { margin-top: 32px; color: var(--text-muted); font-size: 12px; }
"""


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _delta_html(first: float, last: float) -> str:
    if not first:
        return ""
    change = (last - first) / abs(first)
    if abs(change) < 0.005:
        return '<span class="delta flat">±0%</span>'
    arrow, cls = ("▲", "up") if change > 0 else ("▼", "down")
    return (f'<span class="delta {cls}">{arrow} '
            f'{abs(change):.1%} vs first</span>')


def _sparkline(values: list[float], titles: list[str],
               width: int = 300, height: int = 56) -> str:
    """One inline-SVG sparkline: a 2px line, an 8px hoverable marker
    per point (native ``<title>`` tooltip), last point emphasized."""
    pad = 6
    low, high = min(values), max(values)
    span = (high - low) or max(abs(high), 1.0) * 0.1
    low -= span * 0.08
    high += span * 0.08

    def x(index: int) -> float:
        if len(values) == 1:
            return width / 2
        return pad + index * (width - 2 * pad) / (len(values) - 1)

    def y(value: float) -> float:
        return pad + (high - value) * (height - 2 * pad) / (high - low)

    parts = [f'<svg viewBox="0 0 {width} {height}" role="img" '
             f'preserveAspectRatio="none" '
             f'aria-label="{_esc(titles[-1])}">']
    parts.append(f'<line x1="0" y1="{height - 1}" x2="{width}" '
                 f'y2="{height - 1}" stroke="var(--baseline)" '
                 f'stroke-width="1" />')
    if len(values) > 1:
        points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                          for i, v in enumerate(values))
        parts.append(f'<polyline points="{points}" fill="none" '
                     f'stroke="var(--series-1)" stroke-width="2" '
                     f'stroke-linejoin="round" '
                     f'stroke-linecap="round" />')
    for index, value in enumerate(values):
        last = index == len(values) - 1
        radius = 4 if last else 3
        fill = ('var(--series-1)' if last else 'var(--surface-1)')
        parts.append(
            f'<circle cx="{x(index):.1f}" cy="{y(value):.1f}" '
            f'r="{radius}" fill="{fill}" stroke="var(--series-1)" '
            f'stroke-width="2"><title>{_esc(titles[index])}</title>'
            f'</circle>')
    parts.append("</svg>")
    return "".join(parts)


def _panel(name: str, values: list[float], titles: list[str],
           latest_text: str) -> str:
    delta = _delta_html(values[0], values[-1]) if len(values) > 1 else ""
    return (f'<div class="panel"><div class="name">{_esc(name)}</div>'
            f'<span class="latest">{_esc(latest_text)}</span>{delta}'
            f'{_sparkline(values, titles)}</div>')


def _table(columns: list[str], rows: list[list[object]]) -> str:
    head = "".join(f"<th>{_esc(column)}</th>" for column in columns)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row)
        + "</tr>" for row in rows)
    return (f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{body}</tbody></table>')


def _details_table(summary: str, columns: list[str],
                   rows: list[list[object]]) -> str:
    return (f"<details><summary>{_esc(summary)}</summary>"
            f"{_table(columns, rows)}</details>")


def _date(stamp: object) -> str:
    return str(stamp)[:10]


def _fmt(value: object, digits: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _tiles_section(ledger: Ledger) -> str:
    counts = ledger.counts()
    versions = ledger.code_versions()
    tiles = [
        ("manifests", counts["manifests"]),
        ("runs", counts["runs"]),
        ("bench entries", counts["bench"]),
        ("experiments", counts["experiments"]),
        ("code versions", len(versions)),
        ("latest version", versions[-1] if versions else "—"),
    ]
    cells = "".join(
        f'<div class="tile"><div class="value">{_esc(value)}</div>'
        f'<div class="label">{_esc(label)}</div></div>'
        for label, value in tiles)
    return f'<div class="tiles">{cells}</div>'


def _kips_section(ledger: Ledger) -> str:
    trend = ledger.kips_trend()
    parts = ['<h2 id="kips-trend">Simulator throughput '
             '(kIPS, median per bench cell)</h2>']
    if not trend:
        parts.append('<div class="empty">No bench manifests in the '
                     'ledger yet — run <code>repro bench --ledger '
                     '...</code>.</div>')
        return "".join(parts)
    panels = []
    table_rows = []
    for label, entries in sorted(trend.items()):
        entries = [entry for entry in entries
                   if entry["kips_median"] is not None]
        if not entries:
            continue
        values = [entry["kips_median"] for entry in entries]
        titles = [f"{entry['code_version']} · "
                  f"{entry['kips_median']:.1f} kIPS · "
                  f"{_date(entry['ingested_at'])}"
                  for entry in entries]
        panels.append(_panel(label, values, titles,
                             f"{values[-1]:.1f} kIPS"))
        for entry in entries:
            table_rows.append([label, entry["code_version"],
                               _date(entry["ingested_at"]),
                               f"{entry['kips_median']:.1f}",
                               f"{entry['kips_iqr']:.2f}",
                               entry["instructions"], entry["cycles"]])
    if not panels:
        parts.append('<div class="empty">No bench manifests in the '
                     'ledger yet — run <code>repro bench --ledger '
                     '...</code>.</div>')
        return "".join(parts)
    parts.append(f'<div class="panels">{"".join(panels[:MAX_PANELS])}'
                 f'</div>')
    parts.append(_details_table(
        "table view — every bench entry",
        ["cell", "code version", "ingested", "kIPS median",
         "kIPS IQR", "instructions", "cycles"], table_rows))
    return "".join(parts)


#: The F2 table row/columns the headline section trends.
F2_ROW = "MEAN (all)"
F2_COLUMNS = ("1P/2P", "tech/2P", "1P/2P+SC", "tech/2P+SC")


def _f2_section(ledger: Ledger) -> str:
    parts = ['<h2 id="f2-headline">F2 headline: single-port IPC '
             'relative to dual-port, over time</h2>']
    histories = {column: ledger.experiment_history("F2", F2_ROW, column)
                 for column in F2_COLUMNS}
    spine = histories[F2_COLUMNS[1]] or histories[F2_COLUMNS[0]]
    if not spine:
        parts.append('<div class="empty">No F2 experiment manifests '
                     'in the ledger yet — run <code>repro experiment '
                     'F2 --json --ledger ...</code>.</div>')
        return "".join(parts)
    by_digest = {
        column: {entry["manifest_digest"]: entry for entry in history}
        for column, history in histories.items()}
    rows = []
    for entry in spine:
        digest = entry["manifest_digest"]
        row: list[object] = [entry["code_version"], entry["scale"],
                             _date(entry["ingested_at"])]
        for column in F2_COLUMNS:
            cell = by_digest[column].get(digest)
            row.append(_fmt(cell["number"]) if cell is not None
                       and cell["number"] is not None else "—")
        rows.append(row)
    parts.append(_table(["code version", "scale", "ingested",
                         *F2_COLUMNS], rows))
    ratios = [entry["number"] for entry in histories[F2_COLUMNS[1]]
              if entry["number"] is not None]
    if ratios:
        parts.append(
            f'<p class="subtitle">latest tech/2P ratio: '
            f'<strong>{ratios[-1]:.3f}</strong> (paper: ~0.91)</p>')
    return "".join(parts)


def _run_key_label(key: dict) -> str:
    workload = key["workload"] or key["trace_file"] or "trace"
    label = f"{workload}@{key['scale']}" if key["scale"] else workload
    if key["seed"] is not None:
        label += f"#seed{key['seed']}"
    return f"{label}/{key['config_name']}"


def _ipc_section(ledger: Ledger) -> str:
    parts = ['<h2 id="ipc-trend">Simulated IPC per run key '
             '(trace digest × config digest)</h2>']
    keys = [key for key in ledger.run_keys() if key["entries"] >= 2]
    panels = []
    table_rows = []
    for key in keys[:MAX_PANELS]:
        history = [entry for entry
                   in ledger.run_history(key["trace_digest"],
                                         key["config_digest"])
                   if entry["ipc"] is not None]
        if len(history) < 2:
            continue
        values = [entry["ipc"] for entry in history]
        titles = [f"{entry['code_version']} · IPC {entry['ipc']:.3f} "
                  f"· {_date(entry['ingested_at'])}"
                  for entry in history]
        label = _run_key_label(key)
        panels.append(_panel(label, values, titles,
                             f"IPC {values[-1]:.3f}"))
        for entry in history:
            table_rows.append([label, entry["code_version"],
                               _date(entry["ingested_at"]),
                               f"{entry['ipc']:.4f}",
                               entry["instructions"],
                               entry["cycles"]])
    if not panels:
        parts.append('<div class="empty">No run key has two or more '
                     'ledger entries yet.</div>')
        return "".join(parts)
    parts.append(f'<div class="panels">{"".join(panels)}</div>')
    parts.append(_details_table(
        "table view — every run entry (keys with history)",
        ["run key", "code version", "ingested", "IPC",
         "instructions", "cycles"], table_rows))
    return "".join(parts)


def _port_util_section(ledger: Ledger) -> str:
    parts = ['<h2 id="port-util">Port utilization over a run '
             '(latest stored interval metrics per key)</h2>']
    panels = []
    for key in ledger.run_keys():
        if len(panels) >= MAX_PANELS:
            break
        latest = ledger.latest_run(key["trace_digest"],
                                   key["config_digest"])
        if latest is None or not latest["has_metrics"]:
            continue
        report = ledger.run_document(latest["manifest_digest"],
                                     latest["run_index"])
        metrics = (report or {}).get("metrics") or {}
        series = metrics.get("port_util") or []
        starts = metrics.get("start_cycle") or []
        if not series:
            continue
        titles = [f"cycle {starts[i] if i < len(starts) else '?'}: "
                  f"{value:.1%} of {metrics.get('ports', '?')} port(s)"
                  for i, value in enumerate(series)]
        panels.append(_panel(
            f"{_run_key_label(key)} "
            f"({latest['code_version'] or 'unknown'})",
            [float(v) for v in series], titles,
            f"{series[-1]:.1%} last interval"))
    if not panels:
        parts.append('<div class="empty">No stored run carries '
                     'interval metrics — simulate with '
                     '<code>--metrics-interval N --ledger ...</code>.'
                     '</div>')
        return "".join(parts)
    parts.append(f'<div class="panels">{"".join(panels)}</div>')
    return "".join(parts)


def _bottleneck_section(ledger: Ledger) -> str:
    parts = ['<h2 id="bottleneck">Bottleneck: critical-path CPI stack '
             '(latest critpath analysis per key)</h2>']
    rows = []
    for key in ledger.critpath_keys()[:MAX_PANELS]:
        latest = ledger.latest_critpath(key["trace_digest"],
                                        key["config_digest"])
        if latest is None:
            continue
        heaviest = sorted(latest["stack"].items(),
                          key=lambda item: -item[1]["cycles"])[:4]
        breakdown = ", ".join(
            f"{edge_class} {entry['share']:.1%}"
            for edge_class, entry in heaviest if entry["cycles"])
        rows.append([_run_key_label(key),
                     latest["code_version"] or "unknown",
                     _date(latest["ingested_at"]),
                     latest["cycles"],
                     f"{latest['ipc']:.3f}",
                     breakdown or "—"])
    if not rows:
        parts.append('<div class="empty">No critical-path manifests '
                     'in the ledger yet — simulate with '
                     '<code>--critpath --ledger ...</code> or run '
                     '<code>repro critpath</code>.</div>')
        return "".join(parts)
    parts.append(_table(
        ["run key", "code version", "ingested", "cycles", "IPC",
         "heaviest edge classes (share of all cycles)"], rows))
    return "".join(parts)


def _hotspots_section(ledger: Ledger) -> str:
    parts = ['<h2 id="hotspots">Hotspots: top PCs by port-conflict '
             'slots (latest per-PC attribution per key)</h2>']
    rows = []
    for key in ledger.hotspot_keys()[:MAX_PANELS]:
        latest = ledger.latest_hotspots(key["trace_digest"],
                                        key["config_digest"])
        if latest is None:
            continue
        top = ", ".join(
            f"{hex(row['pc'])}"
            f"{'K' if row['kernel'] else ''}"
            f" ({row['port_conflict_slots']})"
            for row in latest["rows"][:4]
            if row["port_conflict_slots"]) or "—"
        total = (latest["kernel_instructions"]
                 + latest["user_instructions"]) or 1
        conflict = (latest["kernel_port_conflict"]
                    + latest["user_port_conflict"])
        kernel_share = (latest["kernel_port_conflict"] / conflict
                        if conflict else 0.0)
        rows.append([_run_key_label(key),
                     latest["code_version"] or "unknown",
                     _date(latest["ingested_at"]),
                     latest["static_pcs"],
                     f"{latest['kernel_instructions'] / total:.1%}",
                     f"{kernel_share:.1%}",
                     top])
    if not rows:
        parts.append('<div class="empty">No hotspot manifests in the '
                     'ledger yet — simulate with <code>--hotspots '
                     '--ledger ...</code> or run <code>repro '
                     'hotspots</code>.</div>')
        return "".join(parts)
    parts.append(_table(
        ["run key", "code version", "ingested", "static PCs",
         "kernel instr share", "kernel port-conflict share",
         "top port-conflict PCs (slots; K = kernel)"], rows))
    return "".join(parts)


def build_dashboard(ledger: Ledger,
                    title: str = "repro — longitudinal observability",
                    ) -> str:
    """Render the whole dashboard as one self-contained HTML page."""
    generated = datetime.datetime.now(
        datetime.timezone.utc).isoformat(timespec="seconds")
    versions = ledger.code_versions()
    sections = [
        _tiles_section(ledger),
        _kips_section(ledger),
        _f2_section(ledger),
        _ipc_section(ledger),
        _port_util_section(ledger),
        _bottleneck_section(ledger),
        _hotspots_section(ledger),
    ]
    subtitle = (f"{_esc(ledger.path)} · "
                f"{len(versions)} code version(s) · generated "
                f"{_esc(generated)}")
    body = "\n".join(sections)
    return (
        "<!doctype html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n<main>\n"
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="subtitle">{subtitle}</p>\n'
        f"{body}\n"
        "<footer>Self-contained static export — inline CSS/SVG, no "
        "scripts, no external requests. Built by <code>repro "
        "dash</code> from the results ledger "
        f"(ledger schema v{ledger.db_version}; manifest documents "
        "stored verbatim, "
        f"{_esc(json.dumps(ledger.counts()['manifests']))} total)."
        "</footer>\n"
        "</main>\n</body>\n</html>\n")
