"""Hierarchical span tracing for the simulator's *own* wall-clock.

Where :mod:`repro.obs.tracer` records what the simulated machine did
(cycle-stamped events), this module records where the **host's** time
went while simulating: nested begin/end spans with a category and
arbitrary JSON-simple args, exported in the Chrome Trace Event Format
so a capture loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

The discipline matches the rest of the observability layer — zero
overhead when off:

* components that are handed a recorder explicitly (the timing core,
  the experiment engine) guard call sites with a single ``is None``
  check;
* components too far from the call chain to thread a parameter through
  (the workload suite's trace cache) consult the context-local
  *current recorder* (:func:`current`), which is ``None`` by default.

Each :class:`SpanRecorder` carries a ``(pid, tid)`` identity, so
per-worker recordings from a multiprocess experiment run merge into
one coherent fleet timeline: every worker records against a shared
epoch (``epoch_us``) and the parent concatenates the event lists
(:func:`merge_events`) into a single Perfetto-loadable document.

Event kinds used (the ``ph`` field):

==========  =========================================================
``B``/``E``  span begin / end (same ``name``, properly nested per tid)
``i``        instant event (thread-scoped)
``M``        metadata: ``process_name`` / ``thread_name`` labels
==========  =========================================================
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "NULL_SPANS",
    "Span",
    "SpanRecorder",
    "SpanTracer",
    "activate",
    "chrome_trace",
    "count_spans",
    "current",
    "merge_events",
    "parse_chrome_trace",
    "set_current",
    "timestamp_us",
    "write_chrome_trace",
]

#: ``ph`` values a capture may legally contain.
PHASES = frozenset({"B", "E", "i", "M"})


def timestamp_us() -> int:
    """Wall-clock microseconds (epoch-based, so values from different
    processes share one timeline)."""
    return time.time_ns() // 1_000


class SpanTracer:
    """Base tracer; also the disabled no-op implementation."""

    #: Class attribute so a guard is one LOAD_ATTR + jump.
    enabled = False

    def begin(self, name: str, cat: str = "sim", **args: object) -> None:
        """Open a nested span (no-op unless overridden)."""

    def end(self, **args: object) -> None:
        """Close the innermost open span."""

    def instant(self, name: str, cat: str = "sim",
                **args: object) -> None:
        """Record a zero-duration marker."""

    @contextmanager
    def span(self, name: str, cat: str = "sim",
             **args: object) -> Iterator["SpanTracer"]:
        self.begin(name, cat, **args)
        try:
            yield self
        finally:
            self.end()


#: The shared disabled tracer.
NULL_SPANS = SpanTracer()


class SpanRecorder(SpanTracer):
    """Records spans in memory; export with :func:`chrome_trace`.

    ``epoch_us`` anchors every timestamp: pass the parent's epoch to
    worker recorders so a merged trace shares one time origin.  ``pid``
    / ``tid`` default to the operating-system process id and thread 0
    — the experiment engine's workers therefore land on separate
    Perfetto tracks automatically.  ``clock`` is injectable for tests.
    """

    enabled = True

    def __init__(self, label: str | None = None, *,
                 pid: int | None = None, tid: int = 0,
                 epoch_us: int | None = None,
                 clock=timestamp_us) -> None:
        import os
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self.epoch_us = clock() if epoch_us is None else epoch_us
        self._clock = clock
        self._events: list[dict] = []
        self._stack: list[str] = []
        self._last_ts = 0
        if label is not None:
            self._meta("process_name", label)

    # ------------------------------------------------------------------
    def now_us(self) -> int:
        """Microseconds since the recorder's epoch."""
        return self._clock() - self.epoch_us

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def _meta(self, name: str, value: str) -> None:
        self._events.append({"ph": "M", "name": name, "ts": 0,
                             "pid": self.pid, "tid": self.tid,
                             "args": {"name": value}})

    def add(self, ph: str, name: str, cat: str, ts: int,
            args: dict | None = None) -> None:
        """Low-level append (used by the self-profiler to lay out
        per-chunk stage slices whose timestamps are computed after the
        fact).  Timestamps are clamped monotonic per recorder so a
        capture always satisfies the exporter's invariants."""
        if ts < self._last_ts:
            ts = self._last_ts
        self._last_ts = ts
        event: dict = {"ph": ph, "name": name, "cat": cat, "ts": ts,
                       "pid": self.pid, "tid": self.tid}
        if ph == "i":
            event["s"] = "t"
        if args:
            event["args"] = args
        self._events.append(event)

    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "sim", **args: object) -> None:
        self._stack.append(name)
        self.add("B", name, cat, self.now_us(), args or None)

    def end(self, **args: object) -> None:
        if not self._stack:
            raise RuntimeError("SpanRecorder.end() with no open span")
        name = self._stack.pop()
        self.add("E", name, "sim", self.now_us(), args or None)

    def instant(self, name: str, cat: str = "sim",
                **args: object) -> None:
        self.add("i", name, cat, self.now_us(), args or None)

    def events(self) -> list[dict]:
        """The recorded event list (shared, not a copy)."""
        return self._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanRecorder(pid={self.pid}, tid={self.tid}, "
                f"events={len(self._events)}, open={self.depth})")


# ----------------------------------------------------------------------
# The context-local current recorder
# ----------------------------------------------------------------------
_current: ContextVar[SpanRecorder | None] = ContextVar(
    "repro_span_recorder", default=None)


def current() -> SpanRecorder | None:
    """The active recorder, or None (the default: tracing off)."""
    return _current.get()


def set_current(recorder: SpanRecorder | None) -> SpanRecorder | None:
    """Install *recorder* as the context's active recorder."""
    _current.set(recorder)
    return recorder


@contextmanager
def activate(recorder: SpanRecorder | None) -> Iterator[
        SpanRecorder | None]:
    """Scoped :func:`set_current`; restores the previous recorder."""
    token = _current.set(recorder)
    try:
        yield recorder
    finally:
        _current.reset(token)


# ----------------------------------------------------------------------
# Chrome Trace Event Format export
# ----------------------------------------------------------------------
def merge_events(*event_lists: list[dict]) -> list[dict]:
    """Concatenate per-recorder event lists into one stream.

    Each input list must be internally ordered (recorders guarantee
    it); streams from different ``(pid, tid)`` tracks need no global
    order.  Duplicate metadata events (a worker that recorded several
    jobs re-labels itself each time) are dropped.

    Recorders clamp their own timestamps, but the wall clock they read
    is not monotonic across recorders — a worker that runs two jobs
    creates two recorders on the same track, and a clock step between
    them would break the exporter's per-track ordering invariant.  The
    merge therefore re-clamps timestamps per ``(pid, tid)`` track.
    """
    merged: list[dict] = []
    seen_meta: set[tuple] = set()
    last_ts: dict[tuple, int] = {}
    for events in event_lists:
        for event in events:
            if event.get("ph") == "M":
                key = (event.get("pid"), event.get("tid"),
                       event.get("name"),
                       json.dumps(event.get("args"), sort_keys=True))
                if key in seen_meta:
                    continue
                seen_meta.add(key)
            else:
                track = (event.get("pid"), event.get("tid"))
                floor = last_ts.get(track, 0)
                if event["ts"] < floor:
                    event = dict(event, ts=floor)
                last_ts[track] = event["ts"]
            merged.append(event)
    return merged


def chrome_trace(events: list[dict]) -> dict:
    """Wrap an event list in the Chrome Trace Event Format envelope."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: list[dict]) -> None:
    """Write a Perfetto-loadable JSON capture."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events), handle, separators=(",", ":"))
        handle.write("\n")


def count_spans(events: list[dict]) -> int:
    """Number of spans (``B`` events) in an event list."""
    return sum(1 for event in events if event.get("ph") == "B")


# ----------------------------------------------------------------------
# Parsing (the round-trip half)
# ----------------------------------------------------------------------
@dataclass
class Span:
    """One parsed span, with its nested children."""

    name: str
    cat: str
    ts: int
    dur: int
    pid: int
    tid: int
    args: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def _check_event(event: object, index: int) -> dict:
    if not isinstance(event, dict):
        raise ValueError(f"event {index}: not an object")
    for key in ("ph", "name", "ts", "pid", "tid"):
        if key not in event:
            raise ValueError(f"event {index}: missing key {key!r}")
    if event["ph"] not in PHASES:
        raise ValueError(f"event {index}: unknown ph {event['ph']!r}")
    if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
        raise ValueError(f"event {index}: bad ts {event['ts']!r}")
    return event


def parse_chrome_trace(document: dict | list,
                       ) -> dict[tuple[int, int], list[Span]]:
    """Parse a Chrome-trace document back into span trees per
    ``(pid, tid)`` track.

    Validates what the exporter guarantees — required keys, known
    ``ph`` values, per-track monotonic timestamps, and balanced
    nesting (every ``E`` matches the innermost open ``B``; nothing is
    left open) — and raises :class:`ValueError` on any violation.
    """
    events = document.get("traceEvents") if isinstance(document, dict) \
        else document
    if not isinstance(events, list):
        raise ValueError("no traceEvents list")
    roots: dict[tuple[int, int], list[Span]] = {}
    stacks: dict[tuple[int, int], list[Span]] = {}
    last_ts: dict[tuple[int, int], float] = {}
    for index, raw in enumerate(events):
        event = _check_event(raw, index)
        if event["ph"] == "M":
            continue
        track = (event["pid"], event["tid"])
        ts = event["ts"]
        if ts < last_ts.get(track, 0):
            raise ValueError(
                f"event {index}: ts {ts} goes backwards on track "
                f"{track} (last {last_ts[track]})")
        last_ts[track] = ts
        stack = stacks.setdefault(track, [])
        if event["ph"] == "B":
            span = Span(name=event["name"],
                        cat=event.get("cat", ""), ts=ts, dur=0,
                        pid=event["pid"], tid=event["tid"],
                        args=dict(event.get("args") or {}))
            (stack[-1].children if stack
             else roots.setdefault(track, [])).append(span)
            stack.append(span)
        elif event["ph"] == "E":
            if not stack:
                raise ValueError(f"event {index}: E with no open span "
                                 f"on track {track}")
            span = stack.pop()
            if span.name != event["name"]:
                raise ValueError(
                    f"event {index}: E {event['name']!r} closes "
                    f"B {span.name!r} on track {track}")
            span.dur = int(ts - span.ts)
            span.args.update(event.get("args") or {})
        else:  # instant: a zero-duration leaf
            span = Span(name=event["name"],
                        cat=event.get("cat", ""), ts=ts, dur=0,
                        pid=event["pid"], tid=event["tid"],
                        args=dict(event.get("args") or {}))
            (stack[-1].children if stack
             else roots.setdefault(track, [])).append(span)
    unbalanced = {track: [span.name for span in stack]
                  for track, stack in stacks.items() if stack}
    if unbalanced:
        raise ValueError(f"unbalanced spans left open: {unbalanced}")
    return roots
