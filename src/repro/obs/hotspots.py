"""Program-level attribution: per-PC hotspot profiling.

Every other observability layer — the stall ledger, interval metrics,
spans, even the critical-path CPI stack — reports costs as machine-wide
aggregates.  This module answers the program-level question the paper's
whole argument turns on: *which static memory reference* burns the port
cycles, and is it kernel or user code?

A :class:`HotspotRecorder` attaches to the timing core the same way the
tracer, metrics and critpath recorders do (zero overhead when off:
every call site is a single ``is None`` check) and accumulates, per
static PC **and privilege level** (the PR 9 kernel layout marks every
trace record ``kernel``/user):

* **executions** — commits of that PC;
* **retire-time stall slots** — the lost issue slots the stall ledger
  charged while that PC sat at the commit head, split by
  :class:`~repro.obs.stall.StallCause`;
* **LSQ routing** (per load): order/forwarding waits, SQ/WB forwards,
  line-buffer hits, real port loads, combining wins — the per-load
  mirror of the global ``lsq.*`` counters;
* **D-cache accesses** (per port access): per-port uses, bank
  conflicts, hits/misses/secondary misses, MSHR-full retries, store
  outcomes, prefetches, writebacks and victim-cache hits — the
  per-access mirror of the global ``dcache.*`` / ``victim.*`` counters,
  attributed to the access's batch-leader PC (write-buffer drains have
  no program context and land in the ``unattributed`` bucket);
* an **address-stream analyzer** (memory PCs only): dominant-stride
  detection, touched-bank and touched-set histograms (rendered as an
  ASCII set-conflict heatmap), and working-set cardinality.

**Conservation contract.**  The recorder mirrors existing counters at
their existing increment sites, so the per-PC rows reconcile *exactly*
(integer-equal) with the pre-existing global counters:

* ``sum(row.executions) == instructions``
* per cause: ``sum(row.stall[c]) + frontend_stall[c] == ledger.lost[c]``
  (cycles with an empty window have no commit-head PC; their slots land
  in the ``frontend_stall`` bucket)
* per ``lsq.*`` counter: ``sum(row.lsq[c]) == lsq.c``
* per ``dcache.*`` counter: ``sum(row.dcache[c]) + unattributed[c] ==
  dcache.c`` (and ``victim_hits`` against ``victim.hits``)
* per-port: the per-PC port histograms sum to ``dcache.port_uses``.

:func:`validate_hotspots_report` recomputes every sum from the manifest
rows and rejects any drift; :meth:`HotspotRecorder.check_conservation`
asserts the same against a live :class:`~repro.core.pipeline.CoreResult`.

**Granularity note.**  ``lsq.*`` rows count *loads* while ``dcache.*``
rows count *port accesses*: with load combining one access serves a
whole chunk batch, so e.g. ``load_hits`` (accesses, charged to the
batch leader) is at most ``port_loads`` (loads).  The 1996-era machine
has no store-set predictor; the paper-adjacent "store-set squash" cost
shows up here as the memory-ordering waits (``order_stalls`` /
``sq_waits`` / ``wb_conflicts`` and the ``mem_order`` stall cause).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .codeversion import code_version
from .report import SchemaError, _check_code_version, _dcache_dict, _require
from .stall import CAUSE_ORDER

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.config import CoreConfig
    from ..core.pipeline import CoreResult
    from ..core.uop import Uop
    from ..mem.dcache import DataCacheSystem
    from ..trace.record import TraceRecord

#: Version of the hotspots manifest schema.
HOTSPOTS_SCHEMA_VERSION = 1

HOTSPOTS_SCHEMA = f"repro.hotspots/{HOTSPOTS_SCHEMA_VERSION}"

#: Distinct strides tracked per memory PC before folding into "other".
STRIDE_CAP = 64
#: Distinct cache sets tracked per memory PC before folding.
SET_CAP = 4096
#: Working-set lines tracked per memory PC before saturating.
WORKING_SET_CAP = 4096

#: ``repro hotspots --sort`` choices -> row ranking.
HOTSPOT_SORTS = ("port", "stall", "executions", "misses")

#: Per-load LSQ counters mirrored per PC; each name ``c`` reconciles
#: exactly with the global ``lsq.c`` counter.
LSQ_COUNTERS = ("order_stalls", "sq_waits", "wb_conflicts", "sq_forwards",
                "wb_forwards", "lb_loads", "port_loads", "combined_loads")

#: Per-access D-cache counters mirrored per PC; each reconciles exactly
#: with the global counter named in :data:`_DCACHE_STAT_NAMES`.
DCACHE_COUNTERS = ("port_uses", "bank_conflicts", "load_no_port",
                   "load_hits", "load_misses", "load_secondary_misses",
                   "load_mshr_full", "store_no_port", "store_hits",
                   "store_misses", "store_mshr_merges", "store_mshr_full",
                   "prefetches", "writebacks", "victim_hits")

_DCACHE_STAT_NAMES = {name: f"dcache.{name}" for name in DCACHE_COUNTERS}
_DCACHE_STAT_NAMES["victim_hits"] = "victim.hits"

#: ``Uop.mem_source`` -> the per-load LSQ service counter it tallies.
_SOURCE_COUNTER = {
    "sq": "sq_forwards",
    "wb": "wb_forwards",
    "lb": "lb_loads",
    "hit": "port_loads",
    "miss": "port_loads",
    "secondary": "port_loads",
}

_CAUSE_VALUES = tuple(cause.value for cause in CAUSE_ORDER)
_CAUSE_SET = frozenset(_CAUSE_VALUES)

#: Intensity ramp for the set-conflict heatmap.
_HEAT_CHARS = " .:-=+*#%@"


class _Row:
    """Counters for one (static PC, privilege level) pair."""

    __slots__ = ("pc", "kernel", "kind", "disasm", "executions",
                 "stall", "lsq", "dcache", "ports",
                 "last_addr", "accesses", "strides", "stride_other",
                 "banks", "sets", "set_overflow", "lines", "lines_full")

    def __init__(self, record: "TraceRecord", banks: int,
                 ports: int) -> None:
        self.pc = record.pc
        self.kernel = record.kernel
        self.kind = record.opclass.name
        instr = record.instr
        self.disasm = str(instr) if instr is not None else None
        self.executions = 0
        self.stall: dict[str, int] = {}
        self.lsq: dict[str, int] = {}
        self.dcache: dict[str, int] = {}
        self.ports = [0] * ports
        # Address-stream state (memory PCs only).
        self.last_addr: int | None = None
        self.accesses = 0
        self.strides: dict[int, int] = {}
        self.stride_other = 0
        self.banks = [0] * banks
        self.sets: dict[int, int] = {}
        self.set_overflow = 0
        self.lines: set[int] = set()
        self.lines_full = False


class HotspotRecorder:
    """Streams per-PC execution/memory/stall attribution.

    Attach via ``OoOCore(machine, hotspots=recorder)``; after ``run()``
    the core calls :meth:`finalize` and the rows are available through
    :meth:`rows` / :meth:`as_dict`.  One recorder serves one run.
    """

    def __init__(self) -> None:
        self._rows: dict[tuple[int, bool], _Row] = {}
        self._frontend: dict[str, int] = {}
        self._unattributed: dict[str, int] = {}
        self._unattributed_ports: list[int] = []
        self._line_shift = 5
        self._bank_mask = 0
        self._set_mask = 0
        self._num_sets = 1
        self._num_banks = 1
        self._num_ports = 1
        self.total_cycles = 0
        self.instructions = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Core/LSQ/D-cache hooks (every call site is behind one `is None`)
    # ------------------------------------------------------------------
    def begin_run(self, cfg: "CoreConfig",
                  dcache: "DataCacheSystem") -> None:
        """Capture the cache geometry the address-stream analyzer keys
        on (line size, banking, set count, port count); called once at
        ``run()`` entry."""
        if self._finalized:
            raise ValueError("a HotspotRecorder serves exactly one run")
        del cfg  # geometry is all the analyzer needs today
        self._line_shift = dcache.line_shift
        self._num_banks = dcache.config.banks
        self._bank_mask = dcache.config.banks - 1
        self._num_sets = dcache.config.geometry.num_sets
        self._set_mask = self._num_sets - 1
        self._num_ports = dcache.config.ports
        self._unattributed_ports = [0] * self._num_ports

    def _row(self, record: "TraceRecord") -> _Row:
        key = (record.pc, record.kernel)
        row = self._rows.get(key)
        if row is None:
            row = self._rows[key] = _Row(record, self._num_banks,
                                         self._num_ports)
        return row

    def record_commit(self, uop: "Uop") -> None:
        """One instruction retired: count the execution and feed the
        address-stream analyzer for memory PCs."""
        record = uop.record
        row = self._row(record)
        row.executions += 1
        if record.mem_size <= 0:
            return
        addr = record.mem_addr
        last = row.last_addr
        if last is not None:
            delta = addr - last
            strides = row.strides
            if delta in strides:
                strides[delta] += 1
            elif len(strides) < STRIDE_CAP:
                strides[delta] = 1
            else:
                row.stride_other += 1
        row.last_addr = addr
        row.accesses += 1
        line = addr >> self._line_shift
        row.banks[line & self._bank_mask] += 1
        index = line & self._set_mask
        sets = row.sets
        if index in sets:
            sets[index] += 1
        elif len(sets) < SET_CAP:
            sets[index] = 1
        else:
            row.set_overflow += 1
        lines = row.lines
        if line in lines:
            return
        if len(lines) < WORKING_SET_CAP:
            lines.add(line)
        else:
            row.lines_full = True

    def note_stall(self, cause, lost: int, uop: "Uop | None") -> None:
        """The ledger charged *lost* slots to *cause* this cycle; *uop*
        is the commit head it blamed (``None``: empty window, the
        frontend bucket takes the slots)."""
        if uop is None:
            value = cause.value
            self._frontend[value] = self._frontend.get(value, 0) + lost
            return
        row = self._row(uop.record)
        value = cause.value
        row.stall[value] = row.stall.get(value, 0) + lost

    def note_lsq_wait(self, uop: "Uop", counter: str) -> None:
        """The LSQ skipped this load for a cycle (``order_stalls`` /
        ``sq_waits`` / ``wb_conflicts``, mirroring ``lsq.*``)."""
        lsq = self._row(uop.record).lsq
        lsq[counter] = lsq.get(counter, 0) + 1

    def note_lsq_service(self, uop: "Uop", source: str) -> None:
        """The LSQ serviced this load from *source* (the
        ``Uop.mem_source`` vocabulary)."""
        counter = _SOURCE_COUNTER.get(source)
        if counter is None:
            return
        lsq = self._row(uop.record).lsq
        lsq[counter] = lsq.get(counter, 0) + 1

    def note_lsq_combined(self, uop: "Uop") -> None:
        """This load rode another load's port access (combining win)."""
        lsq = self._row(uop.record).lsq
        lsq["combined_loads"] = lsq.get("combined_loads", 0) + 1

    def note_dcache(self, record: "TraceRecord | None",
                    counter: str) -> None:
        """One D-cache event attributed to the access context *record*
        (``None``: a write-buffer drain, the unattributed bucket)."""
        if record is None:
            bucket = self._unattributed
            bucket[counter] = bucket.get(counter, 0) + 1
            return
        dcache = self._row(record).dcache
        dcache[counter] = dcache.get(counter, 0) + 1

    def note_dcache_port(self, record: "TraceRecord | None",
                         port: int) -> None:
        """One real port access went through physical port *port*."""
        if record is None:
            bucket = self._unattributed
            bucket["port_uses"] = bucket.get("port_uses", 0) + 1
            self._unattributed_ports[port] += 1
            return
        row = self._row(record)
        row.dcache["port_uses"] = row.dcache.get("port_uses", 0) + 1
        row.ports[port] += 1

    def finalize(self, cycles: int, instructions: int) -> None:
        """Close the recorder; called by the core after its loop drains."""
        if self._finalized:
            return
        self.total_cycles = cycles
        self.instructions = instructions
        self._finalized = True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise ValueError("hotspot results are available only after "
                             "the run finalizes the recorder")

    def _row_dict(self, row: _Row) -> dict[str, object]:
        entry: dict[str, object] = {
            "pc": row.pc,
            "pc_hex": f"0x{row.pc:x}",
            "kernel": row.kernel,
            "kind": row.kind,
            "disasm": row.disasm,
            "executions": row.executions,
            "stall": {value: row.stall[value] for value in _CAUSE_VALUES
                      if row.stall.get(value)},
            "stall_total": sum(row.stall.values()),
            "lsq": {name: row.lsq[name] for name in LSQ_COUNTERS
                    if row.lsq.get(name)},
            "dcache": {name: row.dcache[name] for name in DCACHE_COUNTERS
                       if row.dcache.get(name)},
        }
        if any(row.ports):
            entry["ports"] = list(row.ports)
        if row.accesses:
            entry["stream"] = self._stream_dict(row)
        return entry

    def _stream_dict(self, row: _Row) -> dict[str, object]:
        dominant = None
        coverage = 0.0
        deltas = sum(row.strides.values()) + row.stride_other
        if row.strides:
            dominant = max(row.strides,
                           key=lambda delta: (row.strides[delta], -delta))
            coverage = row.strides[dominant] / deltas if deltas else 0.0
        top_strides = sorted(row.strides.items(),
                             key=lambda item: (-item[1], item[0]))[:8]
        return {
            "accesses": row.accesses,
            "dominant_stride": dominant,
            "stride_coverage": coverage,
            "strides": {str(delta): count for delta, count in top_strides},
            "stride_other": row.stride_other,
            "banks": list(row.banks),
            "sets": {str(index): count
                     for index, count in sorted(row.sets.items())},
            "set_overflow": row.set_overflow,
            "working_set_lines": len(row.lines),
            "working_set_saturated": row.lines_full,
        }

    @staticmethod
    def _sort_key(sort: str):
        if sort == "port":
            return lambda r: (-r.stall.get("dcache_port", 0),
                              -r.dcache.get("port_uses", 0), r.pc)
        if sort == "stall":
            return lambda r: (-sum(r.stall.values()), r.pc)
        if sort == "executions":
            return lambda r: (-r.executions, r.pc)
        if sort == "misses":
            return lambda r: (-(r.dcache.get("load_misses", 0) +
                                r.dcache.get("store_misses", 0)), r.pc)
        raise ValueError(f"unknown hotspot sort {sort!r} "
                         f"(choose from {', '.join(HOTSPOT_SORTS)})")

    def rows(self, sort: str = "port") -> list[dict[str, object]]:
        """Every (PC, privilege) row as a JSON-ready dict, ranked."""
        self._require_finalized()
        ranked = sorted(self._rows.values(), key=self._sort_key(sort))
        return [self._row_dict(row) for row in ranked]

    def top_rows(self, k: int = 10,
                 sort: str = "port") -> list[dict[str, object]]:
        """The *k* hottest rows under *sort*."""
        return self.rows(sort)[:k]

    def split(self) -> dict[str, dict[str, int]]:
        """Kernel-vs-user aggregate (sums over the matching rows)."""
        self._require_finalized()
        out = {"kernel": {"executions": 0, "stall_total": 0,
                          "port_conflict_slots": 0, "port_uses": 0,
                          "rows": 0},
               "user": {"executions": 0, "stall_total": 0,
                        "port_conflict_slots": 0, "port_uses": 0,
                        "rows": 0}}
        for row in self._rows.values():
            side = out["kernel" if row.kernel else "user"]
            side["rows"] += 1
            side["executions"] += row.executions
            side["stall_total"] += sum(row.stall.values())
            side["port_conflict_slots"] += row.stall.get("dcache_port", 0)
            side["port_uses"] += row.dcache.get("port_uses", 0)
        return out

    def as_dict(self) -> dict[str, object]:
        """The analysis payload embedded in ``repro.hotspots/1``."""
        self._require_finalized()
        unattributed = {name: self._unattributed[name]
                        for name in DCACHE_COUNTERS
                        if self._unattributed.get(name)}
        if any(self._unattributed_ports):
            unattributed["ports"] = list(self._unattributed_ports)
        return {
            "cycles": self.total_cycles,
            "instructions": self.instructions,
            "geometry": {
                "num_sets": self._num_sets,
                "banks": self._num_banks,
                "ports": self._num_ports,
                "line_shift": self._line_shift,
            },
            "rows": self.rows(),
            "frontend_stall": {value: self._frontend[value]
                               for value in _CAUSE_VALUES
                               if self._frontend.get(value)},
            "unattributed": unattributed,
            "split": self.split(),
        }

    def check_conservation(self, result: "CoreResult") -> None:
        """Raise unless every per-PC sum reconciles exactly with the
        run's global counters (see the module docstring contract)."""
        self._require_finalized()
        if result.ledger is None:
            raise ValueError("hotspot conservation needs the run's "
                             "stall ledger")
        problems = _conservation_problems(
            self.rows(), self._frontend,
            dict(self._unattributed,
                 **({"ports": self._unattributed_ports}
                    if any(self._unattributed_ports) else {})),
            _globals_block(result), result.instructions, "hotspots")
        if problems:
            raise AssertionError("; ".join(problems))

    def summary(self) -> str:
        """One human line: the heaviest port-conflict PC."""
        self._require_finalized()
        ranked = sorted(self._rows.values(), key=self._sort_key("port"))
        if not ranked or not ranked[0].stall.get("dcache_port"):
            return f"{len(self._rows)} static PCs, " \
                   f"no port-conflict stalls"
        top = ranked[0]
        slots = top.stall["dcache_port"]
        total = sum(r.stall.get("dcache_port", 0)
                    for r in self._rows.values()) or 1
        side = "kernel" if top.kernel else "user"
        return (f"top port-conflict PC 0x{top.pc:x} "
                f"({top.kind}, {side}) — {slots} slots "
                f"({slots / total:.1%} of dcache_port)")


# ----------------------------------------------------------------------
# Manifest (repro.hotspots/1)
# ----------------------------------------------------------------------
def _globals_block(result: "CoreResult") -> dict[str, object]:
    """The global counters the rows must reconcile with, as exact ints."""
    counters = result.stats.as_dict()
    ledger = result.ledger
    stall = {cause.value: ledger.lost[cause] for cause in CAUSE_ORDER
             if ledger.lost[cause]} if ledger is not None else {}
    return {
        "stall": stall,
        "lsq": {name: int(counters.get(f"lsq.{name}", 0))
                for name in LSQ_COUNTERS},
        "dcache": {name: int(counters.get(_DCACHE_STAT_NAMES[name], 0))
                   for name in DCACHE_COUNTERS},
    }


def build_hotspots_report(recorder: HotspotRecorder,
                          result: "CoreResult",
                          machine, *,
                          workload: str | None = None,
                          scale: str | None = None,
                          seed: int | None = None,
                          trace_file: str | None = None,
                          wall_time: float | None = None,
                          disasm: "dict[int, str] | None" = None
                          ) -> dict[str, object]:
    """Assemble the versioned ``repro.hotspots/1`` document.

    ``disasm`` optionally maps PC -> disassembly text for traces that
    do not carry instruction objects (the workload suite's saved
    traces); it only fills rows whose disassembly is unknown.
    """
    if workload is not None and trace_file is not None:
        raise ValueError("a hotspots report names a workload or a "
                         "trace_file, not both")
    if recorder.total_cycles != result.cycles:
        raise ValueError(
            f"recorder saw {recorder.total_cycles} cycles but the "
            f"result reports {result.cycles}; the recorder must come "
            f"from this run")
    document: dict[str, object] = {
        "schema": HOTSPOTS_SCHEMA,
        "schema_version": HOTSPOTS_SCHEMA_VERSION,
        "code_version": code_version(),
        "config": {
            "name": machine.name,
            "issue_width": machine.core.issue_width,
            "dcache": _dcache_dict(machine),
        },
        "workload": workload,
        "scale": scale,
        "seed": seed,
        "trace_file": trace_file,
        "ipc": result.ipc,
    }
    document.update(recorder.as_dict())
    if disasm:
        for row in document["rows"]:
            if row.get("disasm") is None:
                row["disasm"] = disasm.get(row["pc"])
    document["global"] = _globals_block(result)
    document["host"] = {"wall_time_s": wall_time}
    return document


def _conservation_problems(rows, frontend: dict, unattributed: dict,
                           global_block: dict, instructions: int,
                           context: str) -> list[str]:
    """Recompute every per-PC sum against the global counters."""
    problems: list[str] = []
    executions = sum(row.get("executions", 0) for row in rows)
    if executions != instructions:
        problems.append(f"{context}: row executions sum to {executions}, "
                        f"run committed {instructions}")
    global_stall = global_block.get("stall") or {}
    for value in _CAUSE_VALUES:
        total = sum((row.get("stall") or {}).get(value, 0) for row in rows)
        total += frontend.get(value, 0)
        expect = global_stall.get(value, 0)
        if total != expect:
            problems.append(
                f"{context}: stall[{value}] rows+frontend sum to {total}, "
                f"ledger lost {expect}")
    global_lsq = global_block.get("lsq") or {}
    for name in LSQ_COUNTERS:
        total = sum((row.get("lsq") or {}).get(name, 0) for row in rows)
        expect = global_lsq.get(name, 0)
        if total != expect:
            problems.append(f"{context}: lsq[{name}] rows sum to {total}, "
                            f"global is {expect}")
    global_dcache = global_block.get("dcache") or {}
    for name in DCACHE_COUNTERS:
        total = sum((row.get("dcache") or {}).get(name, 0) for row in rows)
        total += unattributed.get(name, 0)
        expect = global_dcache.get(name, 0)
        if total != expect:
            problems.append(
                f"{context}: dcache[{name}] rows+unattributed sum to "
                f"{total}, global is {expect}")
    port_total = sum(sum(row.get("ports") or ()) for row in rows)
    port_total += sum(unattributed.get("ports") or ())
    if port_total != global_dcache.get("port_uses", 0):
        problems.append(
            f"{context}: per-port histograms sum to {port_total}, "
            f"global port_uses is {global_dcache.get('port_uses', 0)}")
    return problems


def validate_hotspots_report(report: dict) -> None:
    """Raise :class:`SchemaError` unless *report* is a valid
    ``repro.hotspots/1`` document — including exact conservation."""
    problems: list[str] = []
    if not isinstance(report, dict):
        raise SchemaError(["hotspots report must be an object"])
    _require(report, {
        "schema": str,
        "schema_version": int,
        "config": dict,
        "cycles": int,
        "instructions": int,
        "ipc": (int, float),
        "geometry": dict,
        "rows": list,
        "frontend_stall": dict,
        "unattributed": dict,
        "split": dict,
        "global": dict,
        "host": dict,
    }, problems, "hotspots")
    if report.get("schema") not in (None, HOTSPOTS_SCHEMA):
        problems.append(f"hotspots: schema is {report.get('schema')!r}, "
                        f"expected {HOTSPOTS_SCHEMA!r}")
    _check_code_version(report, problems, "hotspots")
    config = report.get("config")
    if isinstance(config, dict):
        _require(config, {"name": str, "issue_width": int, "dcache": dict},
                 problems, "hotspots.config")
    for key in ("workload", "scale", "trace_file"):
        if key in report and report[key] is not None and \
                not isinstance(report[key], str):
            problems.append(f"hotspots: {key} must be a string or null")
    if isinstance(report.get("workload"), str) and \
            isinstance(report.get("trace_file"), str):
        problems.append("hotspots: workload and trace_file are mutually "
                        "exclusive")
    geometry = report.get("geometry")
    if isinstance(geometry, dict):
        _require(geometry, {"num_sets": int, "banks": int, "ports": int,
                            "line_shift": int}, problems,
                 "hotspots.geometry")
    rows = report.get("rows")
    if isinstance(rows, list):
        for idx, row in enumerate(rows):
            if not isinstance(row, dict):
                problems.append(f"hotspots.rows[{idx}]: must be an object")
                continue
            _require(row, {"pc": int, "kernel": bool, "kind": str,
                           "executions": int, "stall": dict,
                           "stall_total": int, "lsq": dict,
                           "dcache": dict}, problems,
                     f"hotspots.rows[{idx}]")
            for value in (row.get("stall") or {}):
                if value not in _CAUSE_SET:
                    problems.append(f"hotspots.rows[{idx}].stall: unknown "
                                    f"cause {value!r}")
            stream = row.get("stream")
            if stream is not None:
                if not isinstance(stream, dict):
                    problems.append(f"hotspots.rows[{idx}]: stream must "
                                    f"be an object or null")
                else:
                    _require(stream, {
                        "accesses": int,
                        "strides": dict,
                        "banks": list,
                        "sets": dict,
                        "working_set_lines": int,
                        "working_set_saturated": bool,
                    }, problems, f"hotspots.rows[{idx}].stream")
    frontend = report.get("frontend_stall")
    if isinstance(frontend, dict):
        for value in frontend:
            if value not in _CAUSE_SET:
                problems.append(f"hotspots.frontend_stall: unknown cause "
                                f"{value!r}")
    split = report.get("split")
    if isinstance(split, dict):
        for side in ("kernel", "user"):
            if not isinstance(split.get(side), dict):
                problems.append(f"hotspots.split: missing side {side!r}")
    if not problems and isinstance(rows, list):
        problems.extend(_conservation_problems(
            rows, report.get("frontend_stall") or {},
            report.get("unattributed") or {},
            report.get("global") or {}, report.get("instructions", 0),
            "hotspots"))
    if not problems and isinstance(split, dict):
        split_exec = sum(side.get("executions", 0)
                         for side in split.values()
                         if isinstance(side, dict))
        if split_exec != report.get("instructions", 0):
            problems.append(
                f"hotspots.split: kernel+user executions sum to "
                f"{split_exec}, run committed {report.get('instructions')}")
    host = report.get("host")
    if isinstance(host, dict) and "wall_time_s" not in host:
        problems.append("hotspots.host: missing key 'wall_time_s'")
    if problems:
        raise SchemaError(problems)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _set_heatmap(sets: dict, num_sets: int, cols: int = 64) -> str:
    """Fold the touched-set histogram into an ASCII intensity strip."""
    if num_sets <= 0 or not sets:
        return ""
    cols = min(cols, num_sets)
    buckets = [0] * cols
    for key, count in sets.items():
        index = int(key)
        buckets[index * cols // num_sets] += count
    peak = max(buckets)
    if not peak:
        return " " * cols
    top = len(_HEAT_CHARS) - 1
    return "".join(
        _HEAT_CHARS[0] if not value else
        _HEAT_CHARS[max(1, value * top // peak)]
        for value in buckets)


def _stream_lines(row: dict, geometry: dict,
                  indent: str = "    ") -> list[str]:
    """The stride / bank / set-heatmap detail block for one memory PC."""
    stream = row.get("stream")
    if not stream:
        return []
    lines: list[str] = []
    dominant = stream.get("dominant_stride")
    if dominant is not None:
        lines.append(f"{indent}stride: dominant {dominant:+d} "
                     f"({stream.get('stride_coverage', 0.0):.1%} of "
                     f"{stream['accesses'] - 1} deltas)")
    banks = stream.get("banks") or []
    if len(banks) > 1:
        rendered = " ".join(f"[{i}]{count}"
                            for i, count in enumerate(banks) if count)
        lines.append(f"{indent}banks: {rendered}")
    num_sets = int(geometry.get("num_sets", 0) or 0)
    heat = _set_heatmap(stream.get("sets") or {}, num_sets)
    if heat:
        lines.append(f"{indent}sets[{num_sets}]: |{heat}|")
    suffix = "+" if stream.get("working_set_saturated") else ""
    lines.append(f"{indent}working set: "
                 f"{stream.get('working_set_lines', 0)}{suffix} lines")
    return lines


def _row_sort_key(sort: str):
    """Manifest-level counterpart of :meth:`HotspotRecorder._sort_key`
    (the manifest stores rows ranked by ``port``; other orders are
    recovered at render time)."""
    def misses(row):
        dcache = row.get("dcache") or {}
        return dcache.get("load_misses", 0) + dcache.get("store_misses", 0)
    keys = {
        "port": lambda r: (-(r.get("stall") or {}).get("dcache_port", 0),
                           -(r.get("dcache") or {}).get("port_uses", 0),
                           r["pc"]),
        "stall": lambda r: (-r.get("stall_total", 0), r["pc"]),
        "executions": lambda r: (-r["executions"], r["pc"]),
        "misses": lambda r: (-misses(r), r["pc"]),
    }
    if sort not in keys:
        raise ValueError(f"unknown hotspot sort {sort!r} "
                         f"(choose from {', '.join(HOTSPOT_SORTS)})")
    return keys[sort]


def render_hotspots_report(report: dict, top: int = 10,
                           annotate: bool = False,
                           sort: str = "port") -> str:
    """ASCII rendering of a hotspots manifest: the top rows with their
    port/stall attribution and (``annotate``) the disassembly-merged
    view plus the top port-conflict PC's address-stream block."""
    lines: list[str] = []
    name = (report.get("config") or {}).get("name", "?")
    workload = report.get("workload") or report.get("trace_file") or "?"
    rows = sorted(report.get("rows") or [], key=_row_sort_key(sort))
    geometry = report.get("geometry") or {}
    lines.append(f"Per-PC hotspots — {workload} on {name} "
                 f"({report['cycles']} cycles, "
                 f"{report['instructions']} instructions, "
                 f"{len(rows)} static PCs)")
    split = report.get("split") or {}
    parts = []
    for side in ("kernel", "user"):
        block = split.get(side) or {}
        parts.append(f"{side}: {block.get('executions', 0)} instrs, "
                     f"{block.get('port_conflict_slots', 0)} port-conflict "
                     f"slots")
    lines.append("  " + " | ".join(parts))
    if annotate:
        lines.extend(_render_annotated(rows, geometry, top))
        return "\n".join(lines)
    lines.append(f"  {'pc':>10} {'K':1} {'kind':<8} {'execs':>8} "
                 f"{'port-slots':>10} {'stalls':>8} {'ports':>7} "
                 f"{'misses':>7}")
    for row in rows[:top]:
        dcache = row.get("dcache") or {}
        misses = dcache.get("load_misses", 0) + dcache.get("store_misses", 0)
        lines.append(
            f"  {row.get('pc_hex', hex(row['pc'])):>10} "
            f"{'K' if row.get('kernel') else 'U':1} "
            f"{row.get('kind', '?'):<8} {row['executions']:>8} "
            f"{(row.get('stall') or {}).get('dcache_port', 0):>10} "
            f"{row.get('stall_total', 0):>8} "
            f"{dcache.get('port_uses', 0):>7} {misses:>7}")
        for line in _stream_lines(row, geometry, indent="      "):
            lines.append(line)
    return "\n".join(lines)


def _render_annotated(rows: list, geometry: dict, top: int) -> list[str]:
    """Disassembly-merged view: every PC in address order with its
    counters, then the detail block for the heaviest port-conflict PC."""
    lines: list[str] = [""]
    by_pc = sorted(rows, key=lambda row: (row["pc"], row.get("kernel")))
    for row in by_pc:
        stall = row.get("stall") or {}
        dcache = row.get("dcache") or {}
        disasm = row.get("disasm") or f"<{row.get('kind', '?').lower()}>"
        tags = []
        if stall.get("dcache_port"):
            tags.append(f"port-slots {stall['dcache_port']}")
        if dcache.get("port_uses"):
            tags.append(f"ports {dcache['port_uses']}")
        misses = dcache.get("load_misses", 0) + dcache.get("store_misses", 0)
        if misses:
            tags.append(f"misses {misses}")
        if row.get("stall_total"):
            tags.append(f"stalls {row['stall_total']}")
        lines.append(
            f"  {row.get('pc_hex', hex(row['pc'])):>10}  "
            f"{'K' if row.get('kernel') else 'U'}  "
            f"{disasm:<32} x{row['executions']:<8}"
            + ("  " + ", ".join(tags) if tags else ""))
    hot = max(rows, default=None,
              key=lambda row: ((row.get("stall") or {})
                               .get("dcache_port", 0), -row["pc"]))
    if hot is not None and (hot.get("stall") or {}).get("dcache_port"):
        lines.append("")
        disasm = hot.get("disasm") or hot.get("kind", "?")
        lines.append(
            f"Top port-conflict PC {hot.get('pc_hex', hex(hot['pc']))} "
            f"({'kernel' if hot.get('kernel') else 'user'}, {disasm}): "
            f"{hot['stall']['dcache_port']} slots lost to dcache_port")
        lines.extend(_stream_lines(hot, geometry))
    del top
    return lines
