"""Interval time-series telemetry: how the run behaved *over time*.

End-of-run counters answer "how much"; this module answers "when".
When enabled, the timing core calls :meth:`IntervalMetrics.on_cycle`
once per simulated cycle and the collector:

* samples structure occupancies (ROB, IQ, LQ, SQ, write buffer), cache
  ports in use, and busy MSHRs into exact run-level
  :class:`~repro.stats.histogram.Histogram`\\ s;
* closes an **interval** every ``interval`` cycles, recording the
  committed-instruction delta (→ interval IPC), the per-port D-cache
  utilization, the deltas of a tracked counter set (line-buffer /
  write-buffer / victim hit activity, port uses, forwards), and the
  interval's mean occupancies.

The collector is *conservation-exact* by construction — every interval
series is a partition of the end-of-run value:

* ``sum(cycles per interval) == total cycles``
* ``sum(committed per interval) == retired instructions``
* ``sum(counter delta per interval) == final counter value`` for every
  tracked counter
* every occupancy histogram holds exactly one sample per cycle, and the
  ports histogram's weighted sum equals ``dcache.port_uses``

:meth:`check_conservation` verifies all of this and the test suite
asserts it over the full F2 headline grid.  Telemetry is off by
default: a run without it pays a single ``is None`` check per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stats.counters import Stats
from ..stats.histogram import Histogram

#: Default sampling interval, in cycles (matches the stall ledger).
DEFAULT_METRICS_INTERVAL = 1024

#: Counters tracked as per-interval deltas.  The set covers the paper's
#: techniques end to end: port pressure, line-buffer/write-buffer/victim
#: behaviour, and the LSQ's routing decisions.
TRACKED_COUNTERS = (
    "dcache.port_uses",
    "dcache.load_hits",
    "dcache.load_misses",
    "dcache.load_secondary_misses",
    "dcache.bank_conflicts",
    "lb.hits",
    "lb.misses",
    "lsq.lb_loads",
    "lsq.port_loads",
    "lsq.combined_loads",
    "lsq.sq_forwards",
    "lsq.wb_forwards",
    "wb.combined",
    "wb.drains",
    "wb.full_stalls",
    "wb.load_forwards",
    "victim.hits",
    "victim.misses",
)

#: Structures whose occupancy is sampled every cycle.
OCCUPANCY_STRUCTURES = ("rob", "iq", "lq", "sq", "wb", "ports", "mshr")


@dataclass
class Interval:
    """One closed sampling window."""

    index: int
    start_cycle: int
    cycles: int
    committed: int
    #: Tracked-counter deltas over this window.
    counters: dict[str, float]
    #: Mean occupancy per structure over this window.
    occupancy: dict[str, float]

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


class IntervalMetrics:
    """Per-interval telemetry collector (one per simulation run)."""

    def __init__(self, stats: Stats, ports: int,
                 interval: int = DEFAULT_METRICS_INTERVAL,
                 counters: tuple[str, ...] = TRACKED_COUNTERS) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        if ports < 1:
            raise ValueError("ports must be positive")
        self.stats = stats
        self.ports = ports
        self.interval = interval
        self.counters = tuple(counters)
        self.intervals: list[Interval] = []
        self.histograms = {name: Histogram(name)
                           for name in OCCUPANCY_STRUCTURES}
        self._snapshot = {name: 0.0 for name in self.counters}
        self._committed_at_close = 0
        self._start_cycle = 0
        self._cycles = 0
        self._occ_sums = [0] * len(OCCUPANCY_STRUCTURES)
        # Hot-path aliases (on_cycle runs once per simulated cycle).
        self._hists = tuple(self.histograms[name]
                            for name in OCCUPANCY_STRUCTURES)

    # ------------------------------------------------------------------
    def on_cycle(self, cycle: int, committed: int, rob: int, iq: int,
                 lq: int, sq: int, wb: int, ports_used: int,
                 mshr_busy: int) -> None:
        """Sample one finished cycle (called by the timing core)."""
        samples = (rob, iq, lq, sq, wb, ports_used, mshr_busy)
        sums = self._occ_sums
        for index, (hist, value) in enumerate(zip(self._hists, samples)):
            hist.record(value)
            sums[index] += value
        self._cycles += 1
        if self._cycles == self.interval:
            self._close(committed)

    def finalize(self, committed: int) -> None:
        """Close the trailing partial interval (end of run)."""
        if self._cycles:
            self._close(committed)

    def _close(self, committed: int) -> None:
        cycles = self._cycles
        deltas: dict[str, float] = {}
        stats = self.stats
        for name in self.counters:
            value = stats.get(name)
            deltas[name] = value - self._snapshot[name]
            self._snapshot[name] = value
        self.intervals.append(Interval(
            index=len(self.intervals),
            start_cycle=self._start_cycle,
            cycles=cycles,
            committed=committed - self._committed_at_close,
            counters=deltas,
            occupancy={name: self._occ_sums[index] / cycles
                       for index, name in enumerate(OCCUPANCY_STRUCTURES)},
        ))
        self._committed_at_close = committed
        self._start_cycle += cycles
        self._cycles = 0
        self._occ_sums = [0] * len(OCCUPANCY_STRUCTURES)

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        return sum(interval.cycles for interval in self.intervals)

    @property
    def total_committed(self) -> int:
        return sum(interval.committed for interval in self.intervals)

    def port_utilization(self, interval: Interval) -> float:
        """Fraction of this window's port-cycles actually used."""
        return interval.counters.get("dcache.port_uses", 0.0) / \
            (self.ports * interval.cycles) if interval.cycles else 0.0

    def series(self, counter: str) -> list[float]:
        """Per-interval deltas of one tracked counter."""
        return [interval.counters.get(counter, 0.0)
                for interval in self.intervals]

    # ------------------------------------------------------------------
    def check_conservation(self, cycles: int,
                           instructions: int) -> list[str]:
        """Reconcile every interval series against the end-of-run
        counters; returns a list of problems (empty = conserved)."""
        problems: list[str] = []
        if self.total_cycles != cycles:
            problems.append(
                f"interval cycles sum to {self.total_cycles}, "
                f"run has {cycles}")
        if self.total_committed != instructions:
            problems.append(
                f"interval committed sums to {self.total_committed}, "
                f"run retired {instructions}")
        for name in self.counters:
            total = sum(self.series(name))
            final = self.stats.get(name)
            if total != final:
                problems.append(
                    f"counter {name}: interval deltas sum to {total}, "
                    f"final value is {final}")
        for name, hist in self.histograms.items():
            if hist.total != cycles:
                problems.append(
                    f"occupancy {name}: {hist.total} samples for "
                    f"{cycles} cycles")
        ports_hist = self.histograms["ports"]
        weighted = sum(value * count
                       for value, count in ports_hist.as_dict().items())
        port_uses = self.stats.get("dcache.port_uses")
        if weighted != port_uses:
            problems.append(
                f"ports histogram weighs {weighted} uses, "
                f"dcache.port_uses is {port_uses}")
        return problems

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """Column-oriented JSON snapshot for the run report."""
        intervals = self.intervals

        def integral(value: float) -> object:
            return int(value) if float(value).is_integer() else value

        return {
            "interval": self.interval,
            "ports": self.ports,
            "n_intervals": len(intervals),
            "start_cycle": [i.start_cycle for i in intervals],
            "cycles": [i.cycles for i in intervals],
            "committed": [i.committed for i in intervals],
            "ipc": [i.ipc for i in intervals],
            "port_util": [self.port_utilization(i) for i in intervals],
            "counters": {name: [integral(i.counters[name])
                                for i in intervals]
                         for name in self.counters},
            "occupancy_mean": {name: [i.occupancy[name] for i in intervals]
                               for name in OCCUPANCY_STRUCTURES},
            "occupancy": {name: {
                "samples": hist.total,
                "mean": hist.mean,
                "p50": hist.percentile_or(0.5),
                "p90": hist.percentile_or(0.9),
                "max": hist.max if hist.total else 0,
            } for name, hist in self.histograms.items()},
        }

    def summary(self) -> str:
        """One human line for the CLI."""
        if not self.intervals:
            return "no intervals recorded"
        utils = [self.port_utilization(i) for i in self.intervals]
        ipcs = [i.ipc for i in self.intervals]
        return (f"{len(self.intervals)} intervals of {self.interval} "
                f"cycles; IPC {min(ipcs):.2f}..{max(ipcs):.2f}, "
                f"port util {min(utils):.1%}..{max(utils):.1%}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IntervalMetrics(interval={self.interval}, "
                f"n={len(self.intervals)})")
