"""Code-version stamping for manifests.

Every ``repro.*/1`` manifest records the **code version** that
produced it, so longitudinal stores (:mod:`repro.obs.ledger`) can key
results by *(trace digest, config digest, code version)* and a
dashboard can plot "the simulator got faster/slower" over the
repository's history.

Resolution order:

1. ``REPRO_CODE_VERSION`` in the environment — an explicit override
   for CI jobs, fixtures, and tests that need a pinned, deterministic
   stamp;
2. ``git rev-parse --short HEAD`` run against the directory holding
   this source tree, suffixed ``+dirty`` when ``git status
   --porcelain`` reports uncommitted changes;
3. ``pkg-<version>`` from :data:`repro.__version__` when the package
   runs outside a git checkout (installed wheel, tarball).

The answer is cached per process: one subprocess pair at most, and
every report built in the same process (including every engine worker)
carries the same stamp.
"""

from __future__ import annotations

import functools
import os
import subprocess

__all__ = ["code_version"]

#: Environment variable that pins the stamp, bypassing git.
CODE_VERSION_ENV = "REPRO_CODE_VERSION"


def _git(args: list[str], cwd: str) -> str | None:
    try:
        completed = subprocess.run(
            ["git", *args], cwd=cwd, capture_output=True, text=True,
            timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


@functools.lru_cache(maxsize=None)
def _resolved_code_version() -> str:
    source_dir = os.path.dirname(os.path.abspath(__file__))
    sha = _git(["rev-parse", "--short", "HEAD"], source_dir)
    if sha and sha.strip():
        stamp = sha.strip()
        status = _git(["status", "--porcelain"], source_dir)
        if status is None or status.strip():
            stamp += "+dirty"
        return stamp
    from .. import __version__
    return f"pkg-{__version__}"


def code_version() -> str:
    """The stamp recorded in every manifest (see the module docstring
    for the resolution order).  Never raises and never returns an
    empty string."""
    override = os.environ.get(CODE_VERSION_ENV, "").strip()
    if override:
        return override
    return _resolved_code_version()
