"""The perf-regression watchdog: gate a fresh manifest on ledger history.

``repro watch`` compares a candidate document — a ``repro.run/1``
report, a ``repro.bench/1`` manifest, or every run embedded in a
``repro.experiment/1`` manifest — against the **median of the last N
ledger entries for the same key** (same bench-cell label, or same
``(trace_digest, config_digest)``), and splits the verdict the same
way ``repro bench --compare`` does:

* **determinism** — the candidate's simulated ``instructions`` /
  ``cycles`` / ``ipc`` must match the newest history entry *exactly*;
  a mismatch means the simulator computes something different
  (exit 2 under ``--gate``, never tolerated);
* **throughput** — the candidate's host-side rate (median kIPS per
  bench cell, ``sim_ips`` per run) must not fall more than the
  relative tolerance below the median of the window (exit 1 under
  ``--gate``).

Keys with no history are reported as ``new`` and never gate; a
candidate already in the ledger is excluded from its own baseline.
The tolerance default is :data:`repro.bench.compare.DEFAULT_TOLERANCE`,
so the watchdog and ``repro bench --compare`` agree on what counts as
a regression.
"""

from __future__ import annotations

from .ledger import Ledger, detect_kind, manifest_digest, trace_digest_of
from .ledger import config_digest_of

__all__ = ["MIN_HISTORY", "WATCH_SCHEMA", "exit_code", "render_watch",
           "watch_document"]

WATCH_SCHEMA = "repro.watch/1"

#: Minimum number of prior rate samples before the throughput gate is
#: armed.  A median of one sample is just that sample — one noisy
#: historical run must not be able to fail fresh work, so thinner
#: history degrades to an informational "insufficient history" note.
#: Determinism still gates with a single entry: simulated counts are
#: exact, not noisy.
MIN_HISTORY = 2


def _default_tolerance() -> float:
    # Imported lazily: repro.bench imports repro.obs at module scope.
    from ..bench.compare import DEFAULT_TOLERANCE
    return DEFAULT_TOLERANCE


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _check(label: str, history: list[dict], deterministic: dict,
           candidate_rate: float | None, history_rates: list[float],
           tolerance: float, rate_unit: str) -> dict:
    """One key's verdict.  *deterministic* maps field -> (candidate,
    latest) pairs; rates are candidate-vs-window-median."""
    check: dict[str, object] = {"label": label,
                                "history": len(history)}
    if not history:
        check["status"] = "new"
        return check
    latest = history[-1]
    mismatches = {
        field: {"candidate": candidate, "baseline": latest[field]}
        for field, candidate in deterministic.items()
        if latest[field] != candidate
    }
    if mismatches:
        check["status"] = "determinism"
        check["mismatches"] = mismatches
        check["baseline_version"] = latest["code_version"]
        return check
    if candidate_rate is None or not history_rates:
        check["status"] = "ok"
        check["note"] = f"no {rate_unit} history to compare"
        return check
    baseline = _median(history_rates)
    check["baseline"] = baseline
    check["candidate"] = candidate_rate
    check["unit"] = rate_unit
    check["ratio"] = (candidate_rate / baseline) if baseline else None
    if len(history_rates) < MIN_HISTORY:
        check["status"] = "ok"
        check["note"] = (
            f"insufficient history ({len(history_rates)} < "
            f"{MIN_HISTORY} entries); not gating")
        return check
    if baseline and candidate_rate < baseline * (1.0 - tolerance):
        check["status"] = "regression"
    else:
        check["status"] = "ok"
    return check


def _watch_bench(ledger: Ledger, manifest: dict, digest: str,
                 window: int, tolerance: float) -> list[dict]:
    checks = []
    for cell in manifest.get("results") or ():
        history = ledger.bench_history(cell["label"], limit=window,
                                       exclude_digest=digest)
        checks.append(_check(
            cell["label"], history,
            {"instructions": cell["instructions"],
             "cycles": cell["cycles"], "ipc": cell["ipc"]},
            cell["kips"]["median"],
            [entry["kips_median"] for entry in history],
            tolerance, "kIPS"))
    return checks


def _run_label(report: dict) -> str:
    workload = report.get("workload") or report.get("trace_file") \
        or "trace"
    scale = report.get("scale")
    seed = report.get("seed")
    label = f"{workload}@{scale}" if scale else str(workload)
    if seed is not None:
        label += f"#seed{seed}"
    return f"{label}/{report['config']['name']}"


def _watch_run(ledger: Ledger, report: dict, digest: str,
               window: int, tolerance: float) -> dict:
    key = (trace_digest_of(report.get("workload"), report.get("scale"),
                           report.get("seed"), report.get("trace_file")),
           config_digest_of(report["config"]))
    history = ledger.run_history(*key, limit=window,
                                 exclude_digest=digest)
    host = report.get("host") or {}
    return _check(
        _run_label(report), history,
        {"instructions": report["instructions"],
         "cycles": report["cycles"], "ipc": report["ipc"]},
        host.get("sim_ips"),
        [entry["sim_ips"] for entry in history
         if entry["sim_ips"] is not None],
        tolerance, "sim_ips")


def watch_document(ledger: Ledger, document: dict, window: int = 5,
                   tolerance: float | None = None) -> dict:
    """Watch one candidate document against the ledger; returns a
    ``repro.watch/1`` report (see :func:`exit_code` for gating)."""
    if tolerance is None:
        tolerance = _default_tolerance()
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    if window < 1:
        raise ValueError("window must be >= 1")
    kind = detect_kind(document)
    digest = manifest_digest(document)
    if kind == "bench":
        checks = _watch_bench(ledger, document, digest, window,
                              tolerance)
    elif kind == "run":
        checks = [_watch_run(ledger, document, digest, window,
                             tolerance)]
    elif kind == "experiment":
        checks = [_watch_run(ledger, report, digest, window, tolerance)
                  for report in document.get("runs") or ()]
    else:
        raise ValueError(
            "repro watch gates run, experiment, and bench manifests; "
            f"got a {document.get('schema')!r} document")
    statuses = [check["status"] for check in checks]
    determinism_ok = "determinism" not in statuses
    throughput_ok = "regression" not in statuses
    return {
        "schema": WATCH_SCHEMA,
        "schema_version": 1,
        "kind": kind,
        "code_version": document.get("code_version"),
        "window": window,
        "tolerance": tolerance,
        "checks": checks,
        "new": statuses.count("new"),
        "determinism_ok": determinism_ok,
        "throughput_ok": throughput_ok,
        "ok": determinism_ok and throughput_ok,
    }


def exit_code(report: dict) -> int:
    """Gating semantics (mirrors ``repro bench --compare``): 2 for a
    determinism break, 1 for a throughput regression, 0 otherwise."""
    if not report["determinism_ok"]:
        return 2
    if not report["throughput_ok"]:
        return 1
    return 0


def render_watch(report: dict, label: str) -> str:
    """Human-readable rendering of a watch report."""
    lines = [f"watch {label} ({report['kind']}, window "
             f"{report['window']}, tolerance {report['tolerance']:g}):"]
    for check in report["checks"]:
        status = check["status"]
        if status == "new":
            lines.append(f"  {check['label']:<32} NEW (no history)")
        elif status == "determinism":
            fields = ", ".join(
                f"{field} {entry['baseline']!r} -> "
                f"{entry['candidate']!r}"
                for field, entry in sorted(check["mismatches"].items()))
            lines.append(f"  {check['label']:<32} DETERMINISM BREAK vs "
                         f"{check['baseline_version']}: {fields}")
        elif status == "regression":
            lines.append(
                f"  {check['label']:<32} REGRESSION "
                f"{check['candidate']:.1f} vs median "
                f"{check['baseline']:.1f} {check['unit']} "
                f"(x{check['ratio']:.2f})")
        elif "ratio" in check:
            detail = check.get("note") or f"{check['history']} entries"
            lines.append(
                f"  {check['label']:<32} ok x{check['ratio']:.2f} "
                f"({check['candidate']:.1f} vs "
                f"{check['baseline']:.1f} {check['unit']}, "
                f"{detail})")
        else:
            lines.append(f"  {check['label']:<32} ok "
                         f"({check.get('note', 'no rate history')})")
    verdict = ("ok" if report["ok"] else
               "DETERMINISM BREAK" if not report["determinism_ok"]
               else "THROUGHPUT REGRESSION")
    lines.append(f"verdict: {verdict} ({len(report['checks'])} checks, "
                 f"{report['new']} new)")
    return "\n".join(lines)
