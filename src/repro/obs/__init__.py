"""Cycle-level observability: stall attribution, event tracing, reports.

Three layers, all optional from the timing core's point of view:

* :mod:`repro.obs.stall` — a per-cycle **stall-attribution ledger**.
  Every cycle the core commits fewer uops than the machine width, the
  lost issue slots are charged to exactly one cause (fetch, branch,
  cache port, next-level latency, ...), so the ledger is *conservative*:
  attributed lost slots + committed uops == cycles × width.
* :mod:`repro.obs.tracer` — an opt-in **structured event tracer**.
  Call sites are guarded on ``tracer.enabled`` so a disabled tracer
  costs one attribute check; an enabled :class:`JsonlTracer` streams
  one JSON object per event (optionally gzipped).
* :mod:`repro.obs.report` — versioned **machine-readable run reports**
  combining configuration, counters, the stall ledger and host
  throughput, for ``repro simulate --json`` / ``repro experiment
  --json`` and the benchmark harness.

See ``docs/OBSERVABILITY.md`` for the event schema and stall taxonomy.
"""

from .report import (
    SCHEMA_VERSION,
    SchemaError,
    build_experiment_manifest,
    build_run_report,
    validate_experiment_manifest,
    validate_run_report,
)
from .stall import StallCause, StallLedger
from .tracer import NULL_TRACER, JsonlTracer, Tracer, iter_events, summarize_events

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "build_experiment_manifest",
    "build_run_report",
    "validate_experiment_manifest",
    "validate_run_report",
    "StallCause",
    "StallLedger",
    "NULL_TRACER",
    "JsonlTracer",
    "Tracer",
    "iter_events",
    "summarize_events",
]
