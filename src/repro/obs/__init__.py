"""Cycle-level observability: stall attribution, event tracing, reports.

Three layers, all optional from the timing core's point of view:

* :mod:`repro.obs.stall` — a per-cycle **stall-attribution ledger**.
  Every cycle the core commits fewer uops than the machine width, the
  lost issue slots are charged to exactly one cause (fetch, branch,
  cache port, next-level latency, ...), so the ledger is *conservative*:
  attributed lost slots + committed uops == cycles × width.
* :mod:`repro.obs.tracer` — an opt-in **structured event tracer**.
  Call sites are guarded on ``tracer.enabled`` so a disabled tracer
  costs one attribute check; an enabled :class:`JsonlTracer` streams
  one JSON object per event (optionally gzipped).
* :mod:`repro.obs.report` — versioned **machine-readable run reports**
  combining configuration, counters, the stall ledger and host
  throughput, for ``repro simulate --json`` / ``repro experiment
  --json`` and the benchmark harness.
* :mod:`repro.obs.metrics` — opt-in **interval time-series telemetry**
  (IPC, port utilisation, buffer hit rates, occupancy histograms per
  sampling interval) whose interval sums are conservation-checked
  against the end-of-run counters.
* :mod:`repro.obs.pipetrace` — per-instruction **pipeline-trace export**
  in the Konata/Kanata text format, with a matching parser.
* :mod:`repro.obs.compare` — **differential run comparison**: a
  deterministic deep diff of two report documents with a relative
  tolerance, behind ``repro compare``.
* :mod:`repro.obs.selfprof` — **simulator self-profiling**: host
  wall-clock attributed to pipeline stage groups per interval.
* :mod:`repro.obs.spans` — **host-time span tracing**: nested
  begin/end spans over the simulator's own wall-clock, exported in the
  Chrome Trace Event Format for Perfetto, with per-worker tracks that
  merge into one fleet timeline.
* :mod:`repro.obs.ledger` — the **persistent results ledger**: a
  dependency-free SQLite store that ingests every ``repro.*/1``
  manifest, normalized and keyed by ``(trace_digest, config_digest,
  code_version)``, with idempotent ingest and longitudinal queries.
* :mod:`repro.obs.dash` — ``repro dash``: a **self-contained static
  HTML dashboard** (inline CSS/SVG, no external deps) over the ledger.
* :mod:`repro.obs.watch` — ``repro watch``: the **perf-regression
  watchdog** gating a fresh manifest against ledger history.
* :mod:`repro.obs.codeversion` — the ``code_version`` stamp (git SHA
  plus dirty flag, package-version fallback) every manifest carries.
* :mod:`repro.obs.critpath` — **causal observability**: a streaming
  dependence-graph critical-path profiler whose CPI stack reconciles
  exactly with total cycles, plus a what-if engine predicting the
  cycles of relaxed configurations (``repro critpath``, ``simulate
  --critpath``).
* :mod:`repro.obs.hotspots` — **program-level attribution**: a
  per-static-PC hotspot profiler (executions, per-port cache accesses,
  conflict losses, buffer hits, stall cycles by cause) with per-PC
  address-stream analytics (dominant stride, set/bank heatmaps,
  working-set cardinality) and a kernel/user split, all
  conservation-checked against the global counters (``repro
  hotspots``, ``simulate --hotspots``).

See ``docs/OBSERVABILITY.md`` for the event schema and stall taxonomy.
"""

from .codeversion import code_version
from .critpath import (
    CRITPATH_SCHEMA,
    EDGE_CLASSES,
    WHATIF_PORT,
    WHATIF_PORT_BOUND,
    CritPathRecorder,
    build_critpath_report,
    render_critpath_report,
    validate_critpath_report,
)
from .compare import (
    COMPARE_SCHEMA,
    compare_documents,
    expand_manifest_paths,
    render_comparison,
)
from .dash import build_dashboard
from .hotspots import (
    HOTSPOT_SORTS,
    HOTSPOTS_SCHEMA,
    HotspotRecorder,
    build_hotspots_report,
    render_hotspots_report,
    validate_hotspots_report,
)
from .ledger import (
    LEDGER_DB_VERSION,
    LEDGER_ENV,
    Ledger,
    LedgerError,
    config_digest_of,
    detect_kind,
    manifest_digest,
    resolve_ledger_path,
    trace_digest_of,
)
from .metrics import (
    DEFAULT_METRICS_INTERVAL,
    Interval,
    IntervalMetrics,
)
from .pipetrace import (
    KONATA_HEADER,
    ParsedOp,
    PipeRecord,
    PipeTrace,
    parse_konata,
)
from .report import (
    SCHEMA_VERSION,
    SchemaError,
    build_experiment_manifest,
    build_run_report,
    validate_experiment_manifest,
    validate_run_report,
)
from .selfprof import SELFPROFILE_SCHEMA, SelfProfiler
from .spans import (
    NULL_SPANS,
    Span,
    SpanRecorder,
    SpanTracer,
    chrome_trace,
    count_spans,
    merge_events,
    parse_chrome_trace,
    write_chrome_trace,
)
from .stall import StallCause, StallLedger
from .tracer import (EVENT_SCHEMA, NULL_TRACER, JsonlTracer, Tracer,
                     iter_events, summarize_events)
from .watch import WATCH_SCHEMA, exit_code, render_watch, watch_document

__all__ = [
    "code_version",
    "CRITPATH_SCHEMA",
    "EDGE_CLASSES",
    "WHATIF_PORT",
    "WHATIF_PORT_BOUND",
    "CritPathRecorder",
    "build_critpath_report",
    "render_critpath_report",
    "validate_critpath_report",
    "COMPARE_SCHEMA",
    "compare_documents",
    "expand_manifest_paths",
    "render_comparison",
    "build_dashboard",
    "HOTSPOT_SORTS",
    "HOTSPOTS_SCHEMA",
    "HotspotRecorder",
    "build_hotspots_report",
    "render_hotspots_report",
    "validate_hotspots_report",
    "LEDGER_DB_VERSION",
    "LEDGER_ENV",
    "Ledger",
    "LedgerError",
    "config_digest_of",
    "detect_kind",
    "manifest_digest",
    "resolve_ledger_path",
    "trace_digest_of",
    "WATCH_SCHEMA",
    "exit_code",
    "render_watch",
    "watch_document",
    "DEFAULT_METRICS_INTERVAL",
    "Interval",
    "IntervalMetrics",
    "KONATA_HEADER",
    "ParsedOp",
    "PipeRecord",
    "PipeTrace",
    "parse_konata",
    "SELFPROFILE_SCHEMA",
    "SelfProfiler",
    "NULL_SPANS",
    "Span",
    "SpanRecorder",
    "SpanTracer",
    "chrome_trace",
    "count_spans",
    "merge_events",
    "parse_chrome_trace",
    "write_chrome_trace",
    "SCHEMA_VERSION",
    "SchemaError",
    "build_experiment_manifest",
    "build_run_report",
    "validate_experiment_manifest",
    "validate_run_report",
    "StallCause",
    "StallLedger",
    "EVENT_SCHEMA",
    "NULL_TRACER",
    "JsonlTracer",
    "Tracer",
    "iter_events",
    "summarize_events",
]
