"""Structured event tracing: opt-in, zero overhead when off.

Every instrumented component holds a :class:`Tracer`.  The default is
the shared :data:`NULL_TRACER`, whose class attribute ``enabled`` is
``False`` — call sites are written as::

    if self.tracer.enabled:
        self.tracer.emit(cycle, "wb.add", line=line, merged=True)

so a disabled tracer costs a single attribute check and *never* formats
the event.  :class:`JsonlTracer` streams one compact JSON object per
event to a file (gzipped when the path ends in ``.gz``)::

    {"cycle": 412, "event": "wb.add", "line": 8197, "merged": true}

``cycle`` and ``event`` are always present; the remaining fields are
event-specific (schema in ``docs/OBSERVABILITY.md``).  The module also
provides the reader half used by ``repro events``:
:func:`iter_events` and :func:`summarize_events`.
"""

from __future__ import annotations

import gzip
import io
import json
from collections.abc import Collection, Iterator
from dataclasses import dataclass, field


#: Every event a simulation can emit, mapped to the tuple of
#: event-specific field names (every record also carries ``cycle`` and
#: ``event``).  This is the authoritative schema: the table in
#: ``docs/OBSERVABILITY.md`` is cross-checked against it by the test
#: suite, and so is every event an instrumented run actually emits.
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    "stall": ("cause", "lost"),
    "commit": ("n",),
    "fetch.mispredict": ("pc", "seq"),
    "branch.resolve": ("pc", "seq", "resume"),
    "lsq.load": ("seq", "line", "source", "ready"),
    "dcache.load": ("line", "source", "ready"),
    "dcache.store": ("line",),
    "dcache.fill": ("line", "ready", "victim"),
    "wb.add": ("line", "merged"),
    "wb.full": ("line",),
    "wb.drain": ("line", "occupancy"),
    "lb.insert": ("line", "evicted"),
    "lb.invalidate": ("line", "reason"),
    "validate.violation": ("check", "detail"),
}


class Tracer:
    """Base tracer; also the disabled no-op implementation."""

    #: Class attribute so the hot-path guard is one LOAD_ATTR + jump.
    enabled = False

    def emit(self, cycle: int, event: str, **fields: object) -> None:
        """Record one event (no-op unless overridden)."""

    def close(self) -> None:
        """Flush and release any underlying resources."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


#: The shared disabled tracer every component defaults to.
NULL_TRACER = Tracer()


class JsonlTracer(Tracer):
    """Streams events as JSON Lines to a path or file-like object.

    ``events`` optionally restricts emission to a set of event names
    (cheap server-side filtering for long runs); ``None`` keeps all.
    """

    enabled = True

    def __init__(self, destination: str | io.TextIOBase,
                 events: Collection[str] | None = None) -> None:
        self._owns_handle = isinstance(destination, str)
        if isinstance(destination, str):
            if destination.endswith(".gz"):
                self._handle = gzip.open(destination, "wt",
                                         encoding="utf-8")
            else:
                self._handle = open(destination, "w", encoding="utf-8")
        else:
            self._handle = destination
        self._events = frozenset(events) if events is not None else None
        self.emitted = 0

    def emit(self, cycle: int, event: str, **fields: object) -> None:
        if self._events is not None and event not in self._events:
            return
        record = {"cycle": cycle, "event": event}
        record.update(fields)
        self._handle.write(json.dumps(record, separators=(",", ":")))
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()


# ----------------------------------------------------------------------
# Reading captured streams
# ----------------------------------------------------------------------
def _open_stream(path: str):
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, encoding="utf-8")


def iter_events(path: str, events: Collection[str] | None = None,
                since: int | None = None,
                until: int | None = None,
                pc: int | None = None,
                pc_range: tuple[int | None, int | None] | None = None) \
        -> Iterator[dict]:
    """Yield event dicts from a JSONL capture, optionally filtered by
    event name, ``since <= cycle <= until``, and the event's ``pc``
    field — ``pc`` matches exactly, ``pc_range`` is an inclusive
    ``(low, high)`` pair with either side open as ``None``.  Events
    without a ``pc`` field are dropped while a PC filter is active."""
    wanted = frozenset(events) if events else None
    with _open_stream(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if wanted is not None and record.get("event") not in wanted:
                continue
            cycle = record.get("cycle", 0)
            if since is not None and cycle < since:
                continue
            if until is not None and cycle > until:
                continue
            if pc is not None or pc_range is not None:
                record_pc = record.get("pc")
                if record_pc is None:
                    continue
                if pc is not None and record_pc != pc:
                    continue
                if pc_range is not None:
                    low, high = pc_range
                    if low is not None and record_pc < low:
                        continue
                    if high is not None and record_pc > high:
                        continue
            yield record


@dataclass
class EventSummary:
    """Aggregate view of a captured stream."""

    total: int = 0
    first_cycle: int | None = None
    last_cycle: int | None = None
    counts: dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        if not self.total:
            return "(no events)"
        lines = [f"{self.total} events over cycles "
                 f"{self.first_cycle}..{self.last_cycle}"]
        width = max(len(name) for name in self.counts)
        for name, count in sorted(self.counts.items(),
                                  key=lambda item: (-item[1], item[0])):
            lines.append(f"  {name:<{width}}  {count}")
        return "\n".join(lines)


def summarize_events(path: str, events: Collection[str] | None = None,
                     since: int | None = None,
                     until: int | None = None,
                     pc: int | None = None,
                     pc_range: tuple[int | None, int | None] | None = None) \
        -> EventSummary:
    """Per-event-type counts and the covered cycle span."""
    summary = EventSummary()
    for record in iter_events(path, events, since, until,
                              pc=pc, pc_range=pc_range):
        summary.total += 1
        name = record.get("event", "?")
        summary.counts[name] = summary.counts.get(name, 0) + 1
        cycle = record.get("cycle", 0)
        if summary.first_cycle is None or cycle < summary.first_cycle:
            summary.first_cycle = cycle
        if summary.last_cycle is None or cycle > summary.last_cycle:
            summary.last_cycle = cycle
    return summary
