"""Differential run comparison: diff two ``--json`` documents.

The building block for perf-regression gating: given two run reports
(``repro.run/1``) or two experiment manifests (``repro.experiment/1``),
produce a **deterministic, machine-readable delta report** — every leaf
that differs, with absolute and relative deltas for numeric leaves, in
sorted path order.  ``repro compare a.json b.json`` renders it and
exits non-zero when any delta exceeds the tolerance.

Comparison is a deep structural walk with two rules:

* subtrees under an **ignored key** are skipped.  The default ignore
  set is ``{"host", "engine"}`` — the only nondeterministic content in
  either document (wall times, throughput, cache hit counts), so two
  runs of the same configuration compare equal by default;
* numeric leaves compare within a **relative tolerance**: the delta is
  in tolerance iff ``|a - b| <= tolerance * max(|a|, |b|)``.  With the
  default tolerance of 0 any difference is out of tolerance.  Booleans,
  strings and nulls must match exactly.
"""

from __future__ import annotations

import glob as _glob
import os
from typing import Iterator

COMPARE_SCHEMA = "repro.compare/1"

#: Keys whose subtrees are never compared (nondeterministic content).
DEFAULT_IGNORE = frozenset({"host", "engine"})

#: Sentinel rendered for a leaf missing on one side.
_MISSING = "<missing>"


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _walk(a: object, b: object, path: str,
          ignore: frozenset[str]) -> Iterator[dict[str, object]]:
    """Yield one raw delta dict per differing leaf, in sorted order."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key in ignore:
                continue
            child = f"{path}.{key}" if path else key
            if key not in a:
                yield {"path": child, "a": _MISSING, "b": b[key],
                       "note": "missing in a"}
            elif key not in b:
                yield {"path": child, "a": a[key], "b": _MISSING,
                       "note": "missing in b"}
            else:
                yield from _walk(a[key], b[key], child, ignore)
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            yield {"path": f"{path}.length" if path else "length",
                   "a": len(a), "b": len(b), "note": "length mismatch"}
        for index, (left, right) in enumerate(zip(a, b)):
            yield from _walk(left, right, f"{path}[{index}]", ignore)
        return
    if type(a) is not type(b) and not (_is_number(a) and _is_number(b)):
        yield {"path": path, "a": a, "b": b, "note": "type mismatch"}
        return
    if _is_number(a) and _is_number(b):
        if a != b:
            absolute = abs(a - b)
            scale = max(abs(a), abs(b))
            yield {"path": path, "a": a, "b": b, "abs": absolute,
                   "rel": absolute / scale if scale else 0.0}
        return
    if a != b:
        yield {"path": path, "a": a, "b": b}


def expand_manifest_paths(arguments: list[str]) -> list[str]:
    """Expand CLI path arguments into a sorted list of manifest files.

    Each argument may be a literal file, a directory (expands to its
    ``*.json`` files, non-recursive), or a glob pattern.  Expansion is
    deterministic (each argument's matches are sorted), duplicates are
    dropped, and an argument matching nothing raises
    :class:`FileNotFoundError` — a typo'd pattern should fail loudly,
    not silently compare fewer files.
    """
    paths: list[str] = []
    seen: set[str] = set()
    for argument in arguments:
        if os.path.isdir(argument):
            matches = sorted(_glob.glob(os.path.join(argument, "*.json")))
            if not matches:
                raise FileNotFoundError(
                    f"no *.json manifests in directory {argument!r}")
        elif _glob.has_magic(argument):
            matches = sorted(match for match in _glob.glob(argument)
                             if os.path.isfile(match))
            if not matches:
                raise FileNotFoundError(
                    f"glob {argument!r} matched no files")
        else:
            if not os.path.isfile(argument):
                raise FileNotFoundError(
                    f"cannot read {argument}: no such manifest file")
            matches = [argument]
        for match in matches:
            if match not in seen:
                seen.add(match)
                paths.append(match)
    return paths


def compare_documents(a: dict, b: dict, tolerance: float = 0.0,
                      ignore: frozenset[str] | None = None,
                      ) -> dict[str, object]:
    """Diff two JSON documents into a ``repro.compare/1`` report.

    Works on any pair of dicts; run reports and experiment manifests
    are the intended inputs (their ``schema`` tags are recorded and a
    mismatch is itself reported as a delta).  The report is fully
    deterministic: deltas are sorted by path and no host state leaks in.
    """
    if tolerance < 0:
        raise ValueError("tolerance cannot be negative")
    ignore = DEFAULT_IGNORE if ignore is None else frozenset(ignore)
    deltas = []
    within = 0
    for delta in _walk(a, b, "", ignore):
        rel = delta.get("rel")
        if rel is not None and rel <= tolerance:
            within += 1
            continue
        deltas.append(delta)
    return {
        "schema": COMPARE_SCHEMA,
        "schema_version": 1,
        "tolerance": tolerance,
        "ignored_keys": sorted(ignore),
        "a": {"schema": a.get("schema")},
        "b": {"schema": b.get("schema")},
        "equal": not deltas,
        "deltas": deltas,
        "within_tolerance": within,
    }


def render_comparison(report: dict, label_a: str, label_b: str,
                      limit: int = 20) -> str:
    """Human-readable rendering of a comparison report."""
    lines = [f"comparing {label_a} vs {label_b} "
             f"(tolerance {report['tolerance']:g}, ignoring "
             f"{', '.join(report['ignored_keys'])})"]
    deltas = report["deltas"]
    if not deltas:
        suppressed = report["within_tolerance"]
        verdict = "identical" if not suppressed else \
            f"equal within tolerance ({suppressed} numeric deltas " \
            f"suppressed)"
        lines.append(f"  {verdict}")
        return "\n".join(lines)
    lines.append(f"  {len(deltas)} out-of-tolerance deltas"
                 + (f" ({report['within_tolerance']} within tolerance)"
                    if report["within_tolerance"] else "") + ":")
    for delta in deltas[:limit]:
        detail = ""
        if "rel" in delta:
            detail = f"  (abs {delta['abs']:g}, rel {delta['rel']:.2e})"
        elif "note" in delta:
            detail = f"  ({delta['note']})"
        lines.append(f"    {delta['path']}: {delta['a']!r} -> "
                     f"{delta['b']!r}{detail}")
    if len(deltas) > limit:
        lines.append(f"    ... and {len(deltas) - limit} more")
    return "\n".join(lines)
