"""Causal observability: dependence-graph critical-path profiling.

The stall ledger (:mod:`repro.obs.stall`) answers *"what was the commit
head waiting on?"* — a correlational question.  This module answers the
causal one: *"which resource actually sat on the execution critical
path, and what would relaxing it buy?"*

**Graph model.**  Every committed instruction contributes a column of
event nodes — fetch ``F``, dispatch ``D``, operand-ready ``Y``, issue
``I``, address ``A``, cache-port grant ``G``, complete ``C``, retire
``R`` — and the edges between nodes carry the microarchitectural
constraints that ordered them: in-order fetch and commit, decode and
AGU pipe latency, data dependences, ROB/IQ/LQ/SQ capacity
back-pressure, D-cache port arbitration, MSHR waits, memory ordering,
line-buffer / store-forward / next-level service, write-buffer
back-pressure at commit, and branch/serialize redirects.  A
:class:`CritPathRecorder` attached to :class:`repro.core.pipeline.OoOCore`
snapshots one immutable record per committed instruction (the same
zero-overhead-when-off single-``is None`` hook discipline as the tracer
and interval metrics) and walks the graph *backwards* from the last
retirement: at every node it picks the binding (latest) predecessor and
charges the cycles between them to that edge's class.

Because the walk telescopes from the end of the run down to cycle zero
— each step charges exactly ``t - t'`` and the chain is anchored at
both ends — the resulting **critical-path CPI stack sums to the total
cycle count exactly**, the same conservation discipline the stall
ledger established, now with causal semantics.

**Streaming/windowing.**  Records are processed in windows of
:data:`DEFAULT_WINDOW` commits so memory stays bounded on long runs.
In-order commit guarantees every cross-window predecessor retired at or
before the window boundary, so each window's walk terminates cleanly at
the previous window's last retirement and the per-window charges
telescope across the whole run.

**What-if engine.**  For each requested scenario (a set of
``"class"`` specs to zero and/or ``"class/N"`` specs to divide by N),
the recorder *re-walks* every window forwards, replaying each
instruction's event times with the chosen edges collapsed or scaled
while every other measured delay is preserved, and carries the
predicted schedule across window boundaries.  ``predicted_cycles()``
is then a causal estimate of the run under, e.g., infinite D-cache
ports — validated against real simulations of the relaxed configs in
``tests/test_obs_critpath.py`` (see :data:`WHATIF_PORT_BOUND` for the
documented error bound and its caveats).  The empty scenario replays
the measured schedule faithfully (a self-check of the replay engine).
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappush, heapreplace
from typing import TYPE_CHECKING, Iterable, Sequence

from .codeversion import code_version
from .report import SchemaError, _check_code_version, _dcache_dict, _require

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.config import CoreConfig, MachineConfig
    from ..core.pipeline import CoreResult
    from ..core.uop import Uop

#: Version of the critical-path manifest schema.
CRITPATH_SCHEMA_VERSION = 1

CRITPATH_SCHEMA = f"repro.critpath/{CRITPATH_SCHEMA_VERSION}"

#: Commits per analysis window (memory stays O(window) on long runs).
DEFAULT_WINDOW = 8192

#: Documented relative error bound for the 1P -> 2P what-if
#: (:data:`WHATIF_PORT` predicted cycles vs a real 2P simulation).
#: The prediction replays recorded waits with the port classes
#: relaxed; it does not re-simulate second-order effects (port
#: pressure re-shaping line-buffer hits, combining opportunities,
#: bank conflicts, or the load/store mix sharing the new port), so it
#: is an estimate, not an oracle.  Empirically it lands within ~6% of
#: the simulated 2P cycles on the reference workloads (stream, qsort,
#: tiny + small); this constant records the documented 10% acceptance
#: bound with headroom for other traces.
WHATIF_PORT_BOUND = 0.10

#: The canonical what-if for the paper's headline question ("what would
#: a second cache port buy?"): zero load-port arbitration (the extra
#: port makes load waits vanish) and scale write-buffer drain waits by
#: 1.5 — stores drain through port-idle cycles, and going 1P -> 2P
#: raises that idle bandwidth by roughly half once loads take their
#: share of the new port first (it does not double: the paper's own
#: point is that port relief is sub-linear).
WHATIF_PORT = ("dcache_port", "write_buffer/1.5")

#: Every edge class the walker can charge a critical cycle to, in
#: pipeline order.  See docs/OBSERVABILITY.md ("Causal observability")
#: for the full prose definition of each.
EDGE_CLASSES = (
    "fetch",          # in-order fetch bandwidth, I-cache stalls
    "branch",         # mispredict / BTB-miss redirect latency
    "serialize",      # pipeline flushes (syscall / eret / trap)
    "decode",         # fetch->dispatch pipe latency
    "dispatch",       # in-order dispatch width / rename pipe
    "rob_full",       # dispatch blocked: reorder buffer full
    "iq_full",        # dispatch blocked: issue queue full
    "lq_full",        # dispatch blocked: load queue full
    "sq_full",        # dispatch blocked: store queue full
    "data_dep",       # waiting on a producer's value
    "exec",           # FU/AGU latency + issue structural waits
    "dcache_port",    # port arbitration (no free port / bank conflict)
    "mshr",           # MSHR-full retry
    "mem_order",      # conservative load/store ordering, SQ/WB conflicts
    "cache_hit",      # L1-hit service latency through a port
    "line_buffer",    # line-buffer service latency
    "store_forward",  # SQ / write-buffer forwarding latency
    "next_level",     # miss / secondary-miss fill latency
    "write_buffer",   # commit blocked: write buffer full
    "commit",         # in-order commit / commit width
    "drain",          # end-of-run pipeline drain
)

_EDGE_CLASS_SET = frozenset(EDGE_CLASSES)

#: ``Uop.mem_source`` -> service-latency edge class.
_SOURCE_CLASS = {
    "miss": "next_level",
    "secondary": "next_level",
    "hit": "cache_hit",
    "lb": "line_buffer",
    "sq": "store_forward",
    "wb": "store_forward",
}

#: ``Uop.lsq_block`` -> port-wait edge class.
_BLOCK_CLASS = {
    "no_port": "dcache_port",
    "bank_conflict": "dcache_port",
    "mshr_full": "mshr",
    "order": "mem_order",
    "sq_wait": "mem_order",
    "wb_conflict": "mem_order",
}

#: commit-stage block reason -> edge class.
_COMMIT_BLOCK_CLASS = {
    "wb_full": "write_buffer",
    "store_port": "dcache_port",
}

#: dispatch-stage capacity structure -> edge class.
_CAPACITY_CLASS = {
    "rob": "rob_full",
    "iq": "iq_full",
    "lq": "lq_full",
    "sq": "sq_full",
}


class _Rec:
    """One committed instruction's event times + wait annotations
    (immutable snapshot taken at commit; the live ``Uop`` is recycled)."""

    __slots__ = ("seq", "pc", "kind", "is_load", "is_store", "fetch",
                 "dispatch", "ready", "issue", "addr", "data_ready",
                 "grant", "source", "mem_block", "complete", "retire",
                 "deps", "data_deps", "dispatch_block", "commit_block")


class _Scenario:
    """Per-what-if forward-replay state carried across windows."""

    __slots__ = ("zeroed", "scaled", "prev_f", "prev_d", "prev_r", "end",
                 "shift")

    def __init__(self, zeroed: frozenset,
                 scaled: dict[str, int] | None = None) -> None:
        self.zeroed = zeroed
        self.scaled = scaled or {}  # edge class -> wait divisor
        self.prev_f = 0   # predicted fetch of the previous record
        self.prev_d = 0   # predicted dispatch of the previous record
        self.prev_r = 0   # predicted retire of the previous record
        self.end = 0      # predicted last retirement so far
        self.shift = 0    # measured-minus-predicted time at the boundary


#: Edge classes whose waits may be *scaled* (``"class/N"``) rather than
#: only zeroed: queueing/service delays where a bandwidth ratio is
#: meaningful.  Structural classes (widths, capacities, ordering) only
#: support zeroing.
_SCALABLE_CLASSES = frozenset((
    "dcache_port", "mshr", "mem_order", "write_buffer", "cache_hit",
    "line_buffer", "store_forward", "next_level",
))


def _parse_scenario(entry) -> tuple[tuple, frozenset, dict[str, int]]:
    """Canonicalize one what-if scenario spec.

    *entry* is a string or an iterable of strings; each string is an
    edge class (``"dcache_port"`` — zero its waits) or ``"class/N"``
    (divide its waits by integer N ≥ 2).  Returns the canonical key
    plus the zeroed set and scale map the replay consumes.
    """
    specs = (entry,) if isinstance(entry, str) else tuple(entry)
    # The empty scenario is legal: a faithful replay of the measured
    # schedule, useful for validating the replay engine itself.
    zeroed = set()
    scaled: dict[str, float] = {}
    for spec in specs:
        cls, sep, div = str(spec).partition("/")
        if cls not in _EDGE_CLASS_SET:
            raise ValueError(f"unknown edge class in what-if "
                             f"scenario: {cls!r}")
        if not sep:
            zeroed.add(cls)
            continue
        try:
            divisor = float(div)
        except ValueError:
            divisor = 0.0
        if not divisor > 1.0:
            raise ValueError(f"what-if scale must be a number > 1: "
                             f"{spec!r}")
        if cls not in _SCALABLE_CLASSES:
            raise ValueError(f"edge class {cls!r} only supports "
                             f"zeroing, not scaling ({spec!r})")
        scaled[cls] = divisor
    both = zeroed & scaled.keys()
    if both:
        raise ValueError(f"edge class(es) both zeroed and scaled in "
                         f"one scenario: {', '.join(sorted(both))}")
    key = tuple(sorted(zeroed) +
                sorted(f"{cls}/{div:g}" for cls, div in scaled.items()))
    return key, frozenset(zeroed), scaled


def _normalize_whatif(whatif) -> dict[tuple, _Scenario]:
    scenarios: dict[tuple, _Scenario] = {}
    for entry in whatif:
        key, zeroed, scaled = _parse_scenario(entry)
        scenarios.setdefault(key, _Scenario(zeroed, scaled))
    return scenarios


class CritPathRecorder:
    """Streams the commit-time dependence graph into a critical-path
    CPI stack plus optional what-if predictions.

    Attach via ``OoOCore(machine, critpath=recorder)``; after ``run()``
    the core calls :meth:`finalize` and the stack is available through
    :meth:`stack` / :meth:`as_dict`.  One recorder serves one run.
    """

    def __init__(self, window: int = DEFAULT_WINDOW,
                 whatif: Iterable = ()) -> None:
        if window < 2:
            raise ValueError("critpath window must be at least 2 commits")
        self.window = window
        self._scenarios = _normalize_whatif(whatif)
        self._records: list[_Rec] = []
        self._index: dict[int, int] = {}      # seq -> window offset
        self._stack: dict[str, int] = {}
        self._crit_pc: dict[int, list] = {}   # pc -> [cycles, events, kind]
        # Pending per-uop annotations, popped when the uop commits.
        self._deps: dict[int, list] = {}
        self._mem: dict[int, tuple] = {}
        self._dispatch_block: dict[int, str] = {}
        self._commit_block: dict[int, str] = {}
        self._redirects: dict[int, tuple] = {}  # resume cycle -> (kind, seq)
        # Walk state carried across windows.
        self._boundary = 0        # last flushed retirement (walk anchor)
        self._prev_orig = (0, 0, 0)  # measured (fetch, dispatch, retire)
        self._decode = 1
        self._dispatch_width = 4
        self._commit_width = 4
        self._fq_size = 0
        self._rob_size = 0
        self._iq_size = 0
        self._lq_size = 0
        self._sq_size = 0
        # Per-window load/store positions (capacity-blocker lookup)
        # and IQ-slot issue-order bounds.
        self._loads_pos: list[int] = []
        self._stores_pos: list[int] = []
        self._iq_bound: list[int] = []
        self.windows = 0
        self.total_cycles = 0
        self.instructions = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Pipeline/LSQ hooks (every call site is behind a single `is None`)
    # ------------------------------------------------------------------
    def begin_run(self, cfg: "CoreConfig") -> None:
        """Capture pipe constants and structure sizes (the capacity
        edges need to know which older instruction freed a slot);
        called once at ``run()`` entry."""
        if self._finalized:
            raise ValueError("a CritPathRecorder serves exactly one run")
        self._decode = cfg.decode_latency
        self._dispatch_width = cfg.dispatch_width
        self._commit_width = cfg.commit_width
        self._fq_size = cfg.fetch_queue_size
        self._rob_size = cfg.rob_size
        self._iq_size = cfg.iq_size
        self._lq_size = cfg.lq_size
        self._sq_size = cfg.sq_size

    def note_dep(self, consumer_seq: int, producer_seq: int,
                 is_data: bool) -> None:
        """A register dependence was wired to a still-incomplete
        producer at dispatch."""
        self._deps.setdefault(consumer_seq, []).append(
            (producer_seq, is_data))

    def note_dispatch_block(self, seq: int, structure: str) -> None:
        """Dispatch of *seq* blocked on a full *structure* this cycle."""
        self._dispatch_block[seq] = structure

    def note_commit_block(self, seq: int, reason: str) -> None:
        """Commit of store *seq* blocked (``store_port``/``wb_full``)."""
        self._commit_block[seq] = reason

    def note_redirect(self, resume: int, kind: str, seq: int) -> None:
        """Fetch will resume at cycle *resume* because of *seq*
        (``kind``: ``branch`` resolve, ``serialize`` commit, or a
        ``decode``-stage jump redirect)."""
        self._redirects[resume] = (kind, seq)

    def note_mem(self, seq: int, grant: int, ready: int, source: str,
                 blocked: str | None) -> None:
        """Load *seq* was serviced: granted its data path at cycle
        *grant* from *source*, data ready at *ready*; *blocked* is the
        last reason it waited in the LSQ (captured before the LSQ
        clears it)."""
        self._mem[seq] = (grant, source, blocked)

    def record_commit(self, uop: "Uop", cycle: int) -> None:
        """Snapshot one committed instruction; may flush a window."""
        seq = uop.seq
        rec = _Rec()
        rec.seq = seq
        rec.pc = uop.record.pc
        rec.kind = uop.opclass.name
        rec.is_load = uop.is_load
        rec.is_store = uop.is_store
        rec.fetch = uop.fetch_cycle
        rec.dispatch = uop.dispatch_cycle
        rec.ready = uop.operands_ready
        rec.issue = uop.issue_cycle
        rec.addr = uop.addr_cycle
        rec.data_ready = uop.data_ready_cycle
        rec.complete = uop.complete_cycle
        rec.retire = cycle
        mem = self._mem.pop(seq, None)
        if mem is None:
            rec.grant = -1
            rec.source = None
            rec.mem_block = None
        else:
            rec.grant, rec.source, rec.mem_block = mem
        deps = self._deps.pop(seq, None)
        if deps:
            rec.deps = tuple(p for p, is_data in deps if not is_data)
            rec.data_deps = tuple(p for p, is_data in deps if is_data)
        else:
            rec.deps = ()
            rec.data_deps = ()
        rec.dispatch_block = self._dispatch_block.pop(seq, None)
        rec.commit_block = self._commit_block.pop(seq, None)
        self._index[seq] = len(self._records)
        self._records.append(rec)
        if len(self._records) >= self.window:
            self._flush()

    def finalize(self, cycles: int, instructions: int) -> None:
        """Flush the tail window and close the stack; called by the
        core after its cycle loop drains."""
        if self._finalized:
            return
        self._flush()
        self.total_cycles = cycles
        self.instructions = instructions
        drain = cycles - self._boundary
        if drain > 0:
            self._stack["drain"] = self._stack.get("drain", 0) + drain
        self._finalized = True

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        records = self._records
        if not records:
            return
        redirects = self._redirects
        index = self._index
        self._loads_pos = [i for i, rec in enumerate(records)
                           if rec.is_load]
        self._stores_pos = [i for i, rec in enumerate(records)
                            if rec.is_store]
        self._iq_bound = self._issue_order_bounds(records)
        self._walk(records, redirects, index)
        for scenario in self._scenarios.values():
            self._replay(records, redirects, index, scenario)
        last = records[-1]
        self._boundary = last.retire
        self._prev_orig = (last.fetch, last.dispatch, last.retire)
        self.windows += 1
        self._records = []
        self._index = {}
        # Redirect notes for fetches at or beyond the youngest flushed
        # fetch may still resolve in-flight uops; older ones are spent.
        fetch_horizon = last.fetch
        if redirects:
            self._redirects = {resume: note
                               for resume, note in redirects.items()
                               if resume >= fetch_horizon}
        self._loads_pos = []
        self._stores_pos = []
        self._iq_bound = []

    def _issue_order_bounds(self, records: list[_Rec]) -> list[int]:
        """For each record, the window offset of the instruction whose
        *issue* freed its IQ slot, or -1 when it predates the window.

        Unlike the ROB/LQ/SQ (freed at in-order retire) and the fetch
        queue (freed at in-order dispatch), the issue queue drains
        out of order: record *i* can dispatch once at most
        ``iq_size - 1`` predecessors remain unissued, i.e. no earlier
        than the ``iq_size``-th **largest** issue time among all
        ``j < i`` — tracked with a bounded min-heap of the largest
        issue times seen so far (its root is that bound).
        """
        k = self._iq_size
        bounds = [-1] * len(records)
        if k <= 0:
            return bounds
        heap: list[tuple[int, int]] = []  # k largest (issue, idx) so far
        for i, rec in enumerate(records):
            if len(heap) >= k:
                bounds[i] = heap[0][1]
            entry = (rec.issue, i)
            if len(heap) < k:
                heappush(heap, entry)
            elif entry > heap[0]:
                heapreplace(heap, entry)
        return bounds

    # ------------------------------------------------------------------
    # Backward walk: the critical-path CPI stack
    # ------------------------------------------------------------------
    def _walk(self, records: list[_Rec], redirects: dict,
              index: dict[int, int]) -> None:
        """Charge every cycle between the window boundary and the
        window's last retirement to exactly one edge class.

        Each step moves to the binding (latest) predecessor node and
        charges the gap; (seq, stage) strictly decreases
        lexicographically, so the walk terminates, and the charges
        telescope from last-retire down to the boundary — conservation
        by construction.
        """
        boundary = self._boundary
        stack = self._stack
        crit = self._crit_pc
        i = len(records) - 1
        rec = records[i]
        stage = "R"
        t = rec.retire
        while t > boundary:
            nstage, ni, nt, cls = self._binding(records, redirects, index,
                                                stage, i, rec)
            if nt > t:
                nt = t
            cut = nstage is None or nt <= boundary
            delta = t - (boundary if nt <= boundary else nt)
            if delta:
                stack[cls] = stack.get(cls, 0) + delta
                entry = crit.get(rec.pc)
                if entry is None:
                    crit[rec.pc] = [delta, 1, rec.kind]
                else:
                    entry[0] += delta
                    entry[1] += 1
            if cut:
                break
            stage, i, t = nstage, ni, nt
            rec = records[i]

    def _binding(self, records: list[_Rec], redirects: dict,
                 index: dict[int, int], stage: str, i: int,
                 rec: _Rec) -> tuple:
        """The binding predecessor of node (*stage*, *i*): returns
        ``(next_stage, next_index, next_time, edge_class)``; a ``None``
        stage means the path leaves the window (the walker clamps the
        charge at the boundary)."""
        if stage == "R":
            # Retire: bound by own completion, in-order commit, or an
            # explicit store commit block.
            block = _COMMIT_BLOCK_CLASS.get(rec.commit_block)
            if block is None and i > 0 and \
                    records[i - 1].retire > rec.complete:
                return ("R", i - 1, records[i - 1].retire, "commit")
            return ("C", i, rec.complete, block or "commit")
        if stage == "C":
            # Complete: loads via their memory grant, stores via
            # address + data, everything else via the FU.
            if rec.is_load and rec.grant >= 0:
                return ("G", i, rec.grant,
                        _SOURCE_CLASS.get(rec.source, "next_level"))
            if rec.is_store:
                if rec.data_ready > rec.addr:
                    p = _producer_at(records, index, rec.data_deps,
                                     rec.data_ready)
                    if p is not None:
                        return ("C", p, rec.data_ready, "data_dep")
                    return ("A", i, rec.addr, "data_dep")
                return ("A", i, rec.addr, "exec")
            if rec.is_load:  # no grant note: defensive fallback
                return ("A", i, rec.addr, "next_level")
            return ("I", i, rec.issue, "exec")
        if stage == "G":
            # Port grant: the wait in the LSQ between address-ready
            # and being serviced.
            return ("A", i, rec.addr,
                    _BLOCK_CLASS.get(rec.mem_block, "dcache_port"))
        if stage == "A":
            return ("I", i, rec.issue, "exec")  # AGU latency
        if stage == "I":
            # Issue: bound by operand readiness (else the gap is
            # issue-width/FU structural contention).
            ready = rec.dispatch + 1
            if rec.ready > ready:
                ready = rec.ready
            return ("Y", i, ready, "exec")
        if stage == "Y":
            # Operand-ready: walk into the binding producer when it
            # committed inside this window.
            if rec.ready > rec.dispatch + 1:
                p = _producer_at(records, index, rec.deps, rec.ready)
                if p is not None:
                    return ("C", p, records[p].complete, "data_dep")
                return ("D", i, rec.dispatch, "data_dep")
            return ("D", i, rec.dispatch, "dispatch")
        if stage == "D":
            # Dispatch: decode pipe, in-order dispatch, or a capacity
            # block — whose binding predecessor is the event that freed
            # the slot (the blocker's retire; its issue for the IQ).
            cap = _CAPACITY_CLASS.get(rec.dispatch_block)
            best_eff = rec.fetch + self._decode
            best = ("F", i, rec.fetch, cap or "decode")
            if i > 0 and records[i - 1].dispatch > best_eff:
                best_eff = records[i - 1].dispatch
                best = ("D", i - 1, best_eff, cap or "dispatch")
            if cap is not None:
                blocker = self._capacity_blocker(rec.dispatch_block, i)
                if blocker is not None:
                    if rec.dispatch_block == "iq":
                        bstage, btime = "I", records[blocker].issue
                    else:
                        bstage, btime = "R", records[blocker].retire
                    if btime >= best_eff:
                        return (bstage, blocker, btime, cap)
            return best
        # stage == "F": fetch-queue back-pressure, a redirect that
        # gated fetch, or in-order fetch bandwidth.
        fqs = self._fq_size
        if fqs and i >= fqs and records[i - fqs].dispatch == rec.fetch:
            # The fetch-queue slot freed exactly when this fetch
            # happened: back-pressure binds; walk into the dispatch
            # that freed it (the charge on this edge is zero).
            return ("D", i - fqs, rec.fetch, "fetch")
        note = redirects.get(rec.fetch)
        if note is not None:
            kind, source_seq = note
            p = index.get(source_seq)
            if kind == "serialize":
                if p is not None:
                    return ("R", p, records[p].retire, "serialize")
                return (None, -1, -1, "serialize")
            if kind == "decode":
                if p is not None:
                    return ("F", p, records[p].fetch, "branch")
                return (None, -1, -1, "branch")
            # kind == "branch"
            if p is not None:
                return ("C", p, records[p].complete, "branch")
            return (None, -1, -1, "branch")
        if i > 0:
            return ("F", i - 1, records[i - 1].fetch, "fetch")
        return (None, -1, -1, "fetch")

    def _capacity_blocker(self, structure: str, i: int) -> int | None:
        """The window offset of the instruction whose departure freed
        the slot that dispatch of record *i* was blocked on, or
        ``None`` when it predates the window."""
        if structure == "rob":
            blocker = i - self._rob_size
            return blocker if blocker >= 0 else None
        if structure == "iq":
            blocker = self._iq_bound[i]
            return blocker if blocker >= 0 else None
        if structure == "lq":
            positions, size = self._loads_pos, self._lq_size
        else:
            positions, size = self._stores_pos, self._sq_size
        blocker = bisect_left(positions, i) - size
        return positions[blocker] if blocker >= 0 else None

    # ------------------------------------------------------------------
    # What-if: forward replay with an edge class zeroed
    # ------------------------------------------------------------------
    def _replay(self, records: list[_Rec], redirects: dict,
                index: dict[int, int], sc: _Scenario) -> None:
        """Re-schedule the window with the scenario's edge classes at
        zero latency; every other measured delay is preserved."""
        zeroed = sc.zeroed
        scaled = sc.scaled
        decode = self._decode
        fqs = self._fq_size
        of_prev, od_prev, or_prev = self._prev_orig
        pf_prev, pd_prev, pr_prev = sc.prev_f, sc.prev_d, sc.prev_r
        shift = sc.shift
        pred_fetch: dict[int, int] = {}
        pred_dispatch: dict[int, int] = {}
        pred_issue: dict[int, int] = {}
        pred_complete: dict[int, int] = {}
        pred_retire: dict[int, int] = {}
        iq_size = self._iq_size
        iq_heap: list[int] = []  # k largest predicted issue times
        for idx, rec in enumerate(records):
            of, od, oi, oc = rec.fetch, rec.dispatch, rec.issue, rec.complete
            # --- fetch ------------------------------------------------
            note = redirects.get(of)
            gap = of - of_prev
            if gap < 0:
                gap = 0
            # A fetch gap that closed exactly when a fetch-queue slot
            # freed is back-pressure, not bandwidth: it is re-derived
            # from the predicted dispatch schedule below instead of
            # being replayed.
            back_pressured = (fqs and idx >= fqs
                              and records[idx - fqs].dispatch == of)
            if note is not None or back_pressured or "fetch" in zeroed:
                gap = 0
            pf = pf_prev + gap
            if fqs and idx >= fqs and pred_dispatch[idx - fqs] > pf:
                pf = pred_dispatch[idx - fqs]
            if note is not None:
                kind, source_seq = note
                p = index.get(source_seq)
                if kind == "serialize":
                    if "serialize" not in zeroed:
                        if p is not None:
                            base = pred_retire[p]
                            lat = of - records[p].retire
                        else:
                            base = of - shift
                            lat = 0
                        cand = base + lat
                        if cand > pf:
                            pf = cand
                elif "branch" not in zeroed:
                    if kind == "decode":
                        if p is not None:
                            base = pred_fetch[p]
                            lat = of - records[p].fetch
                        else:
                            base = of - shift
                            lat = 0
                    elif p is not None:
                        base = pred_complete[p]
                        lat = of - records[p].complete
                    else:
                        base = of - shift
                        lat = 0
                    cand = base + lat
                    if cand > pf:
                        pf = cand
            if pf < 0:
                pf = 0
            pred_fetch[idx] = pf
            # --- dispatch ---------------------------------------------
            pd = pf + (0 if "decode" in zeroed else decode)
            if pd_prev > pd:
                pd = pd_prev
            if idx >= self._dispatch_width:
                cand = pred_dispatch[idx - self._dispatch_width] + 1
                if cand > pd:
                    pd = cand
            if rec.dispatch_block is not None:
                cap = _CAPACITY_CLASS[rec.dispatch_block]
                if cap not in zeroed:
                    if rec.dispatch_block == "iq":
                        # IQ slots free at out-of-order issue: the
                        # bound is the iq_size-th largest *predicted*
                        # issue among predecessors (heap root).
                        cand = iq_heap[0] if len(iq_heap) >= iq_size \
                            else od - shift
                    else:
                        blocker = self._capacity_blocker(
                            rec.dispatch_block, idx)
                        cand = pred_retire[blocker] \
                            if blocker is not None else od - shift
                    if cand > pd:
                        pd = cand
            pred_dispatch[idx] = pd
            # --- issue ------------------------------------------------
            o_ready = od + 1
            if rec.ready > o_ready:
                o_ready = rec.ready
            structural = oi - o_ready
            if structural < 0:
                structural = 0
            p_ready = pd + 1
            if rec.ready > od + 1 and "data_dep" not in zeroed:
                p = _producer_at(records, index, rec.deps, rec.ready)
                cand = pred_complete[p] if p is not None \
                    else rec.ready - shift
                if cand > p_ready:
                    p_ready = cand
            pi = p_ready + (0 if "exec" in zeroed else structural)
            pred_issue[idx] = pi
            if iq_size > 0:
                if len(iq_heap) < iq_size:
                    heappush(iq_heap, pi)
                elif pi > iq_heap[0]:
                    heapreplace(iq_heap, pi)
            # --- complete ---------------------------------------------
            if rec.is_load and rec.grant >= 0:
                agu = max(0, rec.addr - oi)
                port_wait = max(0, rec.grant - rec.addr)
                service = max(0, oc - rec.grant)
                wait_cls = _BLOCK_CLASS.get(rec.mem_block, "dcache_port")
                source_cls = _SOURCE_CLASS.get(rec.source, "next_level")
                if wait_cls in zeroed:
                    port_wait = 0
                elif wait_cls in scaled:
                    port_wait = int(port_wait / scaled[wait_cls])
                if source_cls in zeroed:
                    service = 0
                elif source_cls in scaled:
                    service = int(service / scaled[source_cls])
                pc = (pi + (0 if "exec" in zeroed else agu)
                      + port_wait + service)
            elif rec.is_store:
                agu = max(0, rec.addr - oi)
                pc = pi + (0 if "exec" in zeroed else agu)
                if rec.data_ready > rec.addr and "data_dep" not in zeroed:
                    p = _producer_at(records, index, rec.data_deps,
                                     rec.data_ready)
                    cand = pred_complete[p] if p is not None \
                        else rec.data_ready - shift
                    if cand > pc:
                        pc = cand
            else:
                pc = pi + (0 if "exec" in zeroed else max(0, oc - oi))
            pred_complete[idx] = pc
            # --- retire -----------------------------------------------
            pr = pc if pc > pr_prev else pr_prev
            if idx >= self._commit_width:
                cand = pred_retire[idx - self._commit_width] + 1
                if cand > pr:
                    pr = cand
            if rec.commit_block is not None:
                commit_cls = _COMMIT_BLOCK_CLASS[rec.commit_block]
                if commit_cls not in zeroed:
                    # An explicit store commit block (wb_full /
                    # store_port): replay its measured residual — its
                    # relief (write-buffer drain bandwidth) is not on
                    # the recorded graph.  The residual is measured
                    # against every constraint the replay also applies
                    # (complete, in-order, commit width); otherwise a
                    # wait that coincides with the width bound would be
                    # double-counted.
                    base_retire = oc if oc > or_prev else or_prev
                    if idx >= self._commit_width:
                        width_bound = records[idx - self._commit_width] \
                            .retire + 1
                        if width_bound > base_retire:
                            base_retire = width_bound
                    residual = rec.retire - base_retire
                    if commit_cls in scaled:
                        residual = int(residual / scaled[commit_cls])
                    if residual > 0:
                        pr += residual
            pred_retire[idx] = pr
            of_prev, od_prev, or_prev = of, od, rec.retire
            pf_prev, pd_prev, pr_prev = pf, pd, pr
        sc.prev_f, sc.prev_d, sc.prev_r = pf_prev, pd_prev, pr_prev
        sc.end = pr_prev
        sc.shift = or_prev - pr_prev

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise ValueError("critpath results are available only after "
                             "the run finalizes the recorder")

    def stack(self) -> dict[str, int]:
        """Critical cycles per edge class (every class, zeros kept);
        sums to :attr:`total_cycles` exactly."""
        self._require_finalized()
        return {cls: self._stack.get(cls, 0) for cls in EDGE_CLASSES}

    def check_conservation(self) -> None:
        """Raise unless the stack reconciles exactly with the run."""
        self._require_finalized()
        total = sum(self._stack.values())
        if total != self.total_cycles:
            raise AssertionError(
                f"critical-path stack sums to {total} cycles but the "
                f"run took {self.total_cycles}")

    def top_instructions(self, k: int = 10) -> list[dict[str, object]]:
        """The *k* static instructions carrying the most critical
        cycles (aggregated by PC)."""
        self._require_finalized()
        total = self.total_cycles or 1
        ranked = sorted(self._crit_pc.items(),
                        key=lambda item: (-item[1][0], item[0]))
        return [{
            "pc": pc,
            "pc_hex": f"0x{pc:x}",
            "kind": kind,
            "cycles": cycles,
            "events": events,
            "share": cycles / total,
        } for pc, (cycles, events, kind) in ranked[:k]]

    def predicted_cycles(self, scenario) -> int:
        """Predicted run length under *scenario* (a class name, an
        iterable of ``"class"`` / ``"class/N"`` specs, or empty for
        the faithful replay)."""
        self._require_finalized()
        key, _, _ = _parse_scenario(scenario)
        sc = self._scenarios.get(key)
        if sc is None:
            raise KeyError(f"no what-if scenario {key!r} was requested "
                           f"at construction")
        # The drain tail is preserved as-is.
        return sc.end + (self.total_cycles - self._boundary)

    def whatif_results(self) -> list[dict[str, object]]:
        """Every requested scenario's prediction, construction order."""
        self._require_finalized()
        results = []
        for key in self._scenarios:
            predicted = self.predicted_cycles(key)
            results.append({
                "scenario": list(key),
                "predicted_cycles": predicted,
                "predicted_ipc": (self.instructions / predicted
                                  if predicted else 0.0),
                "speedup": (self.total_cycles / predicted
                            if predicted else 0.0),
            })
        return results

    def as_dict(self) -> dict[str, object]:
        """The analysis payload embedded in ``repro.critpath/1``."""
        self._require_finalized()
        total = self.total_cycles or 1
        stack = self.stack()
        return {
            "window": self.window,
            "windows": self.windows,
            "cycles": self.total_cycles,
            "instructions": self.instructions,
            "stack": stack,
            "stack_share": {cls: cycles / total
                            for cls, cycles in stack.items()},
            "top_instructions": self.top_instructions(),
            "whatif": self.whatif_results(),
        }

    def summary(self) -> str:
        """One human line: the three heaviest edge classes."""
        self._require_finalized()
        total = self.total_cycles or 1
        top = sorted(self._stack.items(), key=lambda item: -item[1])[:3]
        parts = ", ".join(f"{cls} {cycles / total:5.1%}"
                          for cls, cycles in top)
        return f"critical path: {parts}"


def _producer_at(records: list[_Rec], index: dict[int, int],
                 deps: Sequence[int], when: int):
    """The in-window producer among *deps* that completed at *when*."""
    for producer_seq in deps:
        p = index.get(producer_seq)
        if p is not None and records[p].complete == when:
            return p
    return None


# ----------------------------------------------------------------------
# Manifest (repro.critpath/1)
# ----------------------------------------------------------------------
def build_critpath_report(recorder: CritPathRecorder,
                          result: "CoreResult",
                          machine: "MachineConfig", *,
                          workload: str | None = None,
                          scale: str | None = None,
                          seed: int | None = None,
                          trace_file: str | None = None,
                          wall_time: float | None = None
                          ) -> dict[str, object]:
    """Assemble the versioned ``repro.critpath/1`` document."""
    if workload is not None and trace_file is not None:
        raise ValueError("a critpath report names a workload or a "
                         "trace_file, not both")
    if recorder.total_cycles != result.cycles:
        raise ValueError(
            f"recorder saw {recorder.total_cycles} cycles but the "
            f"result reports {result.cycles}; the recorder must come "
            f"from this run")
    document: dict[str, object] = {
        "schema": CRITPATH_SCHEMA,
        "schema_version": CRITPATH_SCHEMA_VERSION,
        "code_version": code_version(),
        "config": {
            "name": machine.name,
            "issue_width": machine.core.issue_width,
            "dcache": _dcache_dict(machine),
        },
        "workload": workload,
        "scale": scale,
        "seed": seed,
        "trace_file": trace_file,
        "ipc": result.ipc,
    }
    document.update(recorder.as_dict())
    document["host"] = {"wall_time_s": wall_time}
    return document


def validate_critpath_report(report: dict) -> None:
    """Raise :class:`SchemaError` unless *report* is a valid
    ``repro.critpath/1`` document — including exact conservation."""
    problems: list[str] = []
    if not isinstance(report, dict):
        raise SchemaError(["critpath report must be an object"])
    _require(report, {
        "schema": str,
        "schema_version": int,
        "config": dict,
        "cycles": int,
        "instructions": int,
        "window": int,
        "windows": int,
        "stack": dict,
        "stack_share": dict,
        "top_instructions": list,
        "whatif": list,
        "host": dict,
    }, problems, "critpath")
    if report.get("schema") not in (None, CRITPATH_SCHEMA):
        problems.append(f"critpath: schema is {report.get('schema')!r}, "
                        f"expected {CRITPATH_SCHEMA!r}")
    _check_code_version(report, problems, "critpath")
    config = report.get("config")
    if isinstance(config, dict):
        _require(config, {"name": str, "issue_width": int, "dcache": dict},
                 problems, "critpath.config")
    for key in ("workload", "scale", "trace_file"):
        if key in report and report[key] is not None and \
                not isinstance(report[key], str):
            problems.append(f"critpath: {key} must be a string or null")
    if isinstance(report.get("workload"), str) and \
            isinstance(report.get("trace_file"), str):
        problems.append("critpath: workload and trace_file are mutually "
                        "exclusive")
    stack = report.get("stack")
    if isinstance(stack, dict):
        for cls, cycles in stack.items():
            if cls not in _EDGE_CLASS_SET:
                problems.append(f"critpath.stack: unknown edge class "
                                f"{cls!r}")
            if not isinstance(cycles, int) or cycles < 0:
                problems.append(f"critpath.stack: {cls!r} must be a "
                                f"non-negative integer")
        if not problems and isinstance(report.get("cycles"), int) and \
                sum(stack.values()) != report["cycles"]:
            problems.append(
                f"critpath.stack: classes sum to {sum(stack.values())} "
                f"cycles, run took {report['cycles']} — the stack must "
                f"reconcile exactly")
    for idx, entry in enumerate(report.get("top_instructions") or ()):
        if not isinstance(entry, dict):
            problems.append(f"critpath.top_instructions[{idx}]: must be "
                            f"an object")
            continue
        _require(entry, {"pc": int, "kind": str, "cycles": int,
                         "events": int, "share": (int, float)},
                 problems, f"critpath.top_instructions[{idx}]")
    for idx, entry in enumerate(report.get("whatif") or ()):
        if not isinstance(entry, dict):
            problems.append(f"critpath.whatif[{idx}]: must be an object")
            continue
        _require(entry, {"scenario": list, "predicted_cycles": int,
                         "predicted_ipc": (int, float),
                         "speedup": (int, float)},
                 problems, f"critpath.whatif[{idx}]")
        scenario = entry.get("scenario")
        if isinstance(scenario, list):
            for spec in scenario:
                cls = str(spec).partition("/")[0]
                if cls not in _EDGE_CLASS_SET:
                    problems.append(f"critpath.whatif[{idx}]: unknown "
                                    f"edge class {cls!r}")
    host = report.get("host")
    if isinstance(host, dict) and "wall_time_s" not in host:
        problems.append("critpath.host: missing key 'wall_time_s'")
    if problems:
        raise SchemaError(problems)


def render_critpath_report(report: dict, top: int = 10,
                           width: int = 40) -> str:
    """ASCII rendering of a critpath manifest: CPI stack bars, the
    top-K critical instructions, and the what-if predictions."""
    lines: list[str] = []
    cycles = report["cycles"] or 1
    name = (report.get("config") or {}).get("name", "?")
    workload = report.get("workload") or report.get("trace_file") or "?"
    lines.append(f"Critical-path CPI stack — {workload} on {name} "
                 f"({report['cycles']} cycles, "
                 f"{report['instructions']} instructions, "
                 f"{report['windows']} window(s))")
    stack = report["stack"]
    for cls in EDGE_CLASSES:
        charged = stack.get(cls, 0)
        if not charged:
            continue
        share = charged / cycles
        bar = "#" * max(1, round(share * width))
        lines.append(f"  {cls:<14} {charged:>10}  {share:6.1%}  {bar}")
    lines.append(f"  {'total':<14} {sum(stack.values()):>10}  "
                 f"(reconciles exactly)")
    entries = report.get("top_instructions") or []
    if entries:
        lines.append("")
        lines.append(f"Top {min(top, len(entries))} critical "
                     f"instructions:")
        for entry in entries[:top]:
            lines.append(f"  {entry['pc_hex']:>10}  {entry['kind']:<8} "
                         f"{entry['cycles']:>10}  {entry['share']:6.1%}  "
                         f"({entry['events']} edges)")
    whatif = report.get("whatif") or []
    if whatif:
        lines.append("")
        lines.append("What-if predictions:")
        for entry in whatif:
            scenario = "+".join(entry["scenario"]) or "(faithful)"
            lines.append(f"  relax {scenario:<28} -> "
                         f"{entry['predicted_cycles']:>10} cycles "
                         f"(IPC {entry['predicted_ipc']:.3f}, "
                         f"{entry['speedup']:.2f}x)")
    return "\n".join(lines)
