"""The persistent results ledger: a durable store of manifests.

Every ``--json`` document the toolkit emits is a one-shot file; the
ledger gives them memory.  It is a **dependency-free SQLite store**
(stdlib ``sqlite3`` only) that ingests every manifest schema —
``repro.run/1``, ``repro.experiment/1``, ``repro.bench/1``,
``repro.compare/1``, ``repro.critpath/1`` and ``repro.hotspots/1`` —
into normalized tables keyed by

    (trace_digest, config_digest, code_version)

so "the same simulation, across code versions" is one indexed query.
On top of it sit ``repro dash`` (:mod:`repro.obs.dash`) and ``repro
watch`` (:mod:`repro.obs.watch`), and the ROADMAP's result-cache
service and design-space autopilot get their result index for free.

Design rules:

* **Idempotent ingest.**  A manifest's identity is the SHA-256 of its
  canonical JSON; re-ingesting the same document is a no-op (enforced
  by a UNIQUE constraint, so it holds under concurrent ingest from
  several engine workers too).
* **The document is the truth.**  Normalized columns exist for
  indexing and trending; the full document is stored verbatim and can
  always be re-read (:meth:`Ledger.document`).
* **Keys come from the manifest alone.**  ``trace_digest`` hashes the
  workload identity (workload, scale, seed, trace_file) and
  ``config_digest`` the configuration block *as recorded*, never
  reconstructed from current code — a preset that changed meaning
  across versions must not silently collide.  Bench cells only record
  a configuration *name*, so their config digest covers ``{"name":
  ...}``.
* **Versioned schema.**  ``meta`` carries the ledger schema version;
  :data:`MIGRATIONS` upgrades older stores in-place on open.
* **Text export.**  :meth:`Ledger.export_jsonl` /
  :meth:`Ledger.import_jsonl` round-trip the store through a diffable
  JSONL format (one manifest per line, ingest-time metadata
  preserved), which is how the committed seed fixture is maintained.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import sqlite3

__all__ = [
    "LEDGER_DB_VERSION",
    "Ledger",
    "LedgerError",
    "config_digest_of",
    "detect_kind",
    "manifest_digest",
    "resolve_ledger_path",
    "trace_digest_of",
]

#: Current on-disk schema version (see :data:`MIGRATIONS`).
LEDGER_DB_VERSION = 4

#: Environment variable naming the default ledger database.
LEDGER_ENV = "REPRO_LEDGER"

#: schema tag -> ledger kind.
_KINDS = {
    "repro.run/1": "run",
    "repro.experiment/1": "experiment",
    "repro.bench/1": "bench",
    "repro.compare/1": "compare",
    "repro.critpath/1": "critpath",
    "repro.hotspots/1": "hotspots",
}

#: Stamp recorded when a manifest predates code-version stamping.
UNKNOWN_VERSION = "unknown"


class LedgerError(ValueError):
    """A document could not be ingested or the store is unusable."""


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def _canonical(document: object) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def manifest_digest(document: dict) -> str:
    """The identity of a manifest: SHA-256 over its canonical JSON."""
    return _sha256(_canonical(document))


def trace_digest_of(workload: str | None, scale: str | None,
                    seed: int | None, trace_file: str | None) -> str:
    """Digest of a simulation's *input* identity."""
    return _sha256(_canonical({"workload": workload, "scale": scale,
                               "seed": seed, "trace_file": trace_file}))


def config_digest_of(config: dict) -> str:
    """Digest of a simulation's *configuration* identity, hashed as
    recorded in the manifest (a run report's full ``config`` block, or
    ``{"name": ...}`` for a bench cell)."""
    return _sha256(_canonical(config))


def detect_kind(document: dict) -> str:
    """``run`` / ``experiment`` / ``bench`` / ``compare``; raises
    :class:`LedgerError` for anything else."""
    schema = document.get("schema") if isinstance(document, dict) else None
    kind = _KINDS.get(schema)
    if kind is None:
        raise LedgerError(
            f"cannot ingest schema {schema!r}; the ledger accepts "
            + ", ".join(sorted(_KINDS)))
    return kind


def _document_code_version(document: dict) -> str | None:
    value = document.get("code_version")
    if isinstance(value, str) and value:
        return value
    return None


# ----------------------------------------------------------------------
# Schema + migrations
# ----------------------------------------------------------------------
_SCHEMA_V1 = """
CREATE TABLE meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE manifests (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    digest TEXT NOT NULL UNIQUE,
    kind TEXT NOT NULL,
    schema TEXT NOT NULL,
    code_version TEXT NOT NULL,
    ingested_at TEXT NOT NULL,
    document TEXT NOT NULL
);
CREATE TABLE runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    manifest_id INTEGER NOT NULL REFERENCES manifests(id)
        ON DELETE CASCADE,
    run_index INTEGER NOT NULL,
    trace_digest TEXT NOT NULL,
    config_digest TEXT NOT NULL,
    code_version TEXT NOT NULL,
    workload TEXT,
    scale TEXT,
    seed INTEGER,
    trace_file TEXT,
    config_name TEXT NOT NULL,
    cycles INTEGER NOT NULL,
    instructions INTEGER NOT NULL,
    ipc REAL NOT NULL,
    wall_time_s REAL,
    sim_ips REAL,
    has_metrics INTEGER NOT NULL
);
CREATE INDEX runs_by_key
    ON runs (trace_digest, config_digest, code_version);
CREATE TABLE experiments (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    manifest_id INTEGER NOT NULL REFERENCES manifests(id)
        ON DELETE CASCADE,
    experiment TEXT NOT NULL,
    scale TEXT NOT NULL,
    code_version TEXT NOT NULL,
    title TEXT
);
CREATE INDEX experiments_by_name ON experiments (experiment, scale);
CREATE TABLE experiment_cells (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment_id INTEGER NOT NULL REFERENCES experiments(id)
        ON DELETE CASCADE,
    row_label TEXT NOT NULL,
    column_name TEXT NOT NULL,
    number REAL,
    text TEXT
);
CREATE TABLE bench (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    manifest_id INTEGER NOT NULL REFERENCES manifests(id)
        ON DELETE CASCADE,
    mode TEXT NOT NULL,
    code_version TEXT NOT NULL,
    hostname TEXT
);
CREATE TABLE bench_cells (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    bench_id INTEGER NOT NULL REFERENCES bench(id) ON DELETE CASCADE,
    label TEXT NOT NULL,
    trace_digest TEXT NOT NULL,
    config_digest TEXT NOT NULL,
    workload TEXT NOT NULL,
    scale TEXT NOT NULL,
    config_name TEXT NOT NULL,
    instructions INTEGER NOT NULL,
    cycles INTEGER NOT NULL,
    ipc REAL NOT NULL,
    kips_median REAL NOT NULL,
    kips_iqr REAL NOT NULL,
    seconds_median REAL NOT NULL
);
CREATE INDEX bench_cells_by_label ON bench_cells (label);
CREATE TABLE compares (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    manifest_id INTEGER NOT NULL REFERENCES manifests(id)
        ON DELETE CASCADE,
    code_version TEXT NOT NULL,
    equal INTEGER NOT NULL,
    delta_count INTEGER NOT NULL,
    tolerance REAL NOT NULL
);
"""


def _migrate_1_to_2(conn: sqlite3.Connection) -> None:
    """v2 records where a manifest came from (``source`` path)."""
    conn.execute("ALTER TABLE manifests ADD COLUMN source TEXT")


def _migrate_2_to_3(conn: sqlite3.Connection) -> None:
    """v3 ingests ``repro.critpath/1`` manifests (critical-path CPI
    stacks + what-if predictions from :mod:`repro.obs.critpath`)."""
    conn.execute("""
CREATE TABLE critpaths (
    id INTEGER PRIMARY KEY,
    manifest_id INTEGER NOT NULL REFERENCES manifests (id),
    trace_digest TEXT NOT NULL,
    config_digest TEXT NOT NULL,
    code_version TEXT NOT NULL,
    workload TEXT,
    scale TEXT,
    seed INTEGER,
    trace_file TEXT,
    config_name TEXT NOT NULL,
    cycles INTEGER NOT NULL,
    instructions INTEGER NOT NULL,
    ipc REAL NOT NULL,
    window INTEGER NOT NULL,
    windows INTEGER NOT NULL
)""")
    conn.execute("""
CREATE TABLE critpath_stack (
    id INTEGER PRIMARY KEY,
    critpath_id INTEGER NOT NULL REFERENCES critpaths (id),
    edge_class TEXT NOT NULL,
    cycles INTEGER NOT NULL,
    share REAL NOT NULL
)""")
    conn.execute("CREATE INDEX idx_critpaths_key ON critpaths "
                 "(trace_digest, config_digest)")


def _migrate_3_to_4(conn: sqlite3.Connection) -> None:
    """v4 ingests ``repro.hotspots/1`` manifests (per-PC hotspot
    attribution from :mod:`repro.obs.hotspots`): one ``hotspots`` row
    per manifest plus its top per-PC rows in ``hotspot_rows``."""
    conn.execute("""
CREATE TABLE hotspots (
    id INTEGER PRIMARY KEY,
    manifest_id INTEGER NOT NULL REFERENCES manifests (id),
    trace_digest TEXT NOT NULL,
    config_digest TEXT NOT NULL,
    code_version TEXT NOT NULL,
    workload TEXT,
    scale TEXT,
    seed INTEGER,
    trace_file TEXT,
    config_name TEXT NOT NULL,
    cycles INTEGER NOT NULL,
    instructions INTEGER NOT NULL,
    ipc REAL NOT NULL,
    static_pcs INTEGER NOT NULL,
    kernel_instructions INTEGER NOT NULL,
    user_instructions INTEGER NOT NULL,
    kernel_port_conflict INTEGER NOT NULL,
    user_port_conflict INTEGER NOT NULL
)""")
    conn.execute("""
CREATE TABLE hotspot_rows (
    id INTEGER PRIMARY KEY,
    hotspot_id INTEGER NOT NULL REFERENCES hotspots (id),
    rank INTEGER NOT NULL,
    pc INTEGER NOT NULL,
    kernel INTEGER NOT NULL,
    kind TEXT NOT NULL,
    disasm TEXT,
    executions INTEGER NOT NULL,
    port_conflict_slots INTEGER NOT NULL,
    stall_total INTEGER NOT NULL,
    port_uses INTEGER NOT NULL,
    misses INTEGER NOT NULL
)""")
    conn.execute("CREATE INDEX idx_hotspots_key ON hotspots "
                 "(trace_digest, config_digest)")


#: old version -> upgrade function (applied in order on open).
MIGRATIONS = {1: _migrate_1_to_2, 2: _migrate_2_to_3,
              3: _migrate_3_to_4}


def _db_version(conn: sqlite3.Connection) -> int:
    row = conn.execute(
        "SELECT value FROM meta WHERE key = 'ledger_schema_version'"
    ).fetchone()
    if row is None:
        raise LedgerError("ledger database has no schema version")
    return int(row[0])


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class Ledger:
    """One SQLite-backed results ledger.  Usable as a context manager;
    safe for concurrent ingest from several processes (SQLite locking
    plus a busy timeout plus idempotent inserts)."""

    def __init__(self, path: str | os.PathLike,
                 timeout: float = 30.0) -> None:
        self.path = os.fspath(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=timeout)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._migrate()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _migrate(self) -> None:
        # BEGIN IMMEDIATE serializes initializers: a second process
        # opening the same fresh database blocks here (busy timeout)
        # until the first commits the complete schema, then re-checks.
        # executescript would be wrong — it autocommits per statement,
        # exposing a half-built schema to concurrent openers.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            tables = {row[0] for row in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'")}
            if "meta" not in tables:
                for statement in _SCHEMA_V1.split(";"):
                    if statement.strip():
                        self._conn.execute(statement)
                for old in sorted(MIGRATIONS):
                    MIGRATIONS[old](self._conn)
                self._conn.execute(
                    "INSERT INTO meta (key, value) VALUES "
                    "('ledger_schema_version', ?)",
                    (str(LEDGER_DB_VERSION),))
            else:
                version = _db_version(self._conn)
                if version > LEDGER_DB_VERSION:
                    raise LedgerError(
                        f"{self.path} uses ledger schema v{version}; "
                        f"this build understands up to "
                        f"v{LEDGER_DB_VERSION}")
                while version < LEDGER_DB_VERSION:
                    MIGRATIONS[version](self._conn)
                    version += 1
                    self._conn.execute(
                        "UPDATE meta SET value = ? WHERE "
                        "key = 'ledger_schema_version'", (str(version),))
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise

    @property
    def db_version(self) -> int:
        return _db_version(self._conn)

    # -- ingest --------------------------------------------------------
    def ingest(self, document: dict, source: str | None = None,
               code_version: str | None = None,
               ingested_at: str | None = None) -> bool:
        """Ingest one manifest.  Returns True if it was new, False if
        this exact document was already in the ledger (no-op).

        ``code_version`` overrides the stamp for documents that
        predate stamping (otherwise the document's own ``code_version``
        is used, falling back to ``"unknown"``); ``ingested_at``
        preserves the original timestamp on JSONL import.
        """
        kind = detect_kind(document)
        digest = manifest_digest(document)
        version = (_document_code_version(document) or code_version
                   or UNKNOWN_VERSION)
        stamp = ingested_at or datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds")
        try:
            with self._conn:
                cursor = self._conn.execute(
                    "INSERT INTO manifests (digest, kind, schema, "
                    "code_version, ingested_at, document, source) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (digest, kind, document["schema"], version, stamp,
                     _canonical(document), source))
                manifest_id = cursor.lastrowid
                if kind == "run":
                    self._ingest_run(manifest_id, 0, document, version)
                elif kind == "experiment":
                    self._ingest_experiment(manifest_id, document,
                                            version)
                elif kind == "bench":
                    self._ingest_bench(manifest_id, document, version)
                elif kind == "critpath":
                    self._ingest_critpath(manifest_id, document, version)
                elif kind == "hotspots":
                    self._ingest_hotspots(manifest_id, document, version)
                else:
                    self._ingest_compare(manifest_id, document, version)
        except sqlite3.IntegrityError:
            return False    # lost a race or re-ingested: both no-ops
        return True

    def ingest_file(self, path: str | os.PathLike,
                    code_version: str | None = None) -> bool:
        """Load a JSON manifest from *path* and ingest it."""
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        if not isinstance(document, dict):
            raise LedgerError(f"{path} is not a JSON object")
        return self.ingest(document, source=os.fspath(path),
                           code_version=code_version)

    def _ingest_run(self, manifest_id: int, run_index: int,
                    report: dict, version: str) -> None:
        config = report.get("config")
        if not isinstance(config, dict):
            raise LedgerError("run report has no config block")
        metrics = report.get("metrics")
        host = report.get("host") or {}
        # Back-compat: pre-metrics run reports (no ``metrics`` block,
        # sometimes no ``ipc``/``host``) still carry the simulated
        # counts; derive what is derivable and NULL-stamp the rest
        # instead of rejecting the vintage.
        cycles = report.get("cycles")
        instructions = report.get("instructions")
        if not isinstance(cycles, int) or \
                not isinstance(instructions, int):
            raise LedgerError(
                "run report lacks integer cycles/instructions; "
                "cannot ingest")
        ipc = report.get("ipc")
        if ipc is None:
            ipc = instructions / cycles if cycles else 0.0
        self._conn.execute(
            "INSERT INTO runs (manifest_id, run_index, trace_digest, "
            "config_digest, code_version, workload, scale, seed, "
            "trace_file, config_name, cycles, instructions, ipc, "
            "wall_time_s, sim_ips, has_metrics) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (manifest_id, run_index,
             trace_digest_of(report.get("workload"), report.get("scale"),
                             report.get("seed"),
                             report.get("trace_file")),
             config_digest_of(config),
             _document_code_version(report) or version,
             report.get("workload"), report.get("scale"),
             report.get("seed"), report.get("trace_file"),
             config.get("name", "?"), cycles,
             instructions, ipc,
             host.get("wall_time_s"), host.get("sim_ips"),
             1 if metrics else 0))

    def _ingest_experiment(self, manifest_id: int, manifest: dict,
                           version: str) -> None:
        table = manifest.get("table") or {}
        cursor = self._conn.execute(
            "INSERT INTO experiments (manifest_id, experiment, scale, "
            "code_version, title) VALUES (?, ?, ?, ?, ?)",
            (manifest_id, manifest["experiment"], manifest["scale"],
             version, table.get("title")))
        experiment_id = cursor.lastrowid
        columns = table.get("columns") or []
        for row in table.get("rows") or []:
            if not row:
                continue
            row_label = str(row[0])
            for name, value in zip(columns[1:], row[1:]):
                number = (float(value)
                          if isinstance(value, (int, float))
                          and not isinstance(value, bool) else None)
                self._conn.execute(
                    "INSERT INTO experiment_cells (experiment_id, "
                    "row_label, column_name, number, text) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (experiment_id, row_label, str(name), number,
                     None if number is not None else str(value)))
        for index, report in enumerate(manifest.get("runs") or ()):
            self._ingest_run(manifest_id, index, report, version)

    def _ingest_bench(self, manifest_id: int, manifest: dict,
                      version: str) -> None:
        host = manifest.get("host") or {}
        cursor = self._conn.execute(
            "INSERT INTO bench (manifest_id, mode, code_version, "
            "hostname) VALUES (?, ?, ?, ?)",
            (manifest_id, manifest.get("mode", "?"), version,
             host.get("hostname")))
        bench_id = cursor.lastrowid
        for cell in manifest.get("results") or ():
            self._conn.execute(
                "INSERT INTO bench_cells (bench_id, label, "
                "trace_digest, config_digest, workload, scale, "
                "config_name, instructions, cycles, ipc, kips_median, "
                "kips_iqr, seconds_median) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (bench_id, cell["label"],
                 trace_digest_of(cell["workload"], cell["scale"],
                                 None, None),
                 config_digest_of({"name": cell["config"]}),
                 cell["workload"], cell["scale"], cell["config"],
                 cell["instructions"], cell["cycles"], cell["ipc"],
                 cell["kips"]["median"], cell["kips"]["iqr"],
                 cell["seconds"]["median"]))

    def _ingest_critpath(self, manifest_id: int, report: dict,
                         version: str) -> None:
        config = report.get("config")
        if not isinstance(config, dict):
            raise LedgerError("critpath report has no config block")
        cycles = report.get("cycles")
        instructions = report.get("instructions")
        if not isinstance(cycles, int) or \
                not isinstance(instructions, int):
            raise LedgerError(
                "critpath report lacks integer cycles/instructions; "
                "cannot ingest")
        ipc = report.get("ipc")
        if ipc is None:
            ipc = instructions / cycles if cycles else 0.0
        cursor = self._conn.execute(
            "INSERT INTO critpaths (manifest_id, trace_digest, "
            "config_digest, code_version, workload, scale, seed, "
            "trace_file, config_name, cycles, instructions, ipc, "
            "window, windows) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (manifest_id,
             trace_digest_of(report.get("workload"), report.get("scale"),
                             report.get("seed"),
                             report.get("trace_file")),
             config_digest_of(config),
             _document_code_version(report) or version,
             report.get("workload"), report.get("scale"),
             report.get("seed"), report.get("trace_file"),
             config.get("name", "?"), cycles, instructions, ipc,
             int(report.get("window") or 0),
             int(report.get("windows") or 0)))
        critpath_id = cursor.lastrowid
        stack = report.get("stack")
        if not isinstance(stack, dict):
            raise LedgerError("critpath report has no stack block")
        total = cycles or 1
        for edge_class, charged in stack.items():
            self._conn.execute(
                "INSERT INTO critpath_stack (critpath_id, edge_class, "
                "cycles, share) VALUES (?, ?, ?, ?)",
                (critpath_id, edge_class, int(charged),
                 int(charged) / total))

    #: per-PC rows normalized per hotspots manifest (the full row set
    #: stays in the stored document).
    _HOTSPOT_ROW_LIMIT = 32

    def _ingest_hotspots(self, manifest_id: int, report: dict,
                         version: str) -> None:
        config = report.get("config")
        if not isinstance(config, dict):
            raise LedgerError("hotspots report has no config block")
        cycles = report.get("cycles")
        instructions = report.get("instructions")
        if not isinstance(cycles, int) or \
                not isinstance(instructions, int):
            raise LedgerError(
                "hotspots report lacks integer cycles/instructions; "
                "cannot ingest")
        ipc = report.get("ipc")
        if ipc is None:
            ipc = instructions / cycles if cycles else 0.0
        rows = report.get("rows")
        if not isinstance(rows, list):
            raise LedgerError("hotspots report has no rows block")
        split = report.get("split") or {}
        kernel = split.get("kernel") or {}
        user = split.get("user") or {}
        cursor = self._conn.execute(
            "INSERT INTO hotspots (manifest_id, trace_digest, "
            "config_digest, code_version, workload, scale, seed, "
            "trace_file, config_name, cycles, instructions, ipc, "
            "static_pcs, kernel_instructions, user_instructions, "
            "kernel_port_conflict, user_port_conflict) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (manifest_id,
             trace_digest_of(report.get("workload"), report.get("scale"),
                             report.get("seed"),
                             report.get("trace_file")),
             config_digest_of(config),
             _document_code_version(report) or version,
             report.get("workload"), report.get("scale"),
             report.get("seed"), report.get("trace_file"),
             config.get("name", "?"), cycles, instructions, ipc,
             len(rows),
             int(kernel.get("executions") or 0),
             int(user.get("executions") or 0),
             int(kernel.get("port_conflict_slots") or 0),
             int(user.get("port_conflict_slots") or 0)))
        hotspot_id = cursor.lastrowid
        # Manifest rows arrive ranked by port-conflict slots already.
        for rank, row in enumerate(rows[:self._HOTSPOT_ROW_LIMIT]):
            dcache = row.get("dcache") or {}
            stall = row.get("stall") or {}
            self._conn.execute(
                "INSERT INTO hotspot_rows (hotspot_id, rank, pc, "
                "kernel, kind, disasm, executions, "
                "port_conflict_slots, stall_total, port_uses, misses) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (hotspot_id, rank, int(row["pc"]),
                 1 if row.get("kernel") else 0,
                 str(row.get("kind", "?")), row.get("disasm"),
                 int(row["executions"]),
                 int(stall.get("dcache_port") or 0),
                 int(row.get("stall_total") or 0),
                 int(dcache.get("port_uses") or 0),
                 int(dcache.get("load_misses") or 0)
                 + int(dcache.get("store_misses") or 0)))

    def _ingest_compare(self, manifest_id: int, report: dict,
                        version: str) -> None:
        self._conn.execute(
            "INSERT INTO compares (manifest_id, code_version, equal, "
            "delta_count, tolerance) VALUES (?, ?, ?, ?, ?)",
            (manifest_id, version, 1 if report.get("equal") else 0,
             len(report.get("deltas") or ()),
             float(report.get("tolerance") or 0.0)))

    # -- queries -------------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Row counts per table (manifests broken down by kind)."""
        out: dict[str, int] = {}
        for table in ("manifests", "runs", "experiments",
                      "experiment_cells", "bench", "bench_cells",
                      "compares", "critpaths", "critpath_stack",
                      "hotspots", "hotspot_rows"):
            out[table] = self._conn.execute(
                f"SELECT COUNT(*) FROM {table}").fetchone()[0]
        for kind in sorted(set(_KINDS.values())):
            out[f"manifests.{kind}"] = 0
        for row in self._conn.execute(
                "SELECT kind, COUNT(*) FROM manifests GROUP BY kind"):
            out[f"manifests.{row[0]}"] = row[1]
        return out

    def code_versions(self) -> list[str]:
        """Distinct code versions, in first-ingest order."""
        return [row[0] for row in self._conn.execute(
            "SELECT code_version FROM manifests GROUP BY code_version "
            "ORDER BY MIN(id)")]

    def document(self, digest: str) -> dict | None:
        """The verbatim manifest with this digest, or None."""
        row = self._conn.execute(
            "SELECT document FROM manifests WHERE digest = ?",
            (digest,)).fetchone()
        return json.loads(row[0]) if row is not None else None

    def run_document(self, manifest_digest: str,
                     run_index: int) -> dict | None:
        """The run report at *run_index* inside a stored manifest (the
        manifest itself for a bare run report)."""
        document = self.document(manifest_digest)
        if document is None:
            return None
        if document.get("schema") == "repro.run/1":
            return document
        runs = document.get("runs") or []
        return runs[run_index] if run_index < len(runs) else None

    def bench_labels(self) -> list[str]:
        return [row[0] for row in self._conn.execute(
            "SELECT DISTINCT label FROM bench_cells ORDER BY label")]

    def bench_history(self, label: str, limit: int | None = None,
                      exclude_digest: str | None = None) -> list[dict]:
        """Entries for one bench cell label, oldest -> newest.  With
        *limit*, the newest N.  ``exclude_digest`` drops the manifest
        a candidate was loaded from (so a watch never compares a
        document against itself)."""
        sql = ("SELECT m.digest AS manifest_digest, m.ingested_at, "
               "b.mode, b.code_version, c.* FROM bench_cells c "
               "JOIN bench b ON c.bench_id = b.id "
               "JOIN manifests m ON b.manifest_id = m.id "
               "WHERE c.label = ?")
        params: list[object] = [label]
        if exclude_digest is not None:
            sql += " AND m.digest != ?"
            params.append(exclude_digest)
        sql += " ORDER BY m.id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        rows = [dict(row) for row in self._conn.execute(sql, params)]
        rows.reverse()
        return rows

    def kips_trend(self) -> dict[str, list[dict]]:
        """Per bench-cell label, the full history (oldest -> newest)."""
        return {label: self.bench_history(label)
                for label in self.bench_labels()}

    def run_keys(self) -> list[dict]:
        """Distinct (trace_digest, config_digest) run keys with their
        human identity and entry count, most-recorded first."""
        return [dict(row) for row in self._conn.execute(
            "SELECT trace_digest, config_digest, workload, scale, "
            "seed, trace_file, config_name, COUNT(*) AS entries, "
            "COUNT(DISTINCT code_version) AS versions "
            "FROM runs GROUP BY trace_digest, config_digest "
            "ORDER BY entries DESC, config_name, workload")]

    def run_history(self, trace_digest: str, config_digest: str,
                    limit: int | None = None,
                    exclude_digest: str | None = None) -> list[dict]:
        """Entries for one run key, oldest -> newest (newest N with
        *limit*)."""
        sql = ("SELECT m.digest AS manifest_digest, m.ingested_at, "
               "m.kind, r.* FROM runs r "
               "JOIN manifests m ON r.manifest_id = m.id "
               "WHERE r.trace_digest = ? AND r.config_digest = ?")
        params: list[object] = [trace_digest, config_digest]
        if exclude_digest is not None:
            sql += " AND m.digest != ?"
            params.append(exclude_digest)
        sql += " ORDER BY r.id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        rows = [dict(row) for row in self._conn.execute(sql, params)]
        rows.reverse()
        return rows

    def latest_run(self, trace_digest: str,
                   config_digest: str) -> dict | None:
        history = self.run_history(trace_digest, config_digest, limit=1)
        return history[-1] if history else None

    def critpath_keys(self) -> list[dict]:
        """Distinct (trace_digest, config_digest) critpath keys with
        their human identity and entry count, most-recorded first."""
        return [dict(row) for row in self._conn.execute(
            "SELECT trace_digest, config_digest, workload, scale, "
            "seed, trace_file, config_name, COUNT(*) AS entries "
            "FROM critpaths GROUP BY trace_digest, config_digest "
            "ORDER BY entries DESC, config_name, workload")]

    def latest_critpath(self, trace_digest: str,
                        config_digest: str) -> dict | None:
        """The newest critpath entry for one key, with its CPI stack
        attached as ``stack`` (edge class -> {cycles, share})."""
        row = self._conn.execute(
            "SELECT m.digest AS manifest_digest, m.ingested_at, c.* "
            "FROM critpaths c JOIN manifests m ON c.manifest_id = m.id "
            "WHERE c.trace_digest = ? AND c.config_digest = ? "
            "ORDER BY c.id DESC LIMIT 1",
            (trace_digest, config_digest)).fetchone()
        if row is None:
            return None
        entry = dict(row)
        entry["stack"] = {
            stack_row["edge_class"]: {"cycles": stack_row["cycles"],
                                      "share": stack_row["share"]}
            for stack_row in self._conn.execute(
                "SELECT edge_class, cycles, share FROM critpath_stack "
                "WHERE critpath_id = ? ORDER BY id", (entry["id"],))}
        return entry

    def hotspot_keys(self) -> list[dict]:
        """Distinct (trace_digest, config_digest) hotspot keys with
        their human identity and entry count, most-recorded first."""
        return [dict(row) for row in self._conn.execute(
            "SELECT trace_digest, config_digest, workload, scale, "
            "seed, trace_file, config_name, COUNT(*) AS entries "
            "FROM hotspots GROUP BY trace_digest, config_digest "
            "ORDER BY entries DESC, config_name, workload")]

    def latest_hotspots(self, trace_digest: str,
                        config_digest: str) -> dict | None:
        """The newest hotspots entry for one key, with its normalized
        top per-PC rows attached as ``rows`` (rank order)."""
        row = self._conn.execute(
            "SELECT m.digest AS manifest_digest, m.ingested_at, h.* "
            "FROM hotspots h JOIN manifests m ON h.manifest_id = m.id "
            "WHERE h.trace_digest = ? AND h.config_digest = ? "
            "ORDER BY h.id DESC LIMIT 1",
            (trace_digest, config_digest)).fetchone()
        if row is None:
            return None
        entry = dict(row)
        entry["rows"] = [dict(pc_row) for pc_row in self._conn.execute(
            "SELECT rank, pc, kernel, kind, disasm, executions, "
            "port_conflict_slots, stall_total, port_uses, misses "
            "FROM hotspot_rows WHERE hotspot_id = ? ORDER BY rank",
            (entry["id"],))]
        return entry

    def experiment_names(self) -> list[str]:
        return [row[0] for row in self._conn.execute(
            "SELECT DISTINCT experiment FROM experiments "
            "ORDER BY experiment")]

    def experiment_latest(self, experiment: str,
                          scale: str | None = None) -> dict | None:
        """The latest stored table (``Table.as_dict`` shape) for an
        experiment, plus its code version, or None."""
        sql = ("SELECT m.document, m.code_version, e.scale "
               "FROM experiments e "
               "JOIN manifests m ON e.manifest_id = m.id "
               "WHERE e.experiment = ?")
        params: list[object] = [experiment]
        if scale is not None:
            sql += " AND e.scale = ?"
            params.append(scale)
        sql += " ORDER BY m.id DESC LIMIT 1"
        row = self._conn.execute(sql, params).fetchone()
        if row is None:
            return None
        return {"table": json.loads(row[0]).get("table"),
                "code_version": row[1], "scale": row[2]}

    def experiment_history(self, experiment: str, row_label: str,
                           column_name: str,
                           scale: str | None = None) -> list[dict]:
        """One table cell over time (oldest -> newest): e.g. F2's
        ``("MEAN (all)", "tech/2P")`` headline ratio per code
        version."""
        sql = ("SELECT m.digest AS manifest_digest, m.ingested_at, "
               "e.code_version, e.scale, c.number, c.text "
               "FROM experiment_cells c "
               "JOIN experiments e ON c.experiment_id = e.id "
               "JOIN manifests m ON e.manifest_id = m.id "
               "WHERE e.experiment = ? AND c.row_label = ? "
               "AND c.column_name = ?")
        params: list[object] = [experiment, row_label, column_name]
        if scale is not None:
            sql += " AND e.scale = ?"
            params.append(scale)
        sql += " ORDER BY m.id"
        return [dict(row) for row in self._conn.execute(sql, params)]

    def pareto(self, experiment: str, x_column: str, y_column: str,
               minimize_x: bool = True, maximize_y: bool = True,
               scale: str | None = None) -> list[dict]:
        """The Pareto-efficient rows of an experiment's latest table
        over two numeric columns (the design-space-autopilot slice:
        e.g. port cost vs IPC).  Rows missing either value are
        skipped."""
        latest = self.experiment_latest(experiment, scale)
        if latest is None or not latest.get("table"):
            return []
        table = latest["table"]
        columns = table.get("columns") or []
        try:
            x_index = columns.index(x_column)
            y_index = columns.index(y_column)
        except ValueError:
            return []
        points = []
        for row in table.get("rows") or []:
            if len(row) <= max(x_index, y_index):
                continue
            x, y = row[x_index], row[y_index]
            if not all(isinstance(v, (int, float))
                       and not isinstance(v, bool) for v in (x, y)):
                continue
            points.append({"row": str(row[0]), "x": float(x),
                           "y": float(y)})
        sign_x = 1.0 if minimize_x else -1.0
        sign_y = -1.0 if maximize_y else 1.0

        def dominates(p: dict, q: dict) -> bool:
            return (sign_x * p["x"] <= sign_x * q["x"]
                    and sign_y * p["y"] <= sign_y * q["y"]
                    and (p["x"] != q["x"] or p["y"] != q["y"]))

        frontier = [p for p in points
                    if not any(dominates(q, p) for q in points)]
        frontier.sort(key=lambda p: sign_x * p["x"])
        return frontier

    # -- JSONL export / import -----------------------------------------
    def export_jsonl(self, path: str | os.PathLike) -> int:
        """Write every manifest (plus ingest metadata) as one JSON
        object per line; returns the line count."""
        count = 0
        with open(path, "w", encoding="utf-8") as handle:
            for row in self._conn.execute(
                    "SELECT digest, kind, schema, code_version, "
                    "ingested_at, source, document FROM manifests "
                    "ORDER BY id"):
                handle.write(json.dumps({
                    "digest": row["digest"],
                    "kind": row["kind"],
                    "schema": row["schema"],
                    "code_version": row["code_version"],
                    "ingested_at": row["ingested_at"],
                    "source": row["source"],
                    "document": json.loads(row["document"]),
                }, sort_keys=True) + "\n")
                count += 1
        return count

    def import_jsonl(self, path: str | os.PathLike) -> tuple[int, int]:
        """Ingest an exported JSONL file; returns ``(added,
        skipped)``.  Idempotent like :meth:`ingest`."""
        added = skipped = 0
        with open(path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise LedgerError(
                        f"{path}:{number}: not JSON ({exc})")
                if not isinstance(entry, dict) \
                        or "document" not in entry:
                    raise LedgerError(
                        f"{path}:{number}: expected an export entry "
                        f"with a 'document' key")
                if self.ingest(entry["document"],
                               source=entry.get("source"),
                               code_version=entry.get("code_version"),
                               ingested_at=entry.get("ingested_at")):
                    added += 1
                else:
                    skipped += 1
        return added, skipped


def resolve_ledger_path(flag: str | None) -> str | None:
    """The active ledger database: an explicit ``--ledger PATH`` flag
    wins, else the ``REPRO_LEDGER`` environment variable, else None
    (the zero-overhead default: no ledger, nothing happens)."""
    if flag:
        return flag
    env = os.environ.get(LEDGER_ENV, "").strip()
    return env or None
