"""Simulator self-profiling: where the *host's* time goes.

The run reports already record end-to-end host throughput
(``host.sim_ips``); this module breaks that wall-clock down by
simulator component, per sampling interval, so the performance
trajectory of the reproduction itself — not just of the simulated
machine — gets measured and archived (``BENCH_*.json`` artefacts).

When a :class:`SelfProfiler` is attached, the timing core switches to
an instrumented run loop that brackets each pipeline stage group with
``perf_counter`` and charges the elapsed time to one component:

==============  ====================================================
``events``      FU/AGU completion events, cycle bookkeeping
``commit``      in-order retirement (incl. store write-buffer entry)
``lsq``         LSQ port scheduling and the D-cache port accesses
``writebuffer`` write-buffer drain into idle port cycles
``issue``       wakeup/select and FU allocation
``dispatch``    rename, dependence wiring, ROB/IQ/LSQ allocation
``fetch``       I-cache, branch prediction, redirect tracking
==============  ====================================================

``other`` (reported, not a component) is the loop's untimed residue:
``wall_time - sum(components)``.  Profiling is opt-in; the default run
loop is untouched and pays nothing.

The profiler is also the pipeline's **span instrumentation layer**:
hand it a :class:`~repro.obs.spans.SpanRecorder` and every completed
sampling interval is emitted as one ``pipeline.chunk`` span whose
children are the per-component slices — the same attribution the
report carries, on a Perfetto timeline (see ``repro simulate
--spans``).  The report output is unchanged either way.
"""

from __future__ import annotations

import json

from .metrics import DEFAULT_METRICS_INTERVAL
from .spans import SpanRecorder

SELFPROFILE_SCHEMA = "repro.selfprofile/1"

#: Stage-group components, in pipeline (reverse-stage) order.
COMPONENTS = ("events", "commit", "lsq", "writebuffer", "issue",
              "dispatch", "fetch")


class SelfProfiler:
    """Per-interval host-seconds accounting, one bucket list per
    component."""

    def __init__(self, interval: int = DEFAULT_METRICS_INTERVAL,
                 spans: SpanRecorder | None = None) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.seconds: dict[str, list[float]] = {name: []
                                                for name in COMPONENTS}
        self.cycles = 0
        self.wall_time_s = 0.0
        self.spans = spans
        self._span_bucket: int | None = None
        self._span_start_us = 0
        self._span_first_cycle = 0

    # ------------------------------------------------------------------
    def add_cycle(self, cycle: int, samples: tuple[float, ...]) -> None:
        """Charge one cycle's per-component stage timings (seconds,
        ordered as :data:`COMPONENTS`)."""
        bucket = cycle // self.interval
        if self.spans is not None and bucket != self._span_bucket:
            if self._span_bucket is not None:
                self._flush_span_chunk()
            self._span_bucket = bucket
            self._span_first_cycle = cycle
            self._span_start_us = self.spans.now_us()
        for name, elapsed in zip(COMPONENTS, samples):
            series = self.seconds[name]
            while len(series) <= bucket:
                series.append(0.0)
            series[bucket] += elapsed
        self.cycles += 1

    def _flush_span_chunk(self) -> None:
        """Emit the finished interval as a ``pipeline.chunk`` span with
        one child slice per component, laid out back-to-back from the
        chunk's host start time (component durations come from the
        stage brackets, so the slices always fit inside the chunk)."""
        recorder = self.spans
        bucket = self._span_bucket
        start = self._span_start_us
        recorder.add("B", "pipeline.chunk", "pipeline", start,
                     {"first_cycle": self._span_first_cycle,
                      "interval": self.interval})
        cursor = start
        for name in COMPONENTS:
            series = self.seconds[name]
            duration = int(series[bucket] * 1e6) \
                if bucket < len(series) else 0
            recorder.add("B", name, "pipeline", cursor)
            recorder.add("E", name, "pipeline", cursor + duration)
            cursor += duration
        recorder.add("E", "pipeline.chunk", "pipeline",
                     max(cursor, recorder.now_us()))

    def finish(self) -> None:
        """Flush the trailing (possibly partial) span chunk; called by
        the timing core when the run loop drains.  A profiler without a
        recorder ignores this."""
        if self.spans is not None and self._span_bucket is not None:
            self._flush_span_chunk()
            self._span_bucket = None

    def component_total(self, name: str) -> float:
        return sum(self.seconds[name])

    @property
    def accounted_s(self) -> float:
        return sum(self.component_total(name) for name in COMPONENTS)

    @property
    def other_s(self) -> float:
        """Wall time the stage brackets did not capture (loop overhead,
        timer cost, result assembly)."""
        return max(0.0, self.wall_time_s - self.accounted_s)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        n_buckets = max((len(series) for series in self.seconds.values()),
                        default=0)
        for series in self.seconds.values():
            while len(series) < n_buckets:
                series.append(0.0)
        return {
            "schema": SELFPROFILE_SCHEMA,
            "schema_version": 1,
            "interval": self.interval,
            "cycles": self.cycles,
            "n_intervals": n_buckets,
            "components": list(COMPONENTS),
            "seconds": {name: list(series)
                        for name, series in self.seconds.items()},
            "totals": {name: self.component_total(name)
                       for name in COMPONENTS},
            "wall_time_s": self.wall_time_s,
            "accounted_s": self.accounted_s,
            "other_s": self.other_s,
            "cycles_per_second": (self.cycles / self.wall_time_s
                                  if self.wall_time_s else None),
        }

    def write(self, path: str) -> None:
        """Persist the profile as a ``BENCH_*.json`` artefact."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2)
            handle.write("\n")

    def summary(self) -> str:
        """One human line: the top components by share."""
        total = self.accounted_s
        if not total:
            return "no host time recorded"
        ranked = sorted(((self.component_total(name), name)
                         for name in COMPONENTS), reverse=True)
        parts = [f"{name} {seconds / total:.0%}"
                 for seconds, name in ranked[:3] if seconds > 0]
        return f"host time: {', '.join(parts)} of {total:.3f}s staged"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SelfProfiler(interval={self.interval}, "
                f"cycles={self.cycles}, wall={self.wall_time_s:.3f}s)")
