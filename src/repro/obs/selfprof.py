"""Simulator self-profiling: where the *host's* time goes.

The run reports already record end-to-end host throughput
(``host.sim_ips``); this module breaks that wall-clock down by
simulator component, per sampling interval, so the performance
trajectory of the reproduction itself — not just of the simulated
machine — gets measured and archived (``BENCH_*.json`` artefacts).

When a :class:`SelfProfiler` is attached, the timing core switches to
an instrumented run loop that brackets each pipeline stage group with
``perf_counter`` and charges the elapsed time to one component:

==============  ====================================================
``events``      FU/AGU completion events, cycle bookkeeping
``commit``      in-order retirement (incl. store write-buffer entry)
``lsq``         LSQ port scheduling and the D-cache port accesses
``writebuffer`` write-buffer drain into idle port cycles
``issue``       wakeup/select and FU allocation
``dispatch``    rename, dependence wiring, ROB/IQ/LSQ allocation
``fetch``       I-cache, branch prediction, redirect tracking
==============  ====================================================

``other`` (reported, not a component) is the loop's untimed residue:
``wall_time - sum(components)``.  Profiling is opt-in; the default run
loop is untouched and pays nothing.
"""

from __future__ import annotations

import json

from .metrics import DEFAULT_METRICS_INTERVAL

SELFPROFILE_SCHEMA = "repro.selfprofile/1"

#: Stage-group components, in pipeline (reverse-stage) order.
COMPONENTS = ("events", "commit", "lsq", "writebuffer", "issue",
              "dispatch", "fetch")


class SelfProfiler:
    """Per-interval host-seconds accounting, one bucket list per
    component."""

    def __init__(self, interval: int = DEFAULT_METRICS_INTERVAL) -> None:
        if interval < 1:
            raise ValueError("interval must be positive")
        self.interval = interval
        self.seconds: dict[str, list[float]] = {name: []
                                                for name in COMPONENTS}
        self.cycles = 0
        self.wall_time_s = 0.0

    # ------------------------------------------------------------------
    def add_cycle(self, cycle: int, samples: tuple[float, ...]) -> None:
        """Charge one cycle's per-component stage timings (seconds,
        ordered as :data:`COMPONENTS`)."""
        bucket = cycle // self.interval
        for name, elapsed in zip(COMPONENTS, samples):
            series = self.seconds[name]
            while len(series) <= bucket:
                series.append(0.0)
            series[bucket] += elapsed
        self.cycles += 1

    def component_total(self, name: str) -> float:
        return sum(self.seconds[name])

    @property
    def accounted_s(self) -> float:
        return sum(self.component_total(name) for name in COMPONENTS)

    @property
    def other_s(self) -> float:
        """Wall time the stage brackets did not capture (loop overhead,
        timer cost, result assembly)."""
        return max(0.0, self.wall_time_s - self.accounted_s)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        n_buckets = max((len(series) for series in self.seconds.values()),
                        default=0)
        for series in self.seconds.values():
            while len(series) < n_buckets:
                series.append(0.0)
        return {
            "schema": SELFPROFILE_SCHEMA,
            "schema_version": 1,
            "interval": self.interval,
            "cycles": self.cycles,
            "n_intervals": n_buckets,
            "components": list(COMPONENTS),
            "seconds": {name: list(series)
                        for name, series in self.seconds.items()},
            "totals": {name: self.component_total(name)
                       for name in COMPONENTS},
            "wall_time_s": self.wall_time_s,
            "accounted_s": self.accounted_s,
            "other_s": self.other_s,
            "cycles_per_second": (self.cycles / self.wall_time_s
                                  if self.wall_time_s else None),
        }

    def write(self, path: str) -> None:
        """Persist the profile as a ``BENCH_*.json`` artefact."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2)
            handle.write("\n")

    def summary(self) -> str:
        """One human line: the top components by share."""
        total = self.accounted_s
        if not total:
            return "no host time recorded"
        ranked = sorted(((self.component_total(name), name)
                         for name in COMPONENTS), reverse=True)
        parts = [f"{name} {seconds / total:.0%}"
                 for seconds, name in ranked[:3] if seconds > 0]
        return f"host time: {', '.join(parts)} of {total:.3f}s staged"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SelfProfiler(interval={self.interval}, "
                f"cycles={self.cycles}, wall={self.wall_time_s:.3f}s)")
