"""Machine-readable run reports (the ``--json`` manifests).

A **run report** describes one timing simulation: configuration,
workload identity (including the generator seed when one applies), the
full counter set, the stall ledger, the load-latency distribution, and
host-side throughput (wall time and simulated instructions per second).
An **experiment manifest** wraps one regenerated table/figure together
with the run reports it was built from, so benchmark harnesses can
persist performance trajectories (``BENCH_*.json`` style) without
scraping rendered tables.

Both documents carry ``schema`` / ``schema_version`` and are validated
by hand-rolled checkers (no external JSON-schema dependency) so CI can
reject drift.  Bump :data:`SCHEMA_VERSION` on any incompatible change
and describe it in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .codeversion import code_version

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.config import MachineConfig
    from ..core.pipeline import CoreResult
    from ..stats.report import Table

#: Version shared by run reports and experiment manifests.
SCHEMA_VERSION = 1

RUN_SCHEMA = f"repro.run/{SCHEMA_VERSION}"
EXPERIMENT_SCHEMA = f"repro.experiment/{SCHEMA_VERSION}"


def _dcache_dict(machine: "MachineConfig") -> dict[str, object]:
    dcache = machine.mem.dcache
    return {
        "ports": dcache.ports,
        "port_width": dcache.port_width,
        "banks": dcache.banks,
        "line_buffer_entries": dcache.line_buffer_entries,
        "combine_loads": dcache.combine_loads,
        "combine_stores": dcache.combine_stores,
        "write_buffer_depth": dcache.write_buffer_depth,
        "mshrs": dcache.mshrs,
    }


def build_run_report(result: "CoreResult", machine: "MachineConfig", *,
                     workload: str | None = None,
                     scale: str | None = None,
                     seed: int | None = None,
                     trace_file: str | None = None,
                     wall_time: float | None = None,
                     violations: list | None = None) -> dict[str, object]:
    """Assemble the versioned JSON document for one simulation.

    ``workload`` names a generated workload; ``trace_file`` records the
    path of a pre-saved trace.  The two are mutually exclusive — a
    simulation driven from a file has ``workload: null``.
    ``violations`` carries the findings of an attached validator (see
    :mod:`repro.validate`); ``None`` means validation did not run.
    """
    if workload is not None and trace_file is not None:
        raise ValueError("a run report names a workload or a trace_file, "
                         "not both")
    sim_ips = (result.instructions / wall_time
               if wall_time else None)
    load_latency = None
    if result.load_latency is not None and result.load_latency.total:
        hist = result.load_latency
        load_latency = {
            "mean": hist.mean,
            "p50": hist.percentile(0.5),
            "p90": hist.percentile(0.9),
            "p99": hist.percentile(0.99),
            "counts": {str(value): count
                       for value, count in hist.as_dict().items()},
        }
    return {
        "schema": RUN_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "code_version": code_version(),
        "config": {
            "name": machine.name,
            "issue_width": machine.core.issue_width,
            "dcache": _dcache_dict(machine),
        },
        "workload": workload,
        "scale": scale,
        "seed": seed,
        "trace_file": trace_file,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": result.ipc,
        "counters": result.stats.as_dict(),
        "fastpath": {
            "used": result.used_fastpath,
            "rejected_reason": result.fastpath_reason,
        },
        "stalls": result.ledger.as_dict() if result.ledger is not None
        else None,
        "load_latency": load_latency,
        "metrics": result.metrics.as_dict()
        if result.metrics is not None else None,
        "digests": result.digests,
        "validation": ({"violations": [v.as_dict() for v in violations]}
                       if violations is not None else None),
        "host": {
            "wall_time_s": wall_time,
            "sim_ips": sim_ips,
        },
    }


def build_experiment_manifest(experiment: str, scale: str, table: "Table",
                              runs: list[dict[str, object]],
                              wall_time: float | None = None,
                              jobs: int | None = None,
                              trace_cache: dict[str, object] | None = None,
                              engine_summary: dict[str, object] | None = None,
                              ) -> dict[str, object]:
    """Wrap one experiment's table and its per-run reports.

    ``jobs`` records the worker count the grid ran with and
    ``trace_cache`` the cache directory and hit/build counters (see
    :func:`repro.workloads.trace_cache_stats`), so a manifest shows
    whether a regeneration was parallel and how much functional
    simulation it actually performed.  ``engine_summary`` embeds the
    engine's post-run fleet summary (``Engine.last_summary``:
    per-worker utilisation, queue wait, slowest jobs, failures).  The
    whole ``engine`` block is host-time content, ignored by ``repro
    compare`` by default.
    """
    engine: dict[str, object] = {"jobs": jobs, "trace_cache": trace_cache}
    if engine_summary is not None:
        engine["summary"] = engine_summary
    return {
        "schema": EXPERIMENT_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "code_version": code_version(),
        "experiment": experiment,
        "scale": scale,
        "table": table.as_dict(),
        "runs": runs,
        "engine": engine,
        "host": {"wall_time_s": wall_time},
    }


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class SchemaError(ValueError):
    """A manifest failed validation; ``problems`` lists every issue."""

    def __init__(self, problems: list[str]) -> None:
        super().__init__("; ".join(problems))
        self.problems = problems


def _check_code_version(document: dict, problems: list[str],
                        context: str) -> None:
    """``code_version`` is optional (pre-stamp manifests lack it) but
    must be a non-empty string when present."""
    if "code_version" not in document:
        return
    value = document["code_version"]
    if not isinstance(value, str) or not value:
        problems.append(f"{context}: code_version must be a non-empty "
                        f"string")


def _require(document: dict, spec: dict[str, type | tuple],
             problems: list[str], context: str) -> None:
    for key, expected in spec.items():
        if key not in document:
            problems.append(f"{context}: missing key {key!r}")
            continue
        value = document[key]
        if not isinstance(value, expected):
            problems.append(
                f"{context}: {key!r} should be "
                f"{getattr(expected, '__name__', expected)}, "
                f"got {type(value).__name__}")


def validate_run_report(report: dict) -> None:
    """Raise :class:`SchemaError` unless *report* is a valid run report."""
    problems: list[str] = []
    if not isinstance(report, dict):
        raise SchemaError(["run report must be an object"])
    _require(report, {
        "schema": str,
        "schema_version": int,
        "config": dict,
        "cycles": int,
        "instructions": int,
        "ipc": (int, float),
        "counters": dict,
        "host": dict,
    }, problems, "run")
    if report.get("schema") not in (None, RUN_SCHEMA):
        problems.append(f"run: schema is {report['schema']!r}, "
                        f"expected {RUN_SCHEMA!r}")
    _check_code_version(report, problems, "run")
    if "seed" in report and report["seed"] is not None and \
            not isinstance(report["seed"], int):
        problems.append("run: seed must be an integer or null")
    for key in ("workload", "scale", "trace_file"):
        if key in report and report[key] is not None and \
                not isinstance(report[key], str):
            problems.append(f"run: {key} must be a string or null")
    if isinstance(report.get("workload"), str) and \
            isinstance(report.get("trace_file"), str):
        problems.append("run: workload and trace_file are mutually "
                        "exclusive")
    config = report.get("config")
    if isinstance(config, dict):
        _require(config, {"name": str, "issue_width": int, "dcache": dict},
                 problems, "run.config")
    fastpath = report.get("fastpath")
    if fastpath is not None:  # optional: pre-PR8 reports lack it
        if not isinstance(fastpath, dict):
            problems.append("run: fastpath must be an object or null")
        else:
            _require(fastpath, {"used": bool}, problems, "run.fastpath")
            reason = fastpath.get("rejected_reason")
            if reason is not None and not isinstance(reason, str):
                problems.append("run.fastpath: rejected_reason must be a "
                                "string or null")
            if fastpath.get("used") is True and isinstance(reason, str):
                problems.append("run.fastpath: used=true cannot carry a "
                                "rejected_reason")
    stalls = report.get("stalls")
    if stalls is not None:
        if not isinstance(stalls, dict):
            problems.append("run: stalls must be an object or null")
        else:
            _require(stalls, {
                "width": int,
                "cycles": int,
                "committed": int,
                "total_slots": int,
                "total_lost": int,
                "lost": dict,
                "timeline": dict,
            }, problems, "run.stalls")
            if not problems and stalls["committed"] + stalls["total_lost"] \
                    != stalls["total_slots"]:
                problems.append("run.stalls: ledger is not conservative")
    metrics = report.get("metrics")
    if metrics is not None:
        if not isinstance(metrics, dict):
            problems.append("run: metrics must be an object or null")
        else:
            _require(metrics, {
                "interval": int,
                "ports": int,
                "n_intervals": int,
                "start_cycle": list,
                "cycles": list,
                "committed": list,
                "ipc": list,
                "port_util": list,
                "counters": dict,
                "occupancy_mean": dict,
                "occupancy": dict,
            }, problems, "run.metrics")
            n = metrics.get("n_intervals")
            if isinstance(n, int):
                for key in ("start_cycle", "cycles", "committed", "ipc",
                            "port_util"):
                    series = metrics.get(key)
                    if isinstance(series, list) and len(series) != n:
                        problems.append(
                            f"run.metrics: {key} has {len(series)} entries "
                            f"for {n} intervals")
            if not problems and isinstance(metrics.get("cycles"), list):
                if sum(metrics["cycles"]) != report.get("cycles"):
                    problems.append("run.metrics: interval cycles do not "
                                    "sum to run cycles")
                if sum(metrics["committed"]) != report.get("instructions"):
                    problems.append("run.metrics: interval committed does "
                                    "not sum to run instructions")
    digests = report.get("digests")
    if digests is not None:
        if not isinstance(digests, dict):
            problems.append("run: digests must be an object or null")
        else:
            _require(digests, {"registers": str, "memory": str},
                     problems, "run.digests")
    validation = report.get("validation")
    if validation is not None:
        if not isinstance(validation, dict):
            problems.append("run: validation must be an object or null")
        elif not isinstance(validation.get("violations"), list):
            problems.append("run.validation: missing violations list")
        else:
            for index, entry in enumerate(validation["violations"]):
                if not isinstance(entry, dict):
                    problems.append(f"run.validation.violations[{index}]: "
                                    f"must be an object")
                    continue
                _require(entry, {"cycle": int, "check": str,
                                 "detail": str}, problems,
                         f"run.validation.violations[{index}]")
    host = report.get("host")
    if isinstance(host, dict) and "wall_time_s" not in host:
        problems.append("run.host: missing key 'wall_time_s'")
    if problems:
        raise SchemaError(problems)


def validate_experiment_manifest(manifest: dict) -> None:
    """Raise :class:`SchemaError` unless *manifest* is valid; every
    embedded run report is validated too."""
    problems: list[str] = []
    if not isinstance(manifest, dict):
        raise SchemaError(["experiment manifest must be an object"])
    _require(manifest, {
        "schema": str,
        "schema_version": int,
        "experiment": str,
        "scale": str,
        "table": dict,
        "runs": list,
        "host": dict,
    }, problems, "experiment")
    if manifest.get("schema") not in (None, EXPERIMENT_SCHEMA):
        problems.append(f"experiment: schema is {manifest['schema']!r}, "
                        f"expected {EXPERIMENT_SCHEMA!r}")
    _check_code_version(manifest, problems, "experiment")
    table = manifest.get("table")
    if isinstance(table, dict):
        _require(table, {"title": str, "columns": list, "rows": list},
                 problems, "experiment.table")
    engine = manifest.get("engine")
    if engine is not None:
        if not isinstance(engine, dict):
            problems.append("experiment: engine must be an object or null")
        else:
            jobs = engine.get("jobs")
            if jobs is not None and (not isinstance(jobs, int) or jobs < 1):
                problems.append("experiment.engine: jobs must be a "
                                "positive integer or null")
            cache = engine.get("trace_cache")
            if cache is not None and not isinstance(cache, dict):
                problems.append("experiment.engine: trace_cache must be "
                                "an object or null")
            summary = engine.get("summary")
            if summary is not None:
                if not isinstance(summary, dict):
                    problems.append("experiment.engine: summary must be "
                                    "an object or null")
                else:
                    _require(summary, {
                        "elapsed_s": (int, float),
                        "jobs": dict,
                        "workers": list,
                        "slowest": list,
                        "failed": list,
                    }, problems, "experiment.engine.summary")
                    for index, worker in enumerate(
                            summary.get("workers") or ()):
                        if not isinstance(worker, dict):
                            problems.append(
                                f"experiment.engine.summary.workers"
                                f"[{index}]: must be an object")
                            continue
                        _require(worker, {"pid": int, "jobs": int,
                                          "busy_s": (int, float)},
                                 problems,
                                 f"experiment.engine.summary."
                                 f"workers[{index}]")
    for index, run in enumerate(manifest.get("runs") or ()):
        try:
            validate_run_report(run)
        except SchemaError as exc:
            problems.extend(f"runs[{index}].{p}" for p in exc.problems)
    if problems:
        raise SchemaError(problems)
