"""Pipeline-trace export in the Konata/Kanata text format.

`Konata <https://github.com/shioyadan/Konata>`_ is the de-facto
pipeline-trace viewer for academic simulators (gem5's O3 pipeline
viewer speaks the same ``Kanata`` log dialect).  Exporting our
per-instruction stage timings lets port-arbitration behaviour be
*seen*: a load that lost cache-port arbitration shows up as a stretched
X (execute/memory) segment, a store stuck behind a full write buffer as
a stretched C (completed, waiting to commit) segment.

The timing core records one :class:`PipeRecord` per committed
instruction when a :class:`PipeTrace` collector is attached (off by
default — the hot loop pays one ``is None`` check).  :meth:`write`
renders the Kanata text; :func:`parse_konata` is the matching reader
used by the round-trip tests and by anyone post-processing traces.

Stage lanes (lane 0, one row per instruction):

====  =======================================================
``F``  fetch → dispatch (fetch queue + decode)
``D``  dispatch → issue (waiting in the issue window)
``X``  issue → complete (execute, AGU, cache access, fills)
``C``  complete → commit (waiting for in-order retirement)
====  =======================================================

A stage whose window is empty (e.g. an instruction that completes and
commits in the same cycle) is omitted; every record keeps at least its
``F`` stage.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.uop import Uop

#: File header: format name, TAB, format version.
KONATA_HEADER = "Kanata\t0004"

#: (attribute, stage label) pairs in pipeline order.
_STAGES = ("F", "D", "X", "C")


@dataclass(frozen=True)
class PipeRecord:
    """Stage timings of one committed instruction."""

    seq: int
    pc: int
    label: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    commit: int

    def stage_starts(self) -> list[tuple[str, int]]:
        """(stage, start-cycle) pairs, empty stages dropped, starts
        forced monotonic (a store can 'complete' at address-resolve
        time, before it issues in a wide machine)."""
        raw = (("F", self.fetch), ("D", self.dispatch),
               ("X", self.issue), ("C", self.complete))
        starts: list[tuple[str, int]] = []
        floor = self.fetch
        for stage, cycle in raw:
            cycle = max(cycle, floor)
            if starts and cycle <= starts[-1][1] and stage != "F":
                continue  # empty window: stage skipped
            starts.append((stage, cycle))
            floor = cycle
        return starts


class PipeTrace:
    """Collects committed-instruction stage timings for export."""

    def __init__(self) -> None:
        self.records: list[PipeRecord] = []

    def record_commit(self, uop: "Uop", cycle: int) -> None:
        """Called by the timing core as *uop* retires at *cycle*."""
        record = uop.record
        instr = record.instr
        text = str(instr) if instr is not None else \
            record.opclass.name.lower()
        self.records.append(PipeRecord(
            seq=uop.seq,
            pc=record.pc,
            label=text,
            fetch=uop.fetch_cycle,
            dispatch=uop.dispatch_cycle,
            issue=uop.issue_cycle,
            complete=uop.complete_cycle,
            commit=cycle,
        ))

    # ------------------------------------------------------------------
    def write(self, destination: str | io.TextIOBase) -> int:
        """Render the Kanata text; returns the record count."""
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                return self._render(handle)
        return self._render(destination)

    def _render(self, out: io.TextIOBase) -> int:
        out.write(KONATA_HEADER + "\n")
        out.write("C=\t0\n")
        for record in self.records:
            uid = record.seq
            out.write(f"C=\t{record.fetch}\n")
            out.write(f"I\t{uid}\t{record.seq}\t0\n")
            out.write(f"L\t{uid}\t0\t{record.pc:#x}: {record.label}\n")
            last_stage = "F"
            for stage, start in record.stage_starts():
                if stage != "F":
                    out.write(f"C=\t{start}\n")
                out.write(f"S\t{uid}\t0\t{stage}\n")
                last_stage = stage
            end = max(record.commit, record.fetch)
            out.write(f"C=\t{end}\n")
            out.write(f"E\t{uid}\t0\t{last_stage}\n")
            out.write(f"R\t{uid}\t{record.seq}\t0\n")
        return len(self.records)


@dataclass
class ParsedOp:
    """One instruction reconstructed from a Kanata log."""

    uid: int
    sim_id: int
    label: str
    stages: dict[str, int]
    retired_cycle: int | None = None
    flushed: bool = False

    @property
    def pc(self) -> int:
        """Recovered from the ``0x...:`` label prefix (our writer's
        convention)."""
        prefix = self.label.split(":", 1)[0]
        return int(prefix, 16)


def parse_konata(source: str | io.TextIOBase) -> list[ParsedOp]:
    """Parse a Kanata log (at least the subset our writer emits).

    Raises :class:`ValueError` on a missing/wrong header or malformed
    commands, so the round-trip test doubles as a format check.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            return parse_konata(handle)
    lines = source.read().splitlines()
    if not lines or lines[0] != KONATA_HEADER:
        raise ValueError("not a Kanata log: missing 'Kanata\\t0004' header")
    ops: dict[int, ParsedOp] = {}
    order: list[int] = []
    cycle = 0
    for number, line in enumerate(lines[1:], start=2):
        if not line:
            continue
        parts = line.split("\t")
        command = parts[0]
        try:
            if command == "C=":
                cycle = int(parts[1])
            elif command == "C":
                cycle += int(parts[1])
            elif command == "I":
                uid = int(parts[1])
                ops[uid] = ParsedOp(uid, int(parts[2]), "", {})
                order.append(uid)
            elif command == "L":
                ops[int(parts[1])].label += parts[3]
            elif command == "S":
                ops[int(parts[1])].stages[parts[3]] = cycle
            elif command == "E":
                pass  # stage end: implied by the next S or by R
            elif command == "R":
                op = ops[int(parts[1])]
                op.retired_cycle = cycle
                op.flushed = parts[3] == "1"
            else:
                raise ValueError(f"unknown command {command!r}")
        except (IndexError, KeyError, ValueError) as exc:
            raise ValueError(
                f"malformed Kanata line {number}: {line!r} ({exc})"
            ) from exc
    return [ops[uid] for uid in order]
