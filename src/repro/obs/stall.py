"""The stall-attribution model: where the lost issue slots went.

The machine would retire ``width`` uops every cycle if nothing ever
stalled; reality commits fewer.  The timing core calls
:meth:`StallLedger.account` exactly once per cycle with the number of
uops it committed and (lazily) the classified bottleneck, and the
ledger charges the cycle's lost slots — ``width - commits`` — to that
cause.  By construction the ledger is *conservative*::

    sum(lost slots over all causes) + committed == cycles * width

which the test suite asserts for every workload/configuration pair of
the headline experiment.

Attribution is a model, not a measurement: a cycle can be short for
several reasons at once, and the core charges the whole shortfall to
the reason blocking the *commit head* (or, with an empty window, to the
frontend).  That mirrors how architects read such breakdowns — the
oldest instruction is the one whose stall cannot be hidden by
out-of-order execution.  Capacity back-pressure (ROB/IQ/LQ/SQ full at
dispatch) is a symptom of the head's stall, so it is tallied separately
in :attr:`StallLedger.capacity` rather than charged cycles.

Besides the per-cause totals, the ledger keeps a per-cause **interval
time series**: fixed-size cycle buckets backed by
:class:`repro.stats.histogram.Histogram`, so phase behaviour (warm-up,
working-set transitions, drain) is visible without a full event trace.
"""

from __future__ import annotations

import enum

from ..stats.histogram import Histogram

#: Default time-series bucket width, in cycles.
DEFAULT_INTERVAL = 1024


class StallCause(str, enum.Enum):
    """Why the commit head (or the frontend) could not make progress."""

    #: Frontend starvation: I-cache miss, fetch-queue fill, decode delay.
    FETCH = "fetch"
    #: Mispredicted branch resolution / redirect recovery.
    BRANCH = "branch"
    #: Pipeline flush for a serialising instruction (trap, syscall, eret).
    SERIALIZE = "serialize"
    #: Head waits on operands or functional-unit latency (incl. AGU).
    EXEC = "exec"
    #: Head load or store lost cache-port arbitration (no free port,
    #: bank conflict, or a port spent on an MSHR-full retry).
    DCACHE_PORT = "dcache_port"
    #: Head load's data came through a real port access that *hit* in
    #: the L1 — latency a line-buffer hit would have hidden.
    LINE_BUFFER_MISS = "line_buffer_miss"
    #: Store at commit found the write buffer full (or, with depth 0,
    #: loads waiting behind the resulting commit stall).
    WRITE_BUFFER_FULL = "write_buffer_full"
    #: Memory-ordering constraints: unknown older store address,
    #: store-to-load forwarding wait, or a partial write-buffer overlap.
    MEM_ORDER = "mem_order"
    #: Head load waits on an L1 miss being filled from the next level.
    NEXT_LEVEL = "next_level"
    #: End of trace: the window drains with nothing left to fetch.
    DRAIN = "drain"

    def __str__(self) -> str:  # so f"{cause}" renders "fetch", not the repr
        return self.value


#: Presentation order for reports.
CAUSE_ORDER = tuple(StallCause)


class StallLedger:
    """Per-cause lost-slot totals plus bucketed time series."""

    def __init__(self, width: int, interval: int = DEFAULT_INTERVAL) -> None:
        if width < 1:
            raise ValueError("width must be positive")
        if interval < 1:
            raise ValueError("interval must be positive")
        self.width = width
        self.interval = interval
        self.cycles = 0
        self.committed = 0
        self.lost: dict[StallCause, int] = {c: 0 for c in CAUSE_ORDER}
        self.series: dict[StallCause, Histogram] = {}
        #: Dispatch back-pressure events (not charged cycles; see module
        #: docstring): structure name -> times dispatch broke on it.
        self.capacity: dict[str, int] = {}

    # ------------------------------------------------------------------
    def account(self, cycle: int, commits: int, cause: StallCause) -> None:
        """Record one cycle: *commits* retired, shortfall charged to
        *cause* (ignored when the cycle was full)."""
        self.cycles += 1
        self.committed += commits
        lost = self.width - commits
        if lost <= 0:
            return
        self.lost[cause] += lost
        series = self.series.get(cause)
        if series is None:
            series = self.series[cause] = Histogram(cause.value)
        series.record(cycle // self.interval, lost)

    def note_capacity(self, what: str) -> None:
        """Tally one dispatch break on a full structure (rob/iq/lq/sq)."""
        self.capacity[what] = self.capacity.get(what, 0) + 1

    # ------------------------------------------------------------------
    @property
    def total_lost(self) -> int:
        return sum(self.lost.values())

    @property
    def total_slots(self) -> int:
        return self.cycles * self.width

    def check_conservation(self) -> bool:
        """True iff every issue slot is either committed or attributed."""
        return self.total_lost + self.committed == self.total_slots

    def fraction(self, cause: StallCause) -> float:
        """Share of *all* issue slots lost to *cause*."""
        total = self.total_slots
        return self.lost[cause] / total if total else 0.0

    def timeline(self, cause: StallCause) -> dict[int, int]:
        """Bucket index -> lost slots for *cause* (empty if never hit)."""
        series = self.series.get(cause)
        return series.as_dict() if series is not None else {}

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot (used by the run report)."""
        return {
            "width": self.width,
            "interval": self.interval,
            "cycles": self.cycles,
            "committed": self.committed,
            "total_slots": self.total_slots,
            "total_lost": self.total_lost,
            "lost": {cause.value: self.lost[cause] for cause in CAUSE_ORDER},
            "capacity": dict(sorted(self.capacity.items())),
            "timeline": {cause.value:
                         {str(bucket): slots for bucket, slots
                          in self.timeline(cause).items()}
                         for cause in CAUSE_ORDER if cause in self.series},
        }

    def summary(self, top: int = 5) -> str:
        """One human line: the *top* causes by lost-slot share."""
        total = self.total_slots
        if not total:
            return "no cycles recorded"
        ranked = sorted(((slots, cause) for cause, slots in self.lost.items()
                         if slots), reverse=True)
        parts = [f"{cause.value} {slots / total:.1%}"
                 for slots, cause in ranked[:top]]
        used = self.committed / total
        return f"slots used {used:.1%}; lost to " + \
            (", ".join(parts) if parts else "nothing")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StallLedger(width={self.width}, cycles={self.cycles}, "
                f"committed={self.committed}, lost={self.total_lost})")
