"""Two-pass assembler producing :class:`repro.isa.Program` images.

Pass 1 lays out both sections and assigns every label an absolute byte
address.  Pass 2 evaluates operand expressions against the full symbol
table and emits instructions and data bytes.

Supported directives::

    .text / .data          switch section
    .equ NAME, expr        define a constant (evaluated immediately)
    .align N               pad current section to an N-byte boundary
    .byte/.half/.word/.dword expr, ...
    .double 3.5, ...       IEEE-754 float64 data
    .ascii "s" / .asciiz "s"
    .space N               N zero bytes
    .globl NAME            accepted and ignored

Pseudo-instructions: ``li``, ``la``, ``mv``, ``not``, ``neg``, ``nop``,
``ret``, ``call``, ``b``, ``beqz``/``bnez``/``bltz``/``bgez``/``bgtz``/
``blez``, ``bgt``/``ble``/``bgtu``/``bleu``, ``seqz``/``snez``,
``fmv.d``, ``subi``.

``LUI rd, imm`` places ``imm << 15`` in ``rd`` so that a LUI/ADDI pair
covers 35-bit constants (and all addresses used in this repo).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..isa import (
    INSTRUCTION_BYTES,
    Instruction,
    Opcode,
    Program,
    SysReg,
    parse_register,
)
from ..isa.opcodes import MNEMONICS, OPCODE_INFO, Bank, Format
from .errors import AsmError
from .expressions import UndefinedSymbol, evaluate
from .lexer import Statement, tokenize

#: Number of bits LUI shifts its immediate by.
LUI_SHIFT = 15

_IMM15_MIN, _IMM15_MAX = -(1 << 14), (1 << 14) - 1
_IMM20_MIN, _IMM20_MAX = -(1 << 19), (1 << 19) - 1

_SYSREG_NAMES = {name.lower(): int(reg) for name, reg in
                 SysReg.__members__.items()}

_TEXT, _DATA = "text", "data"


def split_hi_lo(value: int) -> tuple[int, int]:
    """Split *value* into (hi20, lo15) with ``(hi << 15) + lo == value``.

    ``lo`` is the signed low 15 bits; ``hi`` absorbs the carry.  Values
    must fit in 35 bits signed.
    """
    lo = ((value + (1 << 14)) & 0x7FFF) - (1 << 14)
    hi = (value - lo) >> LUI_SHIFT
    if not _IMM20_MIN <= hi <= _IMM20_MAX:
        raise ValueError(f"value {value:#x} does not fit lui/addi")
    return hi, lo


def li_expansion_length(value: int) -> int:
    """Number of instructions ``li`` needs for *value*."""
    if _IMM15_MIN <= value <= _IMM15_MAX:
        return 1
    try:
        split_hi_lo(value)
        return 2
    except ValueError:
        pass
    # General 64-bit: lui+addi for the top, then shift/addi chunks.
    return len(_li64_chunks(value)[1]) * 2 + 2


def _li64_chunks(value: int) -> tuple[int, list[int]]:
    """Decompose a 64-bit value for the general li sequence.

    Returns (top, [chunk...]) such that
    ``((top << 15 + c0) << 15 + c1) ...`` reconstructs the value, where
    each chunk is a signed 15-bit integer and ``top`` fits lui/addi.
    """
    # Interpret as signed 64-bit.
    value &= (1 << 64) - 1
    if value >= 1 << 63:
        value -= 1 << 64
    chunks: list[int] = []
    remaining = value
    while True:
        try:
            split_hi_lo(remaining)
            break
        except ValueError:
            lo = ((remaining + (1 << 14)) & 0x7FFF) - (1 << 14)
            chunks.append(lo)
            remaining = (remaining - lo) >> 15
    chunks.reverse()
    return remaining, chunks


@dataclass
class _PendingInstr:
    """An instruction slot reserved in pass 1, emitted in pass 2."""

    stmt: Statement
    address: int
    count: int  # number of machine instructions this statement expands to


class Assembler:
    """Two-pass assembler for the mini RISC ISA."""

    def __init__(self, text_base: int = 0x1000, data_base: int = 0x100000,
                 source_name: str = "<asm>") -> None:
        if text_base % INSTRUCTION_BYTES:
            raise ValueError("text_base must be 4-byte aligned")
        self.text_base = text_base
        self.data_base = data_base
        self.source_name = source_name
        self.symbols: dict[str, int] = {}

    # ------------------------------------------------------------------
    def assemble(self, source: str, entry: str | int | None = None) -> Program:
        """Assemble *source* and return the program image."""
        statements = tokenize(source, self.source_name)
        pending, data_plan = self._pass1(statements)
        text = self._pass2_text(pending)
        data = self._pass2_data(data_plan)
        entry_addr = self._resolve_entry(entry)
        return Program(text=tuple(text), data=bytes(data),
                       text_base=self.text_base, data_base=self.data_base,
                       entry=entry_addr, symbols=dict(self.symbols))

    def _resolve_entry(self, entry: str | int | None) -> int:
        if isinstance(entry, int):
            return entry
        if isinstance(entry, str):
            try:
                return self.symbols[entry]
            except KeyError:
                raise AsmError(f"entry symbol {entry!r} not defined",
                               source_name=self.source_name) from None
        for candidate in ("_start", "main"):
            if candidate in self.symbols:
                return self.symbols[candidate]
        return self.text_base

    # ------------------------------------------------------------------
    # Pass 1: layout
    # ------------------------------------------------------------------
    def _pass1(self, statements: list[Statement]) -> tuple[
            list[_PendingInstr], list[tuple[Statement, int]]]:
        section = _TEXT
        text_off = 0
        data_off = 0
        pending: list[_PendingInstr] = []
        data_plan: list[tuple[Statement, int]] = []
        for stmt in statements:
            address = (self.text_base + text_off if section == _TEXT
                       else self.data_base + data_off)
            for label in stmt.labels:
                if label in self.symbols:
                    raise self._err(f"duplicate label {label!r}", stmt)
                self.symbols[label] = address
            if stmt.mnemonic is None:
                continue
            if stmt.is_directive:
                section, text_off, data_off = self._pass1_directive(
                    stmt, section, text_off, data_off, data_plan)
                continue
            if section != _TEXT:
                raise self._err("instruction outside .text", stmt)
            count = self._instruction_count(stmt)
            pending.append(_PendingInstr(stmt, self.text_base + text_off,
                                         count))
            text_off += count * INSTRUCTION_BYTES
        return pending, data_plan

    def _pass1_directive(self, stmt: Statement, section: str, text_off: int,
                         data_off: int,
                         data_plan: list[tuple[Statement, int]]
                         ) -> tuple[str, int, int]:
        name = stmt.mnemonic
        if name == ".text":
            return _TEXT, text_off, data_off
        if name == ".data":
            return _DATA, text_off, data_off
        if name == ".globl":
            return section, text_off, data_off
        if name == ".equ":
            if len(stmt.operands) != 2:
                raise self._err(".equ needs NAME, expr", stmt)
            name_op = stmt.operands[0]
            value = self._eval(stmt.operands[1], stmt)
            if name_op in self.symbols:
                raise self._err(f"duplicate symbol {name_op!r}", stmt)
            self.symbols[name_op] = value
            return section, text_off, data_off
        size = self._data_directive_size(stmt, section, text_off, data_off)
        if section == _TEXT:
            if name != ".align":
                raise self._err(f"{name} not allowed in .text", stmt)
            return section, text_off + size, data_off
        data_plan.append((stmt, data_off))
        return section, text_off, data_off + size

    def _data_directive_size(self, stmt: Statement, section: str,
                             text_off: int, data_off: int) -> int:
        name = stmt.mnemonic
        operands = stmt.operands
        unit = {".byte": 1, ".half": 2, ".word": 4, ".dword": 8,
                ".double": 8}.get(name)
        if unit is not None:
            if not operands:
                raise self._err(f"{name} needs at least one value", stmt)
            return unit * len(operands)
        if name == ".space":
            if len(operands) != 1:
                raise self._err(".space needs a size", stmt)
            size = self._eval(operands[0], stmt)
            if size < 0:
                raise self._err(".space size must be non-negative", stmt)
            return size
        if name in (".ascii", ".asciiz"):
            if len(operands) != 1:
                raise self._err(f"{name} needs one string", stmt)
            return len(self._parse_string(operands[0], stmt)) + (
                1 if name == ".asciiz" else 0)
        if name == ".align":
            if len(operands) != 1:
                raise self._err(".align needs a boundary", stmt)
            boundary = self._eval(operands[0], stmt)
            if boundary <= 0 or boundary & (boundary - 1):
                raise self._err(".align boundary must be a power of two",
                                stmt)
            offset = text_off if section == _TEXT else data_off
            pad = (-offset) % boundary
            if section == _TEXT and pad % INSTRUCTION_BYTES:
                raise self._err(".align in .text must be 4-byte aligned",
                                stmt)
            return pad
        raise self._err(f"unknown directive {name}", stmt)

    def _instruction_count(self, stmt: Statement) -> int:
        """How many machine instructions this statement expands into."""
        name = stmt.mnemonic
        assert name is not None
        if name == "li":
            if len(stmt.operands) != 2:
                raise self._err("li needs rd, value", stmt)
            try:
                value = self._eval(stmt.operands[1], stmt)
            except UndefinedSymbol:
                return 2  # forward reference: assume address-sized (lui+addi)
            return li_expansion_length(value)
        if name == "la":
            return 2
        return 1

    # ------------------------------------------------------------------
    # Pass 2: emission
    # ------------------------------------------------------------------
    def _pass2_text(self, pending: list[_PendingInstr]) -> list[Instruction]:
        text: list[Instruction] = []
        for item in pending:
            instrs = self._expand(item.stmt, item.address, item.count)
            if len(instrs) != item.count:
                raise self._err(
                    "internal: expansion size changed between passes "
                    f"({item.count} -> {len(instrs)})", item.stmt)
            text.extend(instrs)
        return text

    def _pass2_data(self, plan: list[tuple[Statement, int]]) -> bytearray:
        if not plan:
            return bytearray()
        last_stmt, last_off = plan[-1]
        total = last_off + self._data_directive_size(last_stmt, _DATA, 0,
                                                     last_off)
        data = bytearray(total)
        for stmt, offset in plan:
            blob = self._data_bytes(stmt)
            data[offset:offset + len(blob)] = blob
        return data

    def _data_bytes(self, stmt: Statement) -> bytes:
        name = stmt.mnemonic
        unit = {".byte": 1, ".half": 2, ".word": 4, ".dword": 8}.get(name)
        if unit is not None:
            out = bytearray()
            for operand in stmt.operands:
                value = self._eval(operand, stmt) & ((1 << (unit * 8)) - 1)
                out += value.to_bytes(unit, "little")
            return bytes(out)
        if name == ".double":
            out = bytearray()
            for operand in stmt.operands:
                try:
                    out += struct.pack("<d", float(operand))
                except ValueError:
                    raise self._err(f"bad double literal {operand!r}",
                                    stmt) from None
            return bytes(out)
        if name in (".ascii", ".asciiz"):
            blob = self._parse_string(stmt.operands[0], stmt)
            return blob + (b"\0" if name == ".asciiz" else b"")
        if name == ".space":
            return bytes(self._eval(stmt.operands[0], stmt))
        if name == ".align":
            return b""  # the zero padding is already in the bytearray
        raise self._err(f"unknown data directive {name}", stmt)

    # ------------------------------------------------------------------
    # Instruction expansion
    # ------------------------------------------------------------------
    def _expand(self, stmt: Statement, address: int,
                count: int | None = None) -> list[Instruction]:
        name = stmt.mnemonic
        assert name is not None
        if name == "li":
            return self._pseudo_li(stmt, address, count)
        pseudo = getattr(self, f"_pseudo_{name.replace('.', '_')}", None)
        if pseudo is not None:
            return pseudo(stmt, address)
        opcode = MNEMONICS.get(name)
        if opcode is None:
            raise self._err(f"unknown mnemonic {name!r}", stmt)
        return [self._encode_real(opcode, stmt, address)]

    def _encode_real(self, opcode: Opcode, stmt: Statement,
                     address: int) -> Instruction:
        info = OPCODE_INFO[opcode]
        ops = stmt.operands
        if opcode is Opcode.NOP or opcode is Opcode.HALT or \
                opcode is Opcode.ERET:
            self._arity(stmt, 0)
            return Instruction(opcode)
        if opcode is Opcode.SYSCALL:
            self._arity(stmt, 1)
            return Instruction(opcode, imm=self._imm15(ops[0], stmt))
        if opcode is Opcode.MFSR:
            self._arity(stmt, 2)
            return Instruction(opcode, rd=self._reg(ops[0], stmt),
                               imm=self._sysreg(ops[1], stmt))
        if opcode is Opcode.MTSR:
            self._arity(stmt, 2)
            return Instruction(opcode, imm=self._sysreg(ops[0], stmt),
                               rs1=self._reg(ops[1], stmt))
        if opcode in (Opcode.J, Opcode.JAL):
            if opcode is Opcode.JAL and len(ops) == 2:
                rd = self._reg(ops[0], stmt)
                target_text = ops[1]
            elif opcode is Opcode.JAL:
                self._arity(stmt, 1)
                rd = parse_register("ra")
                target_text = ops[0]
            else:
                self._arity(stmt, 1)
                rd = 0
                target_text = ops[0]
            offset = self._branch_offset(target_text, address, stmt,
                                         _IMM20_MIN, _IMM20_MAX)
            return Instruction(opcode, rd=rd, imm=offset)
        if opcode is Opcode.JR:
            self._arity(stmt, 1)
            return Instruction(opcode, rs1=self._reg(ops[0], stmt))
        if opcode is Opcode.JALR:
            if len(ops) == 1:
                return Instruction(opcode, rd=parse_register("ra"),
                                   rs1=self._reg(ops[0], stmt))
            self._arity(stmt, 2)
            return Instruction(opcode, rd=self._reg(ops[0], stmt),
                               rs1=self._reg(ops[1], stmt))
        if opcode is Opcode.LUI:
            self._arity(stmt, 2)
            imm = self._eval(ops[1], stmt)
            if not _IMM20_MIN <= imm <= _IMM20_MAX:
                raise self._err(f"lui immediate {imm} out of range", stmt)
            return Instruction(opcode, rd=self._reg(ops[0], stmt), imm=imm)
        if info.fmt is Format.B:
            self._arity(stmt, 3)
            offset = self._branch_offset(ops[2], address, stmt,
                                         _IMM15_MIN, _IMM15_MAX)
            return Instruction(opcode, rs1=self._reg(ops[0], stmt),
                               rs2=self._reg(ops[1], stmt), imm=offset)
        if info.fmt is Format.MEM:
            self._arity(stmt, 2)
            base, disp = self._memref(ops[1], stmt)
            if info.is_store:
                return Instruction(opcode, rs1=base,
                                   rs2=self._reg(ops[0], stmt), imm=disp)
            return Instruction(opcode, rd=self._reg(ops[0], stmt),
                               rs1=base, imm=disp)
        if info.fmt is Format.I:
            self._arity(stmt, 3)
            return Instruction(opcode, rd=self._reg(ops[0], stmt),
                               rs1=self._reg(ops[1], stmt),
                               imm=self._imm15(ops[2], stmt))
        if info.fmt is Format.R:
            fields = [bank for bank in (info.rd_bank, info.rs1_bank,
                                        info.rs2_bank) if bank is not Bank.NONE]
            self._arity(stmt, len(fields))
            regs = [self._reg(op, stmt) for op in ops]
            kwargs = {}
            names = []
            if info.rd_bank is not Bank.NONE:
                names.append("rd")
            if info.rs1_bank is not Bank.NONE:
                names.append("rs1")
            if info.rs2_bank is not Bank.NONE:
                names.append("rs2")
            for field_name, reg in zip(names, regs):
                kwargs[field_name] = reg
            return Instruction(opcode, **kwargs)
        raise self._err(f"cannot encode {opcode}", stmt)  # pragma: no cover

    # ------------------------------------------------------------------
    # Pseudo-instruction expansions (called via getattr in _expand)
    # ------------------------------------------------------------------
    def _pseudo_li(self, stmt: Statement, address: int,
                   count: int | None = None) -> list[Instruction]:
        self._arity(stmt, 2)
        rd = self._reg(stmt.operands[0], stmt)
        value = self._eval(stmt.operands[1], stmt)
        instrs = self._li_sequence(rd, value, stmt)
        if count is not None and len(instrs) != count:
            # Pass 1 saw a forward reference and reserved the address-sized
            # 2-instruction slot; pad or fail accordingly.
            if count == 2 and len(instrs) == 1:
                instrs.append(Instruction(Opcode.NOP))
            else:
                raise self._err(
                    "li with forward reference needs a 35-bit value; use a "
                    "constant defined before use for wider values", stmt)
        return instrs

    def _li_sequence(self, rd: int, value: int,
                     stmt: Statement) -> list[Instruction]:
        if _IMM15_MIN <= value <= _IMM15_MAX:
            return [Instruction(Opcode.ADDI, rd=rd, rs1=0, imm=value)]
        try:
            hi, lo = split_hi_lo(value)
        except ValueError:
            pass
        else:
            out = [Instruction(Opcode.LUI, rd=rd, imm=hi)]
            if lo:
                out.append(Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=lo))
            else:
                out.append(Instruction(Opcode.NOP))
            return out
        top, chunks = _li64_chunks(value)
        hi, lo = split_hi_lo(top)
        out = [Instruction(Opcode.LUI, rd=rd, imm=hi),
               Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=lo)]
        for chunk in chunks:
            out.append(Instruction(Opcode.SLLI, rd=rd, rs1=rd, imm=15))
            out.append(Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=chunk))
        return out

    def _pseudo_la(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        rd = self._reg(stmt.operands[0], stmt)
        value = self._eval(stmt.operands[1], stmt)
        try:
            hi, lo = split_hi_lo(value)
        except ValueError:
            raise self._err(f"la target {value:#x} out of range", stmt) \
                from None
        second = (Instruction(Opcode.ADDI, rd=rd, rs1=rd, imm=lo)
                  if lo else Instruction(Opcode.NOP))
        return [Instruction(Opcode.LUI, rd=rd, imm=hi), second]

    def _pseudo_mv(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        return [Instruction(Opcode.ADDI, rd=self._reg(stmt.operands[0], stmt),
                            rs1=self._reg(stmt.operands[1], stmt), imm=0)]

    def _pseudo_not(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        return [Instruction(Opcode.NOR, rd=self._reg(stmt.operands[0], stmt),
                            rs1=self._reg(stmt.operands[1], stmt), rs2=0)]

    def _pseudo_neg(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        return [Instruction(Opcode.SUB, rd=self._reg(stmt.operands[0], stmt),
                            rs1=0, rs2=self._reg(stmt.operands[1], stmt))]

    def _pseudo_subi(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 3)
        return [Instruction(Opcode.ADDI,
                            rd=self._reg(stmt.operands[0], stmt),
                            rs1=self._reg(stmt.operands[1], stmt),
                            imm=-self._imm15(stmt.operands[2], stmt))]

    def _pseudo_ret(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 0)
        return [Instruction(Opcode.JR, rs1=parse_register("ra"))]

    def _pseudo_call(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 1)
        offset = self._branch_offset(stmt.operands[0], address, stmt,
                                     _IMM20_MIN, _IMM20_MAX)
        return [Instruction(Opcode.JAL, rd=parse_register("ra"), imm=offset)]

    def _pseudo_b(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 1)
        offset = self._branch_offset(stmt.operands[0], address, stmt,
                                     _IMM20_MIN, _IMM20_MAX)
        return [Instruction(Opcode.J, imm=offset)]

    def _zero_branch(self, stmt: Statement, address: int, opcode: Opcode,
                     reg_side: str) -> list[Instruction]:
        self._arity(stmt, 2)
        reg = self._reg(stmt.operands[0], stmt)
        offset = self._branch_offset(stmt.operands[1], address, stmt,
                                     _IMM15_MIN, _IMM15_MAX)
        if reg_side == "rs1":
            return [Instruction(opcode, rs1=reg, rs2=0, imm=offset)]
        return [Instruction(opcode, rs1=0, rs2=reg, imm=offset)]

    def _pseudo_beqz(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._zero_branch(stmt, address, Opcode.BEQ, "rs1")

    def _pseudo_bnez(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._zero_branch(stmt, address, Opcode.BNE, "rs1")

    def _pseudo_bltz(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._zero_branch(stmt, address, Opcode.BLT, "rs1")

    def _pseudo_bgez(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._zero_branch(stmt, address, Opcode.BGE, "rs1")

    def _pseudo_bgtz(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._zero_branch(stmt, address, Opcode.BLT, "rs2")

    def _pseudo_blez(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._zero_branch(stmt, address, Opcode.BGE, "rs2")

    def _swapped_branch(self, stmt: Statement, address: int,
                        opcode: Opcode) -> list[Instruction]:
        self._arity(stmt, 3)
        offset = self._branch_offset(stmt.operands[2], address, stmt,
                                     _IMM15_MIN, _IMM15_MAX)
        return [Instruction(opcode, rs1=self._reg(stmt.operands[1], stmt),
                            rs2=self._reg(stmt.operands[0], stmt),
                            imm=offset)]

    def _pseudo_bgt(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._swapped_branch(stmt, address, Opcode.BLT)

    def _pseudo_ble(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._swapped_branch(stmt, address, Opcode.BGE)

    def _pseudo_bgtu(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._swapped_branch(stmt, address, Opcode.BLTU)

    def _pseudo_bleu(self, stmt: Statement, address: int) -> list[Instruction]:
        return self._swapped_branch(stmt, address, Opcode.BGEU)

    def _pseudo_seqz(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        return [Instruction(Opcode.SLTIU,
                            rd=self._reg(stmt.operands[0], stmt),
                            rs1=self._reg(stmt.operands[1], stmt), imm=1)]

    def _pseudo_snez(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        return [Instruction(Opcode.SLTU,
                            rd=self._reg(stmt.operands[0], stmt),
                            rs1=0, rs2=self._reg(stmt.operands[1], stmt))]

    def _pseudo_fmv_d(self, stmt: Statement, address: int) -> list[Instruction]:
        self._arity(stmt, 2)
        return [Instruction(Opcode.FMOV,
                            rd=self._reg(stmt.operands[0], stmt),
                            rs1=self._reg(stmt.operands[1], stmt))]

    # ------------------------------------------------------------------
    # Operand helpers
    # ------------------------------------------------------------------
    def _err(self, message: str, stmt: Statement) -> AsmError:
        return AsmError(message, stmt.line, self.source_name)

    def _arity(self, stmt: Statement, expected: int) -> None:
        if len(stmt.operands) != expected:
            raise self._err(
                f"{stmt.mnemonic} expects {expected} operand(s), "
                f"got {len(stmt.operands)}", stmt)

    def _eval(self, text: str, stmt: Statement) -> int:
        return evaluate(text, self.symbols, stmt.line, self.source_name)

    def _reg(self, text: str, stmt: Statement) -> int:
        try:
            return parse_register(text)
        except KeyError as exc:
            raise self._err(str(exc.args[0]), stmt) from None

    def _imm15(self, text: str, stmt: Statement) -> int:
        value = self._eval(text, stmt)
        if not _IMM15_MIN <= value <= _IMM15_MAX:
            raise self._err(f"immediate {value} out of 15-bit range", stmt)
        return value

    def _sysreg(self, text: str, stmt: Statement) -> int:
        key = text.strip().lower()
        if key in _SYSREG_NAMES:
            return _SYSREG_NAMES[key]
        return self._imm15(text, stmt)

    def _branch_offset(self, text: str, address: int, stmt: Statement,
                       lo: int, hi: int) -> int:
        target = self._eval(text, stmt)
        delta = target - address
        if delta % INSTRUCTION_BYTES:
            raise self._err(f"branch target {target:#x} misaligned", stmt)
        offset = delta // INSTRUCTION_BYTES
        if not lo <= offset <= hi:
            raise self._err(f"branch target out of range ({offset})", stmt)
        return offset

    def _memref(self, text: str, stmt: Statement) -> tuple[int, int]:
        """Parse ``disp(base)``, ``(base)`` or bare ``disp`` (base=zero)."""
        text = text.strip()
        if text.endswith(")"):
            open_idx = text.rfind("(")
            if open_idx < 0:
                raise self._err(f"bad memory operand {text!r}", stmt)
            base = self._reg(text[open_idx + 1:-1], stmt)
            disp_text = text[:open_idx].strip()
            disp = self._imm15(disp_text, stmt) if disp_text else 0
            return base, disp
        return 0, self._imm15(text, stmt)

    def _parse_string(self, text: str, stmt: Statement) -> bytes:
        text = text.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise self._err(f"expected string literal, got {text!r}", stmt)
        body = text[1:-1]
        out = bytearray()
        i = 0
        escapes = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, '"': 34,
                   "'": 39}
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                if i + 1 >= len(body):
                    raise self._err("dangling escape in string", stmt)
                try:
                    out.append(escapes[body[i + 1]])
                except KeyError:
                    raise self._err(f"unknown escape \\{body[i + 1]}",
                                    stmt) from None
                i += 2
            else:
                out.append(ord(ch))
                i += 1
        return bytes(out)


def assemble(source: str, text_base: int = 0x1000, data_base: int = 0x100000,
             entry: str | int | None = None,
             source_name: str = "<asm>") -> Program:
    """Assemble *source* into a :class:`Program` (convenience wrapper)."""
    return Assembler(text_base=text_base, data_base=data_base,
                     source_name=source_name).assemble(source, entry=entry)
