"""Line-oriented tokenizer for the mini assembler.

Each source line is split into a :class:`Statement`: zero or more
labels, an optional mnemonic or directive, and its raw operand strings.
Operands are split on top-level commas (commas inside parentheses or
string literals do not split).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .errors import AsmError

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*:\s*")
_MNEMONIC_RE = re.compile(r"^(\.?[A-Za-z_][\w.]*)\s*")


@dataclass
class Statement:
    """One logical source line after tokenization."""

    line: int
    labels: list[str] = field(default_factory=list)
    mnemonic: str | None = None
    operands: list[str] = field(default_factory=list)

    @property
    def is_directive(self) -> bool:
        return self.mnemonic is not None and self.mnemonic.startswith(".")


def _strip_comment(text: str) -> str:
    """Remove ``#`` / ``;`` comments, respecting string and char literals."""
    out = []
    quote: str | None = None
    i = 0
    while i < len(text):
        ch = text[i]
        if quote:
            out.append(ch)
            if ch == "\\" and i + 1 < len(text):
                out.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            out.append(ch)
        elif ch in "#;":
            break
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def _split_operands(text: str, line: int, source_name: str) -> list[str]:
    """Split operand text on top-level commas."""
    operands: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if quote:
            current.append(ch)
            if ch == "\\" and i + 1 < len(text):
                current.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            current.append(ch)
        elif ch == "(":
            depth += 1
            current.append(ch)
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise AsmError("unbalanced ')'", line, source_name)
            current.append(ch)
        elif ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
        i += 1
    if quote:
        raise AsmError("unterminated string literal", line, source_name)
    if depth:
        raise AsmError("unbalanced '('", line, source_name)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    if any(not op for op in operands):
        raise AsmError("empty operand", line, source_name)
    return operands


def tokenize_line(text: str, line: int, source_name: str = "<asm>") -> Statement:
    """Tokenize one source line into a :class:`Statement`."""
    stmt = Statement(line=line)
    body = _strip_comment(text).strip()
    while True:
        match = _LABEL_RE.match(body)
        if not match:
            break
        stmt.labels.append(match.group(1))
        body = body[match.end():]
    if not body:
        return stmt
    match = _MNEMONIC_RE.match(body)
    if not match:
        raise AsmError(f"cannot parse statement: {body!r}", line, source_name)
    stmt.mnemonic = match.group(1).lower()
    rest = body[match.end():].strip()
    if rest:
        stmt.operands = _split_operands(rest, line, source_name)
    return stmt


def tokenize(source: str, source_name: str = "<asm>") -> list[Statement]:
    """Tokenize a full source file, dropping empty statements."""
    statements = []
    for number, text in enumerate(source.splitlines(), start=1):
        stmt = tokenize_line(text, number, source_name)
        if stmt.labels or stmt.mnemonic:
            statements.append(stmt)
    return statements
