"""Two-pass assembler for the mini RISC ISA."""

from .assembler import Assembler, LUI_SHIFT, assemble, li_expansion_length, split_hi_lo
from .errors import AsmError
from .expressions import UndefinedSymbol, evaluate
from .lexer import Statement, tokenize, tokenize_line

__all__ = [
    "Assembler",
    "LUI_SHIFT",
    "assemble",
    "li_expansion_length",
    "split_hi_lo",
    "AsmError",
    "UndefinedSymbol",
    "evaluate",
    "Statement",
    "tokenize",
    "tokenize_line",
]
