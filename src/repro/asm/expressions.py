"""A small integer expression evaluator for assembler operands.

Supports decimal / hex / octal / binary literals, character literals,
symbol references, unary ``+ - ~``, binary ``+ - * / % << >> & | ^``,
and parentheses.  Division is floor division on integers.
"""

from __future__ import annotations

import re
from collections.abc import Mapping

from .errors import AsmError

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|0[oO][0-7]+|\d+)"
    r"|(?P<char>'(?:\\.|[^'\\])')"
    r"|(?P<sym>[A-Za-z_.$][\w.$]*)"
    r"|(?P<op><<|>>|[-+*/%&|^~()])"
    r")"
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'",
            '"': '"'}


class UndefinedSymbol(AsmError):
    """A symbol used in an expression has no definition."""

    def __init__(self, name: str, line: int | None = None,
                 source_name: str = "<asm>") -> None:
        self.name = name
        super().__init__(f"undefined symbol {name!r}", line, source_name)


def _lex(text: str, line: int | None, source_name: str) -> list[str | int]:
    tokens: list[str | int] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            if text[pos:].strip():
                raise AsmError(f"bad expression near {text[pos:]!r}",
                               line, source_name)
            break
        pos = match.end()
        if match.group("num"):
            tokens.append(int(match.group("num"), 0))
        elif match.group("char"):
            body = match.group("char")[1:-1]
            if body.startswith("\\"):
                try:
                    tokens.append(ord(_ESCAPES[body[1]]))
                except KeyError:
                    raise AsmError(f"unknown escape {body!r}", line,
                                   source_name) from None
            else:
                tokens.append(ord(body))
        elif match.group("sym"):
            tokens.append(match.group("sym"))
        else:
            tokens.append(match.group("op"))
    return tokens


class _Parser:
    """Precedence-climbing parser over the token list."""

    _PRECEDENCE = {"|": 1, "^": 2, "&": 3, "<<": 4, ">>": 4,
                   "+": 5, "-": 5, "*": 6, "/": 6, "%": 6}

    def __init__(self, tokens: list[str | int], symbols: Mapping[str, int],
                 line: int | None, source_name: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.symbols = symbols
        self.line = line
        self.source_name = source_name

    def _peek(self) -> str | int | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> str | int:
        token = self._peek()
        if token is None:
            raise AsmError("unexpected end of expression", self.line,
                           self.source_name)
        self.pos += 1
        return token

    def parse(self) -> int:
        value = self._expr(0)
        if self._peek() is not None:
            raise AsmError(f"trailing tokens in expression: {self._peek()!r}",
                           self.line, self.source_name)
        return value

    def _expr(self, min_prec: int) -> int:
        left = self._unary()
        while True:
            token = self._peek()
            if not isinstance(token, str) or token not in self._PRECEDENCE:
                return left
            prec = self._PRECEDENCE[token]
            if prec < min_prec:
                return left
            self._next()
            right = self._expr(prec + 1)
            left = self._apply(token, left, right)

    def _apply(self, op: str, left: int, right: int) -> int:
        if op in ("/", "%") and right == 0:
            raise AsmError("division by zero in expression", self.line,
                           self.source_name)
        return {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left // right,
            "%": lambda: left % right,
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
        }[op]()

    def _unary(self) -> int:
        token = self._next()
        if token == "-":
            return -self._unary()
        if token == "+":
            return self._unary()
        if token == "~":
            return ~self._unary()
        if token == "(":
            value = self._expr(0)
            closing = self._next()
            if closing != ")":
                raise AsmError("expected ')'", self.line, self.source_name)
            return value
        if isinstance(token, int):
            return token
        if isinstance(token, str):
            try:
                return self.symbols[token]
            except KeyError:
                raise UndefinedSymbol(token, self.line,
                                      self.source_name) from None
        raise AsmError(f"unexpected token {token!r}", self.line,
                       self.source_name)  # pragma: no cover


def evaluate(text: str, symbols: Mapping[str, int] | None = None,
             line: int | None = None, source_name: str = "<asm>") -> int:
    """Evaluate an assembler integer expression."""
    tokens = _lex(text, line, source_name)
    if not tokens:
        raise AsmError("empty expression", line, source_name)
    return _Parser(tokens, symbols or {}, line, source_name).parse()


def references(text: str) -> set[str]:
    """Return the set of symbol names an expression mentions."""
    return {tok for tok in _lex(text, None, "<asm>") if isinstance(tok, str)
            and tok not in _Parser._PRECEDENCE and tok not in "()~+-"}
