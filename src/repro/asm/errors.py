"""Assembler error type carrying source location."""

from __future__ import annotations


class AsmError(Exception):
    """An error in assembly source, with 1-based line information."""

    def __init__(self, message: str, line: int | None = None,
                 source_name: str = "<asm>") -> None:
        self.message = message
        self.line = line
        self.source_name = source_name
        location = f"{source_name}:{line}: " if line is not None else ""
        super().__init__(f"{location}{message}")
