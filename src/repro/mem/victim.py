"""Victim cache: a small fully-associative buffer of L1 evictions.

The other classic small-buffer technique of the era (Jouppi, 1990):
lines evicted from the L1 park here; an L1 miss that hits the victim
cache swaps the line back at a small latency instead of paying the L2
round trip.  It attacks *conflict misses* — orthogonal to the paper's
port-bandwidth techniques, and included as an extension ablation (A6)
to show the two families compose.
"""

from __future__ import annotations

from collections import OrderedDict

from ..stats.counters import Stats


class VictimCache:
    """Fully-associative LRU buffer of (line, dirty) victims."""

    def __init__(self, entries: int, name: str = "victim",
                 stats: Stats | None = None) -> None:
        if entries < 1:
            raise ValueError("victim cache needs at least one entry")
        self.entries = entries
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self._lines: OrderedDict[int, bool] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def insert(self, line: int, dirty: bool) -> tuple[int, bool] | None:
        """Park an evicted line; returns the pushed-out victim, if any.

        A pushed-out *dirty* line must be written back by the caller.
        """
        if line in self._lines:
            self._lines[line] = self._lines[line] or dirty
            self._lines.move_to_end(line)
            return None
        evicted: tuple[int, bool] | None = None
        if len(self._lines) >= self.entries:
            evicted = self._lines.popitem(last=False)
            self.stats.inc(f"{self.name}.overflows")
        self._lines[line] = dirty
        self.stats.inc(f"{self.name}.inserts")
        return evicted

    def extract(self, line: int) -> bool | None:
        """Remove *line* if present; returns its dirty flag (None = miss)."""
        dirty = self._lines.pop(line, None)
        if dirty is None:
            self.stats.inc(f"{self.name}.misses")
            return None
        self.stats.inc(f"{self.name}.hits")
        return dirty

    def contents(self) -> list[int]:
        """Resident lines, LRU first (for tests)."""
        return list(self._lines)
