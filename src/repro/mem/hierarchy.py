"""Facade wiring the I-cache, D-cache and shared next level together."""

from __future__ import annotations

from ..obs.spans import SpanRecorder
from ..obs.tracer import Tracer
from ..stats.counters import Stats
from .config import MemSystemConfig, NextLevelConfig
from .dcache import DataCacheSystem
from .icache import ICacheSystem
from .nextlevel import NextLevel


class _SpannedNextLevel(NextLevel):
    """Next level that marks every refill/writeback on the span
    timeline, so Perfetto shows where simulated memory traffic lands
    inside each pipeline chunk.  Only constructed when span tracing is
    on — the plain :class:`NextLevel` pays nothing."""

    def __init__(self, config: NextLevelConfig, stats: Stats,
                 spans: SpanRecorder) -> None:
        super().__init__(config, stats=stats)
        self._spans = spans

    def request(self, line: int, cycle: int) -> int:
        ready = super().request(line, cycle)
        self._spans.instant("mem.refill", "mem", line=line, cycle=cycle,
                            latency=ready - cycle)
        return ready

    def writeback(self, line: int, cycle: int) -> None:
        super().writeback(line, cycle)
        self._spans.instant("mem.writeback", "mem", line=line,
                            cycle=cycle)


class MemorySystem:
    """One processor's complete memory hierarchy."""

    def __init__(self, config: MemSystemConfig,
                 stats: Stats | None = None,
                 tracer: Tracer | None = None,
                 spans: SpanRecorder | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        if spans is not None:
            self.next_level: NextLevel = _SpannedNextLevel(
                config.next_level, self.stats, spans)
        else:
            self.next_level = NextLevel(config.next_level,
                                        stats=self.stats)
        self.dcache = DataCacheSystem(config.dcache, self.next_level,
                                      stats=self.stats, tracer=tracer)
        self.icache = ICacheSystem(config.icache, self.next_level,
                                   stats=self.stats)

    def begin_cycle(self, cycle: int) -> None:
        self.dcache.begin_cycle(cycle)

    def end_cycle(self) -> None:
        """Late-cycle work: drain stores into ports loads didn't use."""
        self.dcache.drain_write_buffer()
