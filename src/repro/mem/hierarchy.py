"""Facade wiring the I-cache, D-cache and shared next level together."""

from __future__ import annotations

from ..obs.tracer import Tracer
from ..stats.counters import Stats
from .config import MemSystemConfig
from .dcache import DataCacheSystem
from .icache import ICacheSystem
from .nextlevel import NextLevel


class MemorySystem:
    """One processor's complete memory hierarchy."""

    def __init__(self, config: MemSystemConfig,
                 stats: Stats | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.next_level = NextLevel(config.next_level, stats=self.stats)
        self.dcache = DataCacheSystem(config.dcache, self.next_level,
                                      stats=self.stats, tracer=tracer)
        self.icache = ICacheSystem(config.icache, self.next_level,
                                   stats=self.stats)

    def begin_cycle(self, cycle: int) -> None:
        self.dcache.begin_cycle(cycle)

    def end_cycle(self) -> None:
        """Late-cycle work: drain stores into ports loads didn't use."""
        self.dcache.drain_write_buffer()
