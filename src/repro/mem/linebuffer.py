"""The line buffer — one of the paper's two buffering techniques.

A small fully-associative buffer of recently read cache lines kept in
the processor, next to the load/store unit.  A load whose line is in the
buffer is serviced from it *without consuming a cache port* — this is
the "load all of the line" idea: the data array reads a full line
internally anyway, so latching that line lets subsequent spatially-local
loads reuse it for free.

Stores must keep the buffer coherent: depending on configuration they
either invalidate a matching entry or update it in place (the store's
data is merged as it is written to the cache).
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs.tracer import NULL_TRACER, Tracer
from ..stats.counters import Stats
from .config import LineBufferOnStore


class LineBuffer:
    """Fully-associative LRU buffer of line numbers."""

    def __init__(self, entries: int, on_store: LineBufferOnStore,
                 name: str = "lb", stats: Stats | None = None,
                 tracer: Tracer | None = None) -> None:
        if entries < 1:
            raise ValueError("line buffer needs at least one entry")
        self.entries = entries
        self.on_store = on_store
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Kept in step by the owning cache's ``begin_cycle``.
        self.cycle = 0
        self._lines: OrderedDict[int, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._lines)

    def contains(self, line: int) -> bool:
        """Non-mutating probe: no LRU refresh, no stats (validation)."""
        return line in self._lines

    def lookup(self, line: int) -> bool:
        """Probe for *line*; refreshes LRU position on hit."""
        if line in self._lines:
            self._lines.move_to_end(line)
            self.stats.inc(f"{self.name}.hits")
            return True
        self.stats.inc(f"{self.name}.misses")
        return False

    def insert(self, line: int) -> None:
        """Capture *line* (evicting the LRU entry if full)."""
        if line in self._lines:
            self._lines.move_to_end(line)
            return
        evicted = None
        if len(self._lines) >= self.entries:
            evicted = self._lines.popitem(last=False)[0]
        self._lines[line] = None
        self.stats.inc(f"{self.name}.fills")
        if self.tracer.enabled:
            self.tracer.emit(self.cycle, "lb.insert", line=line,
                             evicted=evicted)

    def note_store(self, line: int) -> None:
        """Apply the configured store policy to a matching entry."""
        if line not in self._lines:
            return
        if self.on_store is LineBufferOnStore.INVALIDATE:
            del self._lines[line]
            self.stats.inc(f"{self.name}.store_invalidations")
            if self.tracer.enabled:
                self.tracer.emit(self.cycle, "lb.invalidate", line=line,
                                 reason="store")
        else:
            self._lines.move_to_end(line)
            self.stats.inc(f"{self.name}.store_updates")

    def invalidate(self, line: int) -> None:
        """Drop *line* (e.g. because the L1 copy was replaced)."""
        self._lines.pop(line, None)

    def contents(self) -> list[int]:
        """Resident lines in LRU order (for tests)."""
        return list(self._lines)
