"""Tag-only set-associative cache model with true-LRU replacement.

The timing simulator never needs cached *data* (values come from the
functional trace), so a cache here is a tag array: lookups, fills and
dirty tracking.  Addresses are managed at line granularity: callers pass
*line numbers* (``address >> line_shift``).
"""

from __future__ import annotations

from collections import OrderedDict

from ..stats.counters import Stats
from .config import CacheGeometry


class SetAssocCache:
    """A set-associative tag array.

    Each set is an :class:`OrderedDict` from line number to dirty flag,
    maintained in LRU order (least recently used first).
    """

    def __init__(self, geometry: CacheGeometry, name: str = "cache",
                 stats: Stats | None = None) -> None:
        self.geometry = geometry
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.line_shift = geometry.line_size.bit_length() - 1
        self._set_mask = geometry.num_sets - 1
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(geometry.num_sets)]

    # ------------------------------------------------------------------
    def line_of(self, address: int) -> int:
        """Line number containing byte *address*."""
        return address >> self.line_shift

    def _set_for(self, line: int) -> OrderedDict[int, bool]:
        return self._sets[line & self._set_mask]

    # ------------------------------------------------------------------
    def lookup(self, line: int, touch: bool = True) -> bool:
        """Tag check for *line*; updates LRU order on a hit if *touch*."""
        cache_set = self._set_for(line)
        if line in cache_set:
            if touch:
                cache_set.move_to_end(line)
            return True
        return False

    def fill(self, line: int, dirty: bool = False) -> tuple[int, bool] | None:
        """Install *line*, returning the evicted ``(line, dirty)`` if any.

        Filling a line that is already present just refreshes its LRU
        position (and ORs in the dirty flag).
        """
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = cache_set[line] or dirty
            cache_set.move_to_end(line)
            return None
        victim: tuple[int, bool] | None = None
        if len(cache_set) >= self.geometry.assoc:
            victim = cache_set.popitem(last=False)
            self.stats.inc(f"{self.name}.evictions")
            if victim[1]:
                self.stats.inc(f"{self.name}.dirty_evictions")
        cache_set[line] = dirty
        return victim

    def mark_dirty(self, line: int) -> None:
        """Set the dirty bit of a resident line (no-op if absent)."""
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = True
            cache_set.move_to_end(line)

    def invalidate(self, line: int) -> bool:
        """Drop *line*; returns whether it was present."""
        cache_set = self._set_for(line)
        return cache_set.pop(line, None) is not None

    # ------------------------------------------------------------------
    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def contents(self) -> set[int]:
        """All resident line numbers (for tests)."""
        return {line for s in self._sets for line in s}
