"""The write buffer — the paper's second buffering technique.

Retired stores enter the write buffer instead of taking a cache port on
the commit path; the buffer drains into idle port cycles.  With *store
combining* enabled, a store to a line that already has a buffered entry
merges into it, so several stores cost a single port access when the
entry finally drains.

Entries track which bytes of the line they hold (a byte mask), which
lets loads forward from the buffer when fully covered, and forces a
drain when a load partially overlaps buffered data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.tracer import NULL_TRACER, Tracer
from ..stats.counters import Stats


@dataclass
class WriteBufferEntry:
    """One buffered (possibly merged) line's worth of store data."""

    line: int
    byte_mask: int  # bit i set = byte i of the line is buffered


class WriteBuffer:
    """FIFO store buffer with optional same-line combining."""

    def __init__(self, depth: int, combine: bool, line_size: int,
                 name: str = "wb", stats: Stats | None = None,
                 tracer: Tracer | None = None) -> None:
        if depth < 0:
            raise ValueError("depth cannot be negative")
        self.depth = depth
        self.combine = combine
        self.line_size = line_size
        self.name = name
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Kept in step by the owning cache's ``begin_cycle`` so trace
        #: events carry the simulation cycle.
        self.cycle = 0
        self._entries: list[WriteBufferEntry] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def mask_for(self, offset: int, size: int) -> int:
        """Byte mask of an access at *offset* within the line."""
        if offset + size > self.line_size:
            raise ValueError("access crosses the line boundary")
        return ((1 << size) - 1) << offset

    # ------------------------------------------------------------------
    def add(self, line: int, byte_mask: int) -> bool:
        """Buffer a retired store; False means full (commit must stall).

        With combining, a store to an already-buffered line always
        merges — even when the buffer is otherwise full — because it
        needs no new entry.
        """
        if self.combine:
            for entry in self._entries:
                if entry.line == line:
                    entry.byte_mask |= byte_mask
                    self.stats.inc(f"{self.name}.combined")
                    if self.tracer.enabled:
                        self.tracer.emit(self.cycle, "wb.add", line=line,
                                         merged=True)
                    return True
        if self.full:
            self.stats.inc(f"{self.name}.full_stalls")
            if self.tracer.enabled:
                self.tracer.emit(self.cycle, "wb.full", line=line)
            return False
        self._entries.append(WriteBufferEntry(line, byte_mask))
        self.stats.inc(f"{self.name}.entries_allocated")
        if self.tracer.enabled:
            self.tracer.emit(self.cycle, "wb.add", line=line, merged=False)
        return True

    def head(self) -> WriteBufferEntry | None:
        """Oldest entry (the next to drain), or None."""
        return self._entries[0] if self._entries else None

    def pop(self) -> WriteBufferEntry:
        """Remove and return the oldest entry."""
        self.stats.inc(f"{self.name}.drains")
        entry = self._entries.pop(0)
        if self.tracer.enabled:
            self.tracer.emit(self.cycle, "wb.drain", line=entry.line,
                             occupancy=len(self._entries))
        return entry

    # ------------------------------------------------------------------
    def covers(self, line: int, byte_mask: int) -> bool:
        """Non-counting probe: would a load at (*line*, *byte_mask*)
        forward from a buffered entry?  Used by the validation layer,
        which must not perturb the ``load_check`` statistics."""
        return any(entry.line == line and
                   entry.byte_mask & byte_mask == byte_mask
                   for entry in self._entries)

    def load_check(self, line: int, byte_mask: int) -> str:
        """How a load at (*line*, *byte_mask*) interacts with the buffer.

        Returns ``"miss"`` (no overlap), ``"forward"`` (some entry fully
        covers the bytes — newest match wins), or ``"conflict"``
        (partial overlap: the load must wait for the buffer to drain).
        """
        for entry in reversed(self._entries):
            if entry.line != line:
                continue
            overlap = entry.byte_mask & byte_mask
            if not overlap:
                continue
            if overlap == byte_mask:
                self.stats.inc(f"{self.name}.load_forwards")
                return "forward"
            self.stats.inc(f"{self.name}.load_conflicts")
            return "conflict"
        return "miss"

    def contents(self) -> list[WriteBufferEntry]:
        """Entries oldest-first (for tests)."""
        return list(self._entries)
