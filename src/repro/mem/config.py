"""Configuration dataclasses for the memory hierarchy.

The D-cache port subsystem knobs here are the paper's experimental
variables: number of ports, port width, line buffer policy, write
buffer depth and store combining.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


def _power_of_two(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{what} must be a positive power of two, got {value}")


class LineBufferFill(enum.Enum):
    """When the line buffer captures a line."""

    NONE = "none"          # no line buffer
    ON_ACCESS = "access"   # every load port-access captures its whole line
    ON_FILL = "fill"       # only miss fills from L2 land in the buffer


class LineBufferOnStore(enum.Enum):
    """What a store does to a matching line-buffer entry."""

    INVALIDATE = "invalidate"
    UPDATE = "update"


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache array."""

    size: int = 32 * 1024
    line_size: int = 32
    assoc: int = 2

    def __post_init__(self) -> None:
        _power_of_two(self.size, "cache size")
        _power_of_two(self.line_size, "line size")
        if self.assoc <= 0:
            raise ValueError("associativity must be positive")
        if self.size % (self.line_size * self.assoc):
            raise ValueError("size must be divisible by line_size * assoc")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)


@dataclass(frozen=True)
class DCacheConfig:
    """L1 data cache and its port subsystem."""

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    ports: int = 1
    port_width: int = 8            # bytes returned per port access
    hit_latency: int = 1           # cycles from port grant to data ready
    mshrs: int = 8                 # outstanding misses (distinct lines)
    combine_loads: bool = False    # wide-port access combining in the LSQ
    line_buffer_entries: int = 0
    line_buffer_fill: LineBufferFill = LineBufferFill.NONE
    line_buffer_on_store: LineBufferOnStore = LineBufferOnStore.UPDATE
    write_buffer_depth: int = 8
    combine_stores: bool = False   # merge same-line stores in the write buffer
    #: Line-interleaved single-ported banks (1 = a monolithic array).
    #: With banks > 1, ``ports`` is the number of address paths: two
    #: accesses can proceed per cycle only if they hit different banks —
    #: the era's cheap alternative to true multi-porting.
    banks: int = 1
    #: On a demand miss, also fetch the next sequential line into a free
    #: MSHR (no port cost; uses L2 bandwidth).
    prefetch_next_line: bool = False
    #: Fully-associative victim cache capturing L1 evictions (0 = none);
    #: misses that hit it pay ``victim_latency`` instead of the L2 trip.
    victim_entries: int = 0
    victim_latency: int = 2

    def __post_init__(self) -> None:
        _power_of_two(self.port_width, "port width")
        _power_of_two(self.banks, "bank count")
        if self.ports < 1:
            raise ValueError("need at least one port")
        if self.port_width > self.geometry.line_size:
            raise ValueError("port width cannot exceed the line size")
        if self.hit_latency < 1:
            raise ValueError("hit latency must be at least 1")
        if self.mshrs < 1:
            raise ValueError("need at least one MSHR")
        if self.line_buffer_entries and \
                self.line_buffer_fill is LineBufferFill.NONE:
            raise ValueError("line buffer entries need a fill policy")
        if self.line_buffer_fill is not LineBufferFill.NONE and \
                not self.line_buffer_entries:
            raise ValueError("line buffer fill policy needs entries > 0")
        if self.write_buffer_depth < 0:
            raise ValueError("write buffer depth cannot be negative")
        if self.victim_entries < 0 or self.victim_latency < 1:
            raise ValueError("bad victim cache parameters")

    @property
    def has_line_buffer(self) -> bool:
        return self.line_buffer_entries > 0


@dataclass(frozen=True)
class ICacheConfig:
    """L1 instruction cache (always a single wide port)."""

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    fetch_bytes: int = 16          # aligned bytes delivered per access
    hit_latency: int = 1

    def __post_init__(self) -> None:
        _power_of_two(self.fetch_bytes, "fetch width")


@dataclass(frozen=True)
class NextLevelConfig:
    """Unified L2 plus main memory behind it."""

    geometry: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size=512 * 1024, line_size=32,
                                              assoc=4))
    hit_latency: int = 10          # L1-miss-to-data latency on an L2 hit
    memory_latency: int = 60       # additional latency on an L2 miss
    occupancy: int = 2             # cycles one request keeps the L2 busy

    def __post_init__(self) -> None:
        if self.hit_latency < 1 or self.memory_latency < 0:
            raise ValueError("latencies must be positive")
        if self.occupancy < 1:
            raise ValueError("occupancy must be at least 1")


@dataclass(frozen=True)
class MemSystemConfig:
    """Everything below the core."""

    dcache: DCacheConfig = field(default_factory=DCacheConfig)
    icache: ICacheConfig = field(default_factory=ICacheConfig)
    next_level: NextLevelConfig = field(default_factory=NextLevelConfig)

    def __post_init__(self) -> None:
        if self.dcache.geometry.line_size != self.icache.geometry.line_size:
            # Not fundamental, but the shared L2 assumes one line size.
            raise ValueError("L1 I and D line sizes must match")
        if self.next_level.geometry.line_size != \
                self.dcache.geometry.line_size:
            raise ValueError("L2 line size must match L1 line size")
