"""L1 instruction cache: one wide read port feeding the fetch unit."""

from __future__ import annotations

from ..stats.counters import Stats
from .cache import SetAssocCache
from .config import ICacheConfig
from .nextlevel import NextLevel


class ICacheSystem:
    """Single-ported instruction cache.

    The fetch unit performs at most one access per cycle for an aligned
    ``fetch_bytes`` block; the returned value is the cycle the block's
    instructions are available for decode.
    """

    def __init__(self, config: ICacheConfig, next_level: NextLevel,
                 stats: Stats | None = None) -> None:
        self.config = config
        self.next_level = next_level
        self.stats = stats if stats is not None else Stats()
        self.cache = SetAssocCache(config.geometry, name="icache",
                                   stats=self.stats)
        self.fetch_bytes = config.fetch_bytes
        self._pending: dict[int, int] = {}

    def block_of(self, address: int) -> int:
        """Aligned fetch-block number containing *address*."""
        return address // self.fetch_bytes

    def fetch(self, address: int, cycle: int) -> int:
        """Access the block containing *address*.

        Returns the cycle the block is fetchable: *cycle* itself on a
        hit (the hit pipeline stage is part of the front-end depth the
        core models as decode latency), or the fill-ready cycle on a
        miss.
        """
        line = self.cache.line_of(address)
        self.stats.inc("icache.accesses")
        pending_ready = self._pending.get(line, 0)
        if pending_ready > cycle:
            self.stats.inc("icache.pending_hits")
            return pending_ready
        if self.cache.lookup(line):
            self.stats.inc("icache.hits")
            return cycle + self.config.hit_latency - 1
        self.stats.inc("icache.misses")
        ready = self.next_level.request(line, cycle)
        self._pending[line] = ready
        victim = self.cache.fill(line)
        if victim is not None and victim[1]:  # pragma: no cover - I-lines
            self.next_level.writeback(victim[0], cycle)
        if len(self._pending) > 64:
            self._pending = {ln: rd for ln, rd in self._pending.items()
                             if rd > cycle}
        return ready
