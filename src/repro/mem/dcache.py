"""The L1 data cache with its port subsystem — the paper's contribution.

Everything the paper varies lives here:

* ``ports`` physical cache ports, each ``port_width`` bytes wide — one
  port services one aligned ``port_width`` chunk per cycle;
* the **line buffer** (loads hitting it bypass the ports entirely);
* the **write buffer** with store combining (stores drain into idle
  port cycles, merged per line);
* non-blocking misses through a bounded set of MSHRs with secondary
  miss merging.

The load/store *selection* (which LSQ entries go to which port, wide
port access combining) is processor-side logic and lives in
:mod:`repro.core.lsq`; this module provides the port-accurate cache
side.

Every wait this module can impose maps onto a critical-path edge
class in :mod:`repro.obs.critpath` (via the LSQ's block annotations):
``NO_PORT``/``BANK_CONFLICT`` → ``dcache_port``, ``MSHR_FULL`` →
``mshr``, a line-buffer service → ``line_buffer``, a write-buffer
drain or full stall → ``write_buffer``, and a next-level fill →
``next_level`` — so ``repro critpath`` can say which of these
actually bounded the run rather than merely occurred.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..obs.tracer import NULL_TRACER, Tracer
from ..stats.counters import Stats
from .cache import SetAssocCache
from .config import DCacheConfig, LineBufferFill
from .linebuffer import LineBuffer
from .nextlevel import NextLevel
from .victim import VictimCache
from .writebuffer import WriteBuffer


class AccessStatus(enum.Enum):
    """Outcome of one port access attempt."""

    OK = "ok"
    NO_PORT = "no_port"      # every port already claimed this cycle
    MSHR_FULL = "mshr_full"  # tag-checked, missed, no MSHR free (port spent)
    BANK_CONFLICT = "bank_conflict"  # target bank busy; no port spent


@dataclass(frozen=True)
class AccessResult:
    status: AccessStatus
    ready: int = 0           # cycle the data is available (loads)
    #: Where the data came from on an OK load access ("hit", "miss",
    #: "secondary") — feeds the stall-attribution model.
    source: str = ""

    @property
    def ok(self) -> bool:
        return self.status is AccessStatus.OK


class DataCacheSystem:
    """Port-accurate L1 D-cache front end."""

    def __init__(self, config: DCacheConfig, next_level: NextLevel,
                 stats: Stats | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config
        self.next_level = next_level
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cache = SetAssocCache(config.geometry, name="dcache",
                                   stats=self.stats)
        self.line_size = config.geometry.line_size
        self.line_shift = self.line_size.bit_length() - 1
        self.port_width = config.port_width
        self.chunk_shift = config.port_width.bit_length() - 1
        self.line_buffer: LineBuffer | None = None
        if config.has_line_buffer:
            self.line_buffer = LineBuffer(config.line_buffer_entries,
                                          config.line_buffer_on_store,
                                          name="lb", stats=self.stats,
                                          tracer=self.tracer)
        self.write_buffer = WriteBuffer(config.write_buffer_depth,
                                        config.combine_stores,
                                        self.line_size, name="wb",
                                        stats=self.stats,
                                        tracer=self.tracer)
        self.victim_cache: VictimCache | None = None
        if config.victim_entries:
            self.victim_cache = VictimCache(config.victim_entries,
                                            stats=self.stats)
        self._pending: dict[int, int] = {}   # line -> fill-ready cycle
        self._cycle = 0
        self._ports_used = 0
        self._bank_mask = config.banks - 1
        self._banks_used: set[int] = set()
        # Per-PC hotspot attribution (see repro.obs.hotspots): the LSQ /
        # commit stage set `access_context` to the access's batch-leader
        # trace record before a port access; write-buffer drains clear
        # it (no program context).  Both stay None unless a recorder is
        # attached, so the default cost is one `is None` check per
        # counter site.
        self.hotspots = None
        self.access_context = None

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_of(self, address: int) -> int:
        return address >> self.line_shift

    def chunk_of(self, address: int) -> int:
        """Aligned port-width chunk number containing *address*."""
        return address >> self.chunk_shift

    def byte_mask(self, address: int, size: int) -> int:
        """Byte mask of an access within its line."""
        offset = address & (self.line_size - 1)
        return self.write_buffer.mask_for(offset, size)

    # ------------------------------------------------------------------
    # Cycle bookkeeping
    # ------------------------------------------------------------------
    def bank_of(self, line: int) -> int:
        """Line-interleaved bank index."""
        return line & self._bank_mask

    def bank_free(self, line: int) -> bool:
        """Would an access to *line* hit a free bank this cycle?"""
        return self._bank_mask == 0 or self.bank_of(line) not in \
            self._banks_used

    def begin_cycle(self, cycle: int) -> None:
        self._cycle = cycle
        self._ports_used = 0
        self._banks_used.clear()
        # The buffers emit their own trace events; keep their clocks in
        # step (two attribute stores — cheaper than threading `cycle`
        # through every call).
        self.write_buffer.cycle = cycle
        if self.line_buffer is not None:
            self.line_buffer.cycle = cycle
        if len(self._pending) > 2 * self.config.mshrs:
            self._pending = {line: ready for line, ready
                             in self._pending.items() if ready > cycle}

    def ports_free(self) -> int:
        return self.config.ports - self._ports_used

    @property
    def ports_used(self) -> int:
        """Ports already claimed this cycle (telemetry sampling)."""
        return self._ports_used

    def mshrs_busy(self) -> int:
        """MSHRs with a fill still in flight this cycle."""
        cycle = self._cycle
        return sum(1 for ready in self._pending.values() if ready > cycle)

    def _claim_port(self, line: int) -> AccessStatus:
        if self._ports_used >= self.config.ports:
            return AccessStatus.NO_PORT
        if not self.bank_free(line):
            self.stats.inc("dcache.bank_conflicts")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "bank_conflicts")
            return AccessStatus.BANK_CONFLICT
        self._ports_used += 1
        if self._bank_mask:
            self._banks_used.add(self.bank_of(line))
        self.stats.inc("dcache.port_uses")
        if self.hotspots is not None:
            self.hotspots.note_dcache_port(self.access_context,
                                           self._ports_used - 1)
        return AccessStatus.OK

    # ------------------------------------------------------------------
    # Processor-side probes (consume no port)
    # ------------------------------------------------------------------
    def line_buffer_hit(self, line: int) -> bool:
        """Can a load to *line* be serviced from the line buffer now?"""
        if self.line_buffer is None:
            return False
        if self._pending.get(line, 0) > self._cycle:
            return False  # captured line is still in flight
        return self.line_buffer.lookup(line)

    def write_buffer_check(self, line: int, byte_mask: int) -> str:
        """Forwarding check against buffered retired stores."""
        return self.write_buffer.load_check(line, byte_mask)

    def fill_pending(self, line: int) -> bool:
        """Is a fill for *line* still in flight this cycle?"""
        return self._pending.get(line, 0) > self._cycle

    # ------------------------------------------------------------------
    # Port-consuming accesses
    # ------------------------------------------------------------------
    def load_access(self, line: int) -> AccessResult:
        """One load port access covering one chunk of *line*."""
        claim = self._claim_port(line)
        if claim is not AccessStatus.OK:
            self.stats.inc("dcache.load_no_port")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "load_no_port")
            return AccessResult(claim)
        cycle = self._cycle
        pending_ready = self._pending.get(line, 0)
        if pending_ready > cycle:
            self.stats.inc("dcache.load_secondary_misses")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "load_secondary_misses")
            ready = pending_ready
            source = "secondary"
        elif self.cache.lookup(line):
            self.stats.inc("dcache.load_hits")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context, "load_hits")
            ready = cycle + self.config.hit_latency
            source = "hit"
        else:
            if self.mshrs_busy() >= self.config.mshrs:
                self.stats.inc("dcache.load_mshr_full")
                if self.hotspots is not None:
                    self.hotspots.note_dcache(self.access_context,
                                              "load_mshr_full")
                return AccessResult(AccessStatus.MSHR_FULL)
            self.stats.inc("dcache.load_misses")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "load_misses")
            ready = self._start_fill(line)
            source = "miss"
            self._maybe_prefetch(line + 1)
        if self.config.line_buffer_fill is LineBufferFill.ON_ACCESS and \
                self.line_buffer is not None:
            self.line_buffer.insert(line)
        if self.tracer.enabled:
            self.tracer.emit(cycle, "dcache.load", line=line, source=source,
                             ready=ready)
        return AccessResult(AccessStatus.OK, ready, source)

    def store_access(self, line: int) -> AccessResult:
        """Write one (possibly combined) line's worth of store data."""
        claim = self._claim_port(line)
        if claim is not AccessStatus.OK:
            self.stats.inc("dcache.store_no_port")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "store_no_port")
            return AccessResult(claim)
        cycle = self._cycle
        pending_ready = self._pending.get(line, 0)
        if pending_ready > cycle:
            # Merge into the in-flight fill; data lands with the line.
            self.stats.inc("dcache.store_mshr_merges")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "store_mshr_merges")
            self.cache.mark_dirty(line)
        elif self.cache.lookup(line):
            self.stats.inc("dcache.store_hits")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "store_hits")
            self.cache.mark_dirty(line)
        else:
            if self.mshrs_busy() >= self.config.mshrs:
                self.stats.inc("dcache.store_mshr_full")
                if self.hotspots is not None:
                    self.hotspots.note_dcache(self.access_context,
                                              "store_mshr_full")
                return AccessResult(AccessStatus.MSHR_FULL)
            self.stats.inc("dcache.store_misses")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "store_misses")
            self._start_fill(line, dirty=True)
        if self.line_buffer is not None:
            self.line_buffer.note_store(line)
        if self.tracer.enabled:
            self.tracer.emit(cycle, "dcache.store", line=line)
        return AccessResult(AccessStatus.OK, cycle + 1)

    def _maybe_prefetch(self, line: int) -> None:
        """Next-line prefetch on a demand miss: free, port-less, but it
        consumes an MSHR and L2 bandwidth (the realistic cost)."""
        if not self.config.prefetch_next_line:
            return
        if self._pending.get(line, 0) > self._cycle:
            return
        if self.cache.lookup(line, touch=False):
            return
        if self.mshrs_busy() >= self.config.mshrs:
            return
        self.stats.inc("dcache.prefetches")
        if self.hotspots is not None:
            self.hotspots.note_dcache(self.access_context, "prefetches")
        self._start_fill(line)

    def _start_fill(self, line: int, dirty: bool = False) -> int:
        """Source the line (victim cache or L2), install the tag, and
        dispose of the displaced L1 line."""
        recovered = None if self.victim_cache is None else \
            self.victim_cache.extract(line)
        if recovered is not None:
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "victim_hits")
            ready = self._cycle + self.config.victim_latency
            dirty = dirty or recovered
        else:
            ready = self.next_level.request(line, self._cycle)
        self._pending[line] = ready
        if self.tracer.enabled:
            self.tracer.emit(self._cycle, "dcache.fill", line=line,
                             ready=ready, victim=recovered is not None)
        victim = self.cache.fill(line, dirty=dirty)
        if victim is not None:
            self._dispose_victim(*victim)
        if self.config.line_buffer_fill is LineBufferFill.ON_FILL and \
                self.line_buffer is not None:
            self.line_buffer.insert(line)
        return ready

    def _dispose_victim(self, victim_line: int, victim_dirty: bool) -> None:
        if self.line_buffer is not None:
            self.line_buffer.invalidate(victim_line)
        if self.victim_cache is not None:
            pushed_out = self.victim_cache.insert(victim_line, victim_dirty)
            if pushed_out is None or not pushed_out[1]:
                return
            victim_line, victim_dirty = pushed_out  # overflow writes back
        if victim_dirty:
            self.stats.inc("dcache.writebacks")
            if self.hotspots is not None:
                self.hotspots.note_dcache(self.access_context,
                                          "writebacks")
            self.next_level.writeback(victim_line, self._cycle)

    # ------------------------------------------------------------------
    # Write buffer interface
    # ------------------------------------------------------------------
    def buffer_store(self, line: int, byte_mask: int) -> bool:
        """Commit-side: park a retired store; False = stall commit."""
        return self.write_buffer.add(line, byte_mask)

    def drain_write_buffer(self) -> None:
        """Spend leftover port cycles emptying the write buffer."""
        if self.hotspots is not None:
            # Retired stores drain asynchronously; their port traffic
            # lands in the recorder's unattributed bucket.
            self.access_context = None
        while self.ports_free() > 0:
            entry = self.write_buffer.head()
            if entry is None:
                return
            result = self.store_access(entry.line)
            if result.status is AccessStatus.OK:
                self.write_buffer.pop()
            else:
                # MSHR_FULL (port spent) or BANK_CONFLICT (head-of-queue
                # blocking on a busy bank): retry next cycle.
                return
