"""Memory hierarchy: caches, line buffer, write buffer, ports, L2."""

from .cache import SetAssocCache
from .config import (
    CacheGeometry,
    DCacheConfig,
    ICacheConfig,
    LineBufferFill,
    LineBufferOnStore,
    MemSystemConfig,
    NextLevelConfig,
)
from .dcache import AccessResult, AccessStatus, DataCacheSystem
from .hierarchy import MemorySystem
from .icache import ICacheSystem
from .linebuffer import LineBuffer
from .nextlevel import NextLevel
from .victim import VictimCache
from .writebuffer import WriteBuffer, WriteBufferEntry

__all__ = [
    "SetAssocCache",
    "CacheGeometry",
    "DCacheConfig",
    "ICacheConfig",
    "LineBufferFill",
    "LineBufferOnStore",
    "MemSystemConfig",
    "NextLevelConfig",
    "AccessResult",
    "AccessStatus",
    "DataCacheSystem",
    "MemorySystem",
    "ICacheSystem",
    "LineBuffer",
    "NextLevel",
    "VictimCache",
    "WriteBuffer",
    "WriteBufferEntry",
]
