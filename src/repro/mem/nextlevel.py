"""The shared next level: unified L2 cache backed by main memory.

A single request stream with simple queueing: each request occupies the
L2 for ``occupancy`` cycles, so bursts of L1 misses serialise.  L2
misses add the memory latency.  This is deliberately simpler than the
L1 port machinery — the paper's experiments vary the L1 port subsystem
and keep the rest of the hierarchy fixed.
"""

from __future__ import annotations

from ..stats.counters import Stats
from .cache import SetAssocCache
from .config import NextLevelConfig


class NextLevel:
    """Unified L2 + memory, shared by the I- and D-side L1s."""

    def __init__(self, config: NextLevelConfig,
                 stats: Stats | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        self.cache = SetAssocCache(config.geometry, name="l2",
                                   stats=self.stats)
        self._next_free = 0

    def request(self, line: int, cycle: int) -> int:
        """An L1 miss fill request; returns the data-ready cycle."""
        start = max(cycle, self._next_free)
        self._next_free = start + self.config.occupancy
        queue_delay = start - cycle
        self.stats.inc("l2.requests")
        self.stats.inc("l2.queue_delay", queue_delay)
        if self.cache.lookup(line):
            self.stats.inc("l2.hits")
            return start + self.config.hit_latency
        self.stats.inc("l2.misses")
        victim = self.cache.fill(line)
        if victim is not None and victim[1]:
            self.stats.inc("l2.writebacks")
        return start + self.config.hit_latency + self.config.memory_latency

    def writeback(self, line: int, cycle: int) -> None:
        """A dirty L1 victim arrives; occupies the L2 but returns no data."""
        start = max(cycle, self._next_free)
        self._next_free = start + self.config.occupancy
        self.stats.inc("l2.l1_writebacks")
        if self.cache.lookup(line):
            self.cache.mark_dirty(line)
            return
        victim = self.cache.fill(line, dirty=True)
        if victim is not None and victim[1]:
            self.stats.inc("l2.writebacks")
