"""Command-line interface.

::

    repro workloads                 list registered workloads
    repro configs                   list machine configurations
    repro asm prog.s --list         assemble and show a listing
    repro run prog.s                assemble + run on the functional sim
    repro trace stream out.npz      build and save a workload trace
    repro simulate --workload stream --config 1P-wide+LB+SC
    repro experiment F2 --scale small
    repro experiment all

Also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .asm import AsmError, assemble
from .core import simulate as core_simulate
from .func import RunResult, SimError, run_bare
from .isa import INSTRUCTION_BYTES
from .presets import CONFIG_NAMES, EXTENDED_CONFIG_NAMES, machine
from .trace import load_trace, save_trace
from .workloads import SUITE_NAMES, WORKLOADS, build_os_mix_trace, build_trace


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(f"  {'name':<10} {'tags':<36} description")
    for name, spec in sorted(WORKLOADS.items()):
        marker = "*" if name in SUITE_NAMES else " "
        print(f"{marker} {name:<10} {', '.join(spec.tags):<36} "
              f"{spec.description}")
    print("\n* = in the default evaluation suite; plus 'os-mix' (the "
          "multiprogrammed mix under the mini-OS)")
    return 0


def _cmd_configs(args: argparse.Namespace) -> int:
    print("paper configurations:")
    for name in CONFIG_NAMES:
        dcache = machine(name).mem.dcache
        lb = f"LB({dcache.line_buffer_entries})" if dcache.has_line_buffer \
            else "-"
        print(f"  {name:<14} ports={dcache.ports} width={dcache.port_width}B"
              f" line_buffer={lb} combine_loads="
              f"{'y' if dcache.combine_loads else 'n'} combine_stores="
              f"{'y' if dcache.combine_stores else 'n'}")
    print("extended (banking ablation):")
    for name in EXTENDED_CONFIG_NAMES:
        dcache = machine(name).mem.dcache
        print(f"  {name:<14} ports={dcache.ports} banks={dcache.banks}")
    return 0


def _read_source(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(_read_source(args.source), source_name=args.source)
    print(f"text: {len(program.text)} instructions at "
          f"{program.text_base:#x}; data: {len(program.data)} bytes at "
          f"{program.data_base:#x}; entry {program.entry:#x}")
    if args.list:
        from .isa import encode
        for index, instr in enumerate(program.text):
            address = program.text_base + index * INSTRUCTION_BYTES
            word = encode(instr)
            print(f"{address:#08x}  {word:08x}  {instr}")
    return 0


def _print_run_result(result: RunResult) -> None:
    if result.console:
        print(result.console, end="" if result.console.endswith("\n")
              else "\n")
    print(f"exit code {result.exit_code}; {result.retired} instructions "
          f"retired ({result.loads} loads, {result.stores} stores, "
          f"{result.kernel_retired} kernel)")


def _cmd_run(args: argparse.Namespace) -> int:
    program = assemble(_read_source(args.source), source_name=args.source)
    result = run_bare(program, max_instructions=args.max_instructions,
                      collect_trace=args.trace is not None,
                      user_mode=not args.bare_metal)
    _print_run_result(result)
    if args.trace is not None:
        save_trace(args.trace, result.trace)
        print(f"trace ({len(result.trace)} records) written to {args.trace}")
    return 0


def _build_named_trace(name: str, scale: str):
    if name == "os-mix":
        return build_os_mix_trace(scale)
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; see 'repro workloads'")
    return build_trace(name, scale)


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = _build_named_trace(args.workload, args.scale)
    save_trace(args.output, trace)
    print(f"{args.workload} ({args.scale}): {len(trace)} records -> "
          f"{args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.trace_file:
        trace = load_trace(args.trace_file)
        label = args.trace_file
    else:
        trace = _build_named_trace(args.workload, args.scale)
        label = f"{args.workload} ({args.scale})"
    config = machine(args.config, issue_width=args.issue_width)
    result = core_simulate(trace, config)
    stats = result.stats
    print(f"{label} on {args.config} (issue width {args.issue_width}):")
    print(f"  {result.instructions} instructions, {result.cycles} cycles, "
          f"IPC {result.ipc:.3f}")
    print(f"  D-cache port uses {int(stats['dcache.port_uses'])}, "
          f"line-buffer loads {int(stats['lsq.lb_loads'])}, "
          f"combined loads {int(stats['lsq.combined_loads'])}, "
          f"combined stores {int(stats['wb.combined'])}")
    branches = stats["bpred.branches"]
    if branches:
        print(f"  branch accuracy "
              f"{stats['bpred.correct'] / branches:.3f} "
              f"({int(branches)} branches)")
    if args.stats:
        print(stats.format(indent="  "))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import os

    from .experiments import ALL_EXPERIMENTS
    if args.id == "all":
        ids = list(ALL_EXPERIMENTS)
    else:
        if args.id not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {args.id!r}; "
                f"choose from {', '.join(ALL_EXPERIMENTS)} or 'all'")
        ids = [args.id]
    if args.output:
        os.makedirs(args.output, exist_ok=True)
    for exp_id in ids:
        table = ALL_EXPERIMENTS[exp_id](args.scale)
        print(table.render())
        print()
        if args.output:
            extension = "csv" if args.csv else "txt"
            path = os.path.join(args.output,
                                f"{exp_id.lower()}_{args.scale}.{extension}")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(table.to_csv() if args.csv
                             else table.render() + "\n")
            print(f"written to {path}\n")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cache-port-efficiency reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list registered workloads") \
        .set_defaults(func=_cmd_workloads)
    sub.add_parser("configs", help="list machine configurations") \
        .set_defaults(func=_cmd_configs)

    asm = sub.add_parser("asm", help="assemble a source file")
    asm.add_argument("source")
    asm.add_argument("--list", action="store_true",
                     help="print an address/word/disassembly listing")
    asm.set_defaults(func=_cmd_asm)

    run = sub.add_parser("run", help="assemble and run on the "
                                     "functional simulator")
    run.add_argument("source")
    run.add_argument("--max-instructions", type=int, default=5_000_000)
    run.add_argument("--trace", help="save the dynamic trace to this .npz")
    run.add_argument("--bare-metal", action="store_true",
                     help="start in kernel mode (allows MFSR/MTSR/HALT)")
    run.set_defaults(func=_cmd_run)

    trace = sub.add_parser("trace", help="build and save a workload trace")
    trace.add_argument("workload")
    trace.add_argument("output")
    trace.add_argument("--scale", default="small",
                       choices=("tiny", "small", "full"))
    trace.set_defaults(func=_cmd_trace)

    simulate = sub.add_parser("simulate", help="run the timing core")
    simulate.add_argument("--workload", default="stream")
    simulate.add_argument("--scale", default="small",
                          choices=("tiny", "small", "full"))
    simulate.add_argument("--trace-file",
                          help="simulate a saved .npz trace instead")
    simulate.add_argument("--config", default="1P",
                          choices=CONFIG_NAMES + EXTENDED_CONFIG_NAMES)
    simulate.add_argument("--issue-width", type=int, default=4)
    simulate.add_argument("--stats", action="store_true",
                          help="dump every counter")
    simulate.set_defaults(func=_cmd_simulate)

    experiment = sub.add_parser("experiment",
                                help="regenerate a table/figure")
    experiment.add_argument("id", help="experiment id (T1, F1..F7, T2, "
                                       "A1..A6, B1, D1) or 'all'")
    experiment.add_argument("--scale", default="small",
                            choices=("tiny", "small", "full"))
    experiment.add_argument("--output",
                            help="also write each table into this directory")
    experiment.add_argument("--csv", action="store_true",
                            help="write CSV instead of plain text")
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (AsmError, SimError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
