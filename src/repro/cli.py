"""Command-line interface.

::

    repro workloads                 list registered workloads
    repro configs                   list machine configurations
    repro asm prog.s --list         assemble and show a listing
    repro run prog.s                assemble + run on the functional sim
    repro trace stream out.npz      build and save a workload trace
    repro simulate --workload stream --config 1P-wide+LB+SC
    repro simulate --workload synthetic --seed 7 --json
    repro simulate --events run.jsonl.gz
    repro simulate --metrics-interval 512 --json
    repro simulate --pipe-trace run.kanata --self-profile
    repro simulate --workload qsort --validate
    repro simulate --workload qsort --hotspots
    repro hotspots --workload qsort --annotate
    repro events run.jsonl.gz --pc 0x402000 --limit 10
    repro fuzz --seed 1 --count 50 --artifacts fuzz-artifacts
    repro fuzz --replay fuzz-artifacts/seed17.repro
    repro events run.jsonl.gz --event stall --limit 20
    repro events run.jsonl.gz --type wb.drain --cycle-range 1000:2000
    repro compare a.json b.json --tolerance 0.01
    repro experiment F2 --scale small
    repro experiment all
    repro experiment T2 --jobs 4 --progress --spans fleet.json
    repro simulate --workload stream --spans run_spans.json
    repro bench --quick --json
    repro bench --compare BENCH_host_2026-01-01.json --tolerance 0.1
    repro bench --ledger results.sqlite
    repro simulate --workload stream --json --ledger results.sqlite
    repro ledger --ledger results.sqlite info
    repro ledger --ledger results.sqlite ingest manifests/ 'BENCH_*.json'
    repro dash --ledger results.sqlite -o dash.html
    repro watch BENCH_new.json --ledger results.sqlite --gate
    repro corpus list
    repro corpus run --scale tiny
    repro corpus verify --scale tiny -o corpus-verify.json
    repro simulate --workload iostorm --scale small --seed 7

Also runnable as ``python -m repro``.  ``REPRO_LEDGER`` names a
default results-ledger database for every command that takes
``--ledger``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence

from .asm import AsmError, assemble
from .core import simulate as core_simulate
from .func import RunResult, SimError, run_bare
from .isa import INSTRUCTION_BYTES
from .obs import (HOTSPOT_SORTS, WHATIF_PORT, CritPathRecorder,
                  HotspotRecorder, JsonlTracer, PipeTrace,
                  SelfProfiler, SpanRecorder, build_critpath_report,
                  build_hotspots_report, build_run_report,
                  compare_documents, count_spans,
                  expand_manifest_paths, iter_events,
                  render_comparison, render_critpath_report,
                  render_hotspots_report, resolve_ledger_path,
                  summarize_events, write_chrome_trace)
from .obs import spans as obs_spans
from .presets import CONFIG_NAMES, EXTENDED_CONFIG_NAMES, machine
from .scenarios import SCENARIO_NAMES, SCENARIO_SCALES, SCENARIOS
from .trace import SyntheticConfig, generate, load_trace, save_trace
from .workloads import (SUITE_NAMES, WORKLOADS, build_os_mix_trace,
                        build_scenario_trace, build_trace)

#: Synthetic-stream length per scale (mirrors the workload suite's
#: tiny/small/full instruction budgets).
_SYNTHETIC_INSTRUCTIONS = {"tiny": 4_000, "small": 20_000, "full": 100_000}


def _cmd_workloads(args: argparse.Namespace) -> int:
    print(f"  {'name':<10} {'tags':<36} description")
    for name, spec in sorted(WORKLOADS.items()):
        marker = "*" if name in SUITE_NAMES else " "
        print(f"{marker} {name:<10} {', '.join(spec.tags):<36} "
              f"{spec.description}")
    print("\n* = in the default evaluation suite; plus 'os-mix' (the "
          "multiprogrammed mix under the mini-OS)")
    print("\nscenario corpus (seeded OS-activity generators; "
          "'repro corpus' for details):")
    for name in SCENARIO_NAMES:
        spec = SCENARIOS[name]
        print(f"  {name:<10} {', '.join(spec.tags):<36} "
              f"{spec.description}")
    return 0


def _cmd_configs(args: argparse.Namespace) -> int:
    print("paper configurations:")
    for name in CONFIG_NAMES:
        dcache = machine(name).mem.dcache
        lb = f"LB({dcache.line_buffer_entries})" if dcache.has_line_buffer \
            else "-"
        print(f"  {name:<14} ports={dcache.ports} width={dcache.port_width}B"
              f" line_buffer={lb} combine_loads="
              f"{'y' if dcache.combine_loads else 'n'} combine_stores="
              f"{'y' if dcache.combine_stores else 'n'}")
    print("extended (banking ablation):")
    for name in EXTENDED_CONFIG_NAMES:
        dcache = machine(name).mem.dcache
        print(f"  {name:<14} ports={dcache.ports} banks={dcache.banks}")
    return 0


def _read_source(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_asm(args: argparse.Namespace) -> int:
    program = assemble(_read_source(args.source), source_name=args.source)
    print(f"text: {len(program.text)} instructions at "
          f"{program.text_base:#x}; data: {len(program.data)} bytes at "
          f"{program.data_base:#x}; entry {program.entry:#x}")
    if args.list:
        from .isa import encode
        for index, instr in enumerate(program.text):
            address = program.text_base + index * INSTRUCTION_BYTES
            word = encode(instr)
            print(f"{address:#08x}  {word:08x}  {instr}")
    return 0


def _print_run_result(result: RunResult) -> None:
    if result.console:
        print(result.console, end="" if result.console.endswith("\n")
              else "\n")
    print(f"exit code {result.exit_code}; {result.retired} instructions "
          f"retired ({result.loads} loads, {result.stores} stores, "
          f"{result.kernel_retired} kernel)")


def _cmd_run(args: argparse.Namespace) -> int:
    program = assemble(_read_source(args.source), source_name=args.source)
    result = run_bare(program, max_instructions=args.max_instructions,
                      collect_trace=args.trace is not None,
                      user_mode=not args.bare_metal)
    _print_run_result(result)
    if args.trace is not None:
        save_trace(args.trace, result.trace)
        print(f"trace ({len(result.trace)} records) written to {args.trace}")
    return 0


def _build_named_trace(name: str, scale: str, seed: int | None = None):
    if name == "synthetic":
        return generate(SyntheticConfig(
            instructions=_SYNTHETIC_INSTRUCTIONS[scale],
            seed=seed if seed is not None else 1))
    if name in SCENARIOS:
        return build_scenario_trace(name, scale, seed=seed)
    if seed is not None:
        raise SystemExit("--seed only applies to 'synthetic' and "
                         "scenario workloads; assembly workloads are "
                         "deterministic")
    if name == "os-mix":
        return build_os_mix_trace(scale)
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; see 'repro workloads'")
    return build_trace(name, scale)


def _cmd_trace(args: argparse.Namespace) -> int:
    trace = _build_named_trace(args.workload, args.scale, args.seed)
    save_trace(args.output, trace)
    seed_note = f", seed {args.seed}" if args.seed is not None else ""
    print(f"{args.workload} ({args.scale}{seed_note}): {len(trace)} "
          f"records -> {args.output}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    recorder = SpanRecorder("repro simulate") if args.spans else None
    trace_file = None
    with obs_spans.activate(recorder):
        if args.trace_file:
            if args.seed is not None:
                raise SystemExit("--seed cannot be combined with "
                                 "--trace-file")
            trace = load_trace(args.trace_file)
            workload, scale, trace_file = None, None, args.trace_file
            label = args.trace_file
        else:
            trace = _build_named_trace(args.workload, args.scale,
                                       args.seed)
            workload, scale = args.workload, args.scale
            label = f"{args.workload} ({args.scale})"
    config = machine(args.config, issue_width=args.issue_width)
    tracer = JsonlTracer(args.events) if args.events else None
    pipe = PipeTrace() if args.pipe_trace else None
    profiler = None
    if args.self_profile is not None:
        interval = args.metrics_interval or None
        profiler = SelfProfiler(interval) if interval else SelfProfiler()
    validator = None
    if args.validate:
        from .validate import InvariantChecker
        validator = InvariantChecker(tracer=tracer)
    critpath = None
    if getattr(args, "critpath", None) is not None:
        critpath = CritPathRecorder(whatif=[WHATIF_PORT])
    hotspots = None
    if getattr(args, "hotspots", None) is not None:
        hotspots = HotspotRecorder()
    start = time.perf_counter()
    try:
        result = core_simulate(trace, config, tracer=tracer,
                               metrics_interval=args.metrics_interval,
                               pipe_trace=pipe, profiler=profiler,
                               validator=validator, spans=recorder,
                               critpath=critpath, hotspots=hotspots)
    finally:
        if tracer is not None:
            tracer.close()
    wall_time = time.perf_counter() - start
    stats = result.stats

    if pipe is not None:
        pipe.write(args.pipe_trace)
    if recorder is not None:
        write_chrome_trace(args.spans, recorder.events())
    profile_path = None
    if profiler is not None:
        profile_path = args.self_profile or (
            f"BENCH_selfprofile_{workload or 'trace'}_{args.config}.json")
        profiler.write(profile_path)

    critpath_path = None
    critpath_report = None
    if critpath is not None:
        critpath_report = build_critpath_report(
            critpath, result, config, workload=workload, scale=scale,
            seed=args.seed, trace_file=trace_file, wall_time=wall_time)
        critpath_path = args.critpath or (
            f"CRITPATH_{workload or 'trace'}_{args.config}.json")
        with open(critpath_path, "w", encoding="utf-8") as handle:
            json.dump(critpath_report, handle, indent=2)
            handle.write("\n")

    hotspots_path = None
    hotspots_report = None
    if hotspots is not None:
        hotspots.check_conservation(result)
        hotspots_report = build_hotspots_report(
            hotspots, result, config, workload=workload, scale=scale,
            seed=args.seed, trace_file=trace_file, wall_time=wall_time,
            disasm=_workload_disasm(workload, scale))
        hotspots_path = args.hotspots or (
            f"HOTSPOTS_{workload or 'trace'}_{args.config}.json")
        with open(hotspots_path, "w", encoding="utf-8") as handle:
            json.dump(hotspots_report, handle, indent=2)
            handle.write("\n")

    ledger_path = resolve_ledger_path(args.ledger)
    if args.json or ledger_path is not None:
        report = build_run_report(result, config, workload=workload,
                                  scale=scale, seed=args.seed,
                                  trace_file=trace_file,
                                  wall_time=wall_time,
                                  violations=validator.violations
                                  if validator is not None else None)
        if ledger_path is not None:
            from .obs.ledger import Ledger
            with Ledger(ledger_path) as ledger:
                added = ledger.ingest(report, source="simulate")
                if critpath_report is not None:
                    ledger.ingest(critpath_report, source=critpath_path)
                if hotspots_report is not None:
                    ledger.ingest(hotspots_report, source=hotspots_path)
            print(f"ledger: {'ingested into' if added else 'already in'} "
                  f"{ledger_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0 if validator is None or validator.ok else 1

    dcache = config.mem.dcache
    lb_loads = int(stats["lsq.lb_loads"]) if dcache.has_line_buffer \
        else "n/a"
    combined_loads = int(stats["lsq.combined_loads"]) \
        if dcache.combine_loads else "n/a"
    combined_stores = int(stats["wb.combined"]) if dcache.combine_stores \
        else "n/a"
    print(f"{label} on {args.config} (issue width {args.issue_width}):")
    print(f"  {result.instructions} instructions, {result.cycles} cycles, "
          f"IPC {result.ipc:.3f}")
    print(f"  D-cache port uses {int(stats['dcache.port_uses'])}, "
          f"line-buffer loads {lb_loads}, "
          f"combined loads {combined_loads}, "
          f"combined stores {combined_stores}")
    branches = stats["bpred.branches"]
    if branches:
        print(f"  branch accuracy "
              f"{stats['bpred.correct'] / branches:.3f} "
              f"({int(branches)} branches)")
    else:
        print("  branch accuracy n/a (no branches)")
    if result.ledger is not None:
        print(f"  stalls: {result.ledger.summary()}")
    if result.metrics is not None:
        print(f"  metrics: {result.metrics.summary()}")
    if args.events:
        print(f"  events: {tracer.emitted} -> {args.events}")
    if pipe is not None:
        print(f"  pipe trace: {len(pipe.records)} instructions -> "
              f"{args.pipe_trace}")
    if recorder is not None:
        print(f"  spans: {count_spans(recorder.events())} -> "
              f"{args.spans} (load in https://ui.perfetto.dev)")
    if profiler is not None:
        print(f"  self-profile: {profiler.summary()} -> {profile_path}")
    if critpath is not None:
        print(f"  critpath: {critpath.summary()} -> {critpath_path}")
    if hotspots is not None:
        print(f"  hotspots: {hotspots.summary()} -> {hotspots_path}")
    if validator is not None:
        if validator.ok:
            print("  validation: all invariants hold")
        else:
            print(f"  validation: {len(validator.violations)} violations; "
                  f"first: {validator.violations[0]}")
    if args.stats:
        print(stats.format(indent="  "))
    if validator is not None and not validator.ok:
        return 1
    return 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    from .obs.critpath import DEFAULT_WINDOW

    if args.trace_file:
        trace = load_trace(args.trace_file)
        workload, scale, trace_file = None, None, args.trace_file
    else:
        trace = build_trace(args.workload, args.scale)
        workload, scale, trace_file = args.workload, args.scale, None
    whatif: list[object] = [WHATIF_PORT]
    for spec in args.whatif or ():
        whatif.append(tuple(part.strip()
                            for part in spec.split(",") if part.strip()))
    try:
        recorder = CritPathRecorder(window=args.window or DEFAULT_WINDOW,
                                    whatif=whatif)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    config = machine(args.config)
    start = time.perf_counter()
    result = core_simulate(trace, config, critpath=recorder)
    wall_time = time.perf_counter() - start
    recorder.check_conservation()
    report = build_critpath_report(recorder, result, config,
                                   workload=workload, scale=scale,
                                   trace_file=trace_file,
                                   wall_time=wall_time)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    ledger_path = resolve_ledger_path(args.ledger)
    if ledger_path is not None:
        from .obs.ledger import Ledger
        with Ledger(ledger_path) as ledger:
            added = ledger.ingest(report,
                                  source=args.output or "critpath")
        print(f"ledger: {'ingested into' if added else 'already in'} "
              f"{ledger_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_critpath_report(report, top=args.top))
        if args.output:
            print(f"\nmanifest -> {args.output}")
    return 0


def _workload_disasm(name: str | None,
                     scale: str | None) -> dict[int, str] | None:
    """PC -> disassembly for plain suite workloads, assembled fresh.
    Scenario/os-mix traces relocate user code per process slot and
    synthetic traces have no program, so those stay unannotated."""
    if name is None or name not in WORKLOADS:
        return None
    spec = WORKLOADS[name]
    source = spec.source(**spec.params(scale))
    program = assemble(source, source_name=f"<{name}>")
    return {program.text_base + index * INSTRUCTION_BYTES: str(instr)
            for index, instr in enumerate(program.text)}


def _cmd_hotspots(args: argparse.Namespace) -> int:
    if args.trace_file:
        if args.seed is not None:
            raise SystemExit("--seed cannot be combined with --trace-file")
        trace = load_trace(args.trace_file)
        workload, scale, trace_file = None, None, args.trace_file
    else:
        trace = _build_named_trace(args.workload, args.scale, args.seed)
        workload, scale, trace_file = args.workload, args.scale, None
    recorder = HotspotRecorder()
    config = machine(args.config)
    start = time.perf_counter()
    result = core_simulate(trace, config, hotspots=recorder)
    wall_time = time.perf_counter() - start
    recorder.check_conservation(result)
    report = build_hotspots_report(recorder, result, config,
                                   workload=workload, scale=scale,
                                   seed=args.seed, trace_file=trace_file,
                                   wall_time=wall_time,
                                   disasm=_workload_disasm(workload,
                                                           scale))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    ledger_path = resolve_ledger_path(args.ledger)
    if ledger_path is not None:
        from .obs.ledger import Ledger
        with Ledger(ledger_path) as ledger:
            added = ledger.ingest(report,
                                  source=args.output or "hotspots")
        print(f"ledger: {'ingested into' if added else 'already in'} "
              f"{ledger_path}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_hotspots_report(report, top=args.top,
                                     annotate=args.annotate,
                                     sort=args.sort))
        if args.output:
            print(f"\nmanifest -> {args.output}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import os

    from .experiments import ALL_EXPERIMENTS
    from .experiments.engine import Engine, EngineJobError
    from .experiments.runner import capture_reports
    from .obs import build_experiment_manifest
    from .workloads import trace_cache_dir, trace_cache_stats
    if args.id.lower() == "all":
        ids = list(ALL_EXPERIMENTS)
    else:
        exp_id = args.id.upper()
        if exp_id not in ALL_EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {args.id!r}; "
                f"choose from {', '.join(ALL_EXPERIMENTS)} or 'all'")
        ids = [exp_id]
    ledger_path = resolve_ledger_path(args.ledger)
    # In --json mode the experiment manifest (runs included) is
    # ingested whole at the end; in table mode the engine's workers
    # ingest their own run reports instead.  Never both — the same
    # run would land twice under different manifests.
    engine = Engine(jobs=args.jobs, trace_cache=args.trace_cache,
                    metrics_interval=args.metrics_interval,
                    progress=args.progress,
                    collect_spans=bool(args.spans),
                    ledger=None if args.json else ledger_path)
    if args.output:
        os.makedirs(args.output, exist_ok=True)
    status = 0
    try:
        for exp_id in ids:
            if args.json:
                start = time.perf_counter()
                before = trace_cache_stats()
                with capture_reports() as runs:
                    table = ALL_EXPERIMENTS[exp_id](args.scale,
                                                    engine=engine)
                cache = {key: value - before[key]
                         for key, value in trace_cache_stats().items()}
                directory = trace_cache_dir()
                cache["dir"] = str(directory) if directory else None
                manifest = build_experiment_manifest(
                    exp_id, args.scale, table, runs,
                    wall_time=time.perf_counter() - start,
                    jobs=engine.jobs, trace_cache=cache,
                    engine_summary=engine.last_summary)
                if ledger_path is not None:
                    from .obs.ledger import Ledger
                    with Ledger(ledger_path) as ledger:
                        added = ledger.ingest(manifest,
                                              source=f"experiment {exp_id}")
                    print(f"ledger: {'ingested into' if added else 'already in'} "
                          f"{ledger_path}", file=sys.stderr)
                document = json.dumps(manifest, indent=2)
                if args.output:
                    path = os.path.join(
                        args.output, f"{exp_id.lower()}_{args.scale}.json")
                    with open(path, "w", encoding="utf-8") as handle:
                        handle.write(document + "\n")
                    print(f"written to {path}")
                else:
                    print(document)
                continue
            table = ALL_EXPERIMENTS[exp_id](args.scale, engine=engine)
            print(table.render())
            print()
            if args.output:
                extension = "csv" if args.csv else "txt"
                path = os.path.join(
                    args.output,
                    f"{exp_id.lower()}_{args.scale}.{extension}")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(table.to_csv() if args.csv
                                 else table.render() + "\n")
                print(f"written to {path}\n")
    except EngineJobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        status = 1
    if args.spans and engine.span_events is not None:
        write_chrome_trace(args.spans, engine.span_events)
        print(f"spans: {count_spans(engine.span_events)} -> "
              f"{args.spans} (load in https://ui.perfetto.dev)",
              file=sys.stderr)
    return status


def _load_manifest(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not JSON ({exc})")
    if not isinstance(document, dict):
        raise SystemExit(f"error: {path} is not a JSON object")
    return document


def _render_bench(manifest: dict) -> str:
    lines = [f"repro bench ({manifest['mode']}, "
             f"{manifest['settings']['repeats']} repeats, "
             f"{manifest['settings']['warmup']} warmup):"]
    for result in manifest["results"]:
        kips = result["kips"]
        lines.append(
            f"  {result['label']:<28} {kips['median']:8.1f} kIPS "
            f"(iqr {kips['iqr']:.1f})  {result['instructions']:>8} "
            f"instr  {result['cycles']:>8} cycles")
    lines.append("trace generation (cold = functional simulation):")
    for timing in manifest["tracegen"]:
        lines.append(f"  {timing['label']:<28} cold {timing['cold_s']:.3f}s"
                     f"  warm {timing['warm_s']:.4f}s"
                     f"  ({timing['instructions']} records)")
    lines.append(f"total wall time "
                 f"{manifest['host']['wall_time_s']:.1f}s")
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (compare_bench, default_bench_path,
                        render_bench_comparison, run_bench,
                        validate_bench_manifest)
    from .obs import SchemaError
    if args.candidate and not args.compare:
        raise SystemExit("--candidate only applies with --compare")
    if args.tolerance < 0:
        raise SystemExit("--tolerance cannot be negative")

    if args.compare and args.candidate:
        # Pure comparison of two saved manifests; nothing is run.
        baseline = _load_manifest(args.compare)
        candidate = _load_manifest(args.candidate)
        labels = (args.compare, args.candidate)
    else:
        if args.compare:
            baseline = _load_manifest(args.compare)
        candidate = run_bench(quick=args.quick, repeats=args.repeats,
                              warmup=args.warmup)
        path = args.output or str(default_bench_path())
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(candidate, handle, indent=2)
            handle.write("\n")
        ledger_path = resolve_ledger_path(args.ledger)
        if ledger_path is not None:
            from .obs.ledger import Ledger
            with Ledger(ledger_path) as ledger:
                added = ledger.ingest(candidate, source=path)
            print(f"ledger: {'ingested into' if added else 'already in'} "
                  f"{ledger_path}", file=sys.stderr)
        if args.json:
            print(json.dumps(candidate, indent=2))
        else:
            print(_render_bench(candidate))
        print(f"manifest -> {path}", file=sys.stderr)
        if not args.compare:
            return 0
        labels = (args.compare, path)

    for label, manifest in zip(labels, (baseline, candidate)):
        try:
            validate_bench_manifest(manifest)
        except SchemaError as exc:
            print(f"error: {label} is not a valid bench manifest: {exc}",
                  file=sys.stderr)
            return 2
    report = compare_bench(baseline, candidate, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_bench_comparison(report, *labels))
    if not report["deterministic_ok"]:
        return 2
    return 0 if report["ok"] else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import os

    from .trace import fuzz as fuzz_mod
    if args.replay:
        try:
            payload = fuzz_mod.load_artifact(args.replay)
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        failures = fuzz_mod.replay_artifact(payload, args.max_instructions)
        if failures:
            print(f"{args.replay}: still failing:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"{args.replay}: passes on every config")
        return 0
    configs = tuple(args.config) if args.config else fuzz_mod.DEFAULT_CONFIGS
    for name in configs:
        machine(name)  # reject unknown names before the campaign
    config = fuzz_mod.FuzzConfig(
        seed=args.seed, count=args.count, configs=configs,
        units=args.units, max_instructions=args.max_instructions,
        shrink=not args.no_shrink)
    progress = (lambda line: print(f"  {line}")) if args.verbose else None
    report = fuzz_mod.run_fuzz(config, progress=progress)
    last = args.seed + args.count - 1
    if report.ok:
        print(f"{report.programs} programs (seeds {args.seed}..{last}) x "
              f"{len(configs)} configs: ok")
        return 0
    print(f"{len(report.failures)} of {report.programs} programs failed:")
    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
    for failure in report.failures:
        extra = (f" (+{len(failure.failures) - 1} more)"
                 if len(failure.failures) > 1 else "")
        print(f"  seed {failure.seed}: {failure.failures[0]}{extra}")
        if failure.shrunk_source is not None:
            instructions = sum(
                1 for line in failure.shrunk_source.splitlines()
                if line.startswith("    "))
            print(f"    shrunk to ~{instructions} instructions")
        if args.artifacts:
            path = os.path.join(args.artifacts,
                                f"seed{failure.seed}.repro")
            fuzz_mod.save_artifact(path, failure, configs)
            print(f"    reproducer -> {path}")
    return 1


def _parse_cycle_range(text: str) -> tuple[int | None, int | None]:
    """``A:B`` -> (since, until); either side may be empty."""
    head, sep, tail = text.partition(":")
    if not sep:
        raise SystemExit(f"--cycle-range wants FIRST:LAST, got {text!r}")
    try:
        since = int(head) if head else None
        until = int(tail) if tail else None
    except ValueError:
        raise SystemExit(f"--cycle-range wants integer cycles, got {text!r}")
    if since is not None and until is not None and until < since:
        raise SystemExit(f"--cycle-range is empty: {text!r}")
    return since, until


def _parse_pc(text: str, flag: str = "--pc") -> int:
    """Accept a PC as decimal or 0x-prefixed hex."""
    try:
        return int(text, 0)
    except ValueError:
        raise SystemExit(f"{flag} wants a decimal or 0x-hex address, "
                         f"got {text!r}")


def _parse_pc_range(text: str) -> tuple[int | None, int | None]:
    """``A:B`` -> (low, high); either side may be empty; hex accepted."""
    head, sep, tail = text.partition(":")
    if not sep:
        raise SystemExit(f"--pc-range wants FIRST:LAST, got {text!r}")
    low = _parse_pc(head, "--pc-range") if head else None
    high = _parse_pc(tail, "--pc-range") if tail else None
    if low is not None and high is not None and high < low:
        raise SystemExit(f"--pc-range is empty: {text!r}")
    return low, high


def _cmd_events(args: argparse.Namespace) -> int:
    import gzip
    if args.cycle_range:
        if args.since is not None or args.until is not None:
            raise SystemExit("--cycle-range replaces --since/--until; "
                             "give one or the other")
        args.since, args.until = _parse_cycle_range(args.cycle_range)
    pc = _parse_pc(args.pc) if args.pc is not None else None
    pc_range = _parse_pc_range(args.pc_range) if args.pc_range else None
    if pc is not None and pc_range is not None:
        raise SystemExit("--pc and --pc-range are mutually exclusive")
    events = set(args.event) if args.event else None
    try:
        if args.limit:
            shown = 0
            for record in iter_events(args.capture, events,
                                      args.since, args.until,
                                      pc=pc, pc_range=pc_range):
                print(json.dumps(record, separators=(",", ":")))
                shown += 1
                if shown >= args.limit:
                    break
            return 0
        summary = summarize_events(args.capture, events,
                                   args.since, args.until,
                                   pc=pc, pc_range=pc_range)
        print(summary.render())
        return 0
    except (json.JSONDecodeError, gzip.BadGzipFile, UnicodeDecodeError) \
            as exc:
        print(f"error: {args.capture} is not a JSONL event capture "
              f"({exc})", file=sys.stderr)
        return 1


def _read_document(path: str) -> dict | None:
    """Load one JSON manifest, printing the error and returning None
    on failure (callers turn that into exit code 2)."""
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not JSON ({exc})", file=sys.stderr)
        return None
    if not isinstance(document, dict):
        print(f"error: {path} is not a JSON object", file=sys.stderr)
        return None
    return document


def _pair_manifests(side_a: list[str],
                    side_b: list[str]) -> list[tuple[str, str]] | None:
    """Pair two expanded path sets for comparison.  One-vs-one pairs
    directly; sets pair by basename (how a directory of experiment
    manifests lines up against another run's directory).  Returns
    None (an error, already printed) when nothing pairs up."""
    import os
    if len(side_a) == 1 and len(side_b) == 1:
        return [(side_a[0], side_b[0])]
    by_name_a = {os.path.basename(path): path for path in side_a}
    by_name_b = {os.path.basename(path): path for path in side_b}
    common = sorted(set(by_name_a) & set(by_name_b))
    if not common:
        print("error: no manifest basenames in common between the two "
              "sides", file=sys.stderr)
        return None
    for name in sorted(set(by_name_a) ^ set(by_name_b)):
        side = "baseline" if name in by_name_a else "candidate"
        print(f"note: {name} only on the {side} side; skipped",
              file=sys.stderr)
    return [(by_name_a[name], by_name_b[name]) for name in common]


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.tolerance < 0:
        print("error: --tolerance cannot be negative", file=sys.stderr)
        return 2
    try:
        side_a = expand_manifest_paths([args.a])
        side_b = expand_manifest_paths([args.b])
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pairs = _pair_manifests(side_a, side_b)
    if pairs is None:
        return 2
    ignore = frozenset(args.ignore) if args.ignore else None
    reports = []
    for path_a, path_b in pairs:
        document_a = _read_document(path_a)
        document_b = _read_document(path_b)
        if document_a is None or document_b is None:
            return 2
        report = compare_documents(document_a, document_b,
                                   tolerance=args.tolerance,
                                   ignore=ignore)
        reports.append((path_a, path_b, report))
    if args.json:
        if len(reports) == 1:
            print(json.dumps(reports[0][2], indent=2))
        else:
            print(json.dumps([{"a": path_a, "b": path_b,
                               "report": report}
                              for path_a, path_b, report in reports],
                             indent=2))
    else:
        for path_a, path_b, report in reports:
            print(render_comparison(report, path_a, path_b,
                                    limit=args.limit))
    return 0 if all(report["equal"]
                    for _, _, report in reports) else 1


def _require_ledger(flag: str | None) -> str:
    path = resolve_ledger_path(flag)
    if path is None:
        raise SystemExit("error: no ledger database given (use --ledger "
                         "PATH or set REPRO_LEDGER)")
    return path


def _cmd_ledger(args: argparse.Namespace) -> int:
    from .obs.ledger import Ledger
    with Ledger(_require_ledger(args.ledger)) as ledger:
        if args.action == "info":
            counts = ledger.counts()
            versions = ledger.code_versions()
            print(f"{ledger.path} (ledger schema v{ledger.db_version})")
            print(f"  manifests: {counts['manifests']} "
                  f"({counts['manifests.run']} run, "
                  f"{counts['manifests.experiment']} experiment, "
                  f"{counts['manifests.bench']} bench, "
                  f"{counts['manifests.compare']} compare, "
                  f"{counts['manifests.critpath']} critpath, "
                  f"{counts['manifests.hotspots']} hotspots)")
            print(f"  normalized rows: {counts['runs']} runs, "
                  f"{counts['bench_cells']} bench cells, "
                  f"{counts['experiments']} experiment tables, "
                  f"{counts['critpaths']} critpath stacks, "
                  f"{counts['hotspots']} hotspot profiles")
            print(f"  code versions ({len(versions)}): "
                  f"{', '.join(versions) if versions else '-'}")
            return 0
        if args.action == "ingest":
            try:
                paths = expand_manifest_paths(args.paths)
            except FileNotFoundError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            added = skipped = 0
            for path in paths:
                document = _read_document(path)
                if document is None:
                    return 2
                try:
                    if ledger.ingest(document, source=path,
                                     code_version=args.code_version):
                        added += 1
                    else:
                        skipped += 1
                except ValueError as exc:
                    print(f"error: {path}: {exc}", file=sys.stderr)
                    return 2
            print(f"{added} ingested, {skipped} already present "
                  f"-> {ledger.path}")
            return 0
        if args.action == "export":
            count = ledger.export_jsonl(args.path)
            print(f"{count} manifests -> {args.path}")
            return 0
        added, skipped = ledger.import_jsonl(args.path)
        print(f"{added} imported, {skipped} already present "
              f"-> {ledger.path}")
        return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from .obs.dash import build_dashboard
    from .obs.ledger import Ledger
    with Ledger(_require_ledger(args.ledger)) as ledger:
        document = build_dashboard(ledger) if args.title is None \
            else build_dashboard(ledger, title=args.title)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"dashboard -> {args.output}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from .obs.ledger import Ledger
    from .obs.watch import exit_code, render_watch, watch_document
    if args.window < 1:
        print("error: --window must be >= 1", file=sys.stderr)
        return 2
    if args.tolerance is not None and args.tolerance < 0:
        print("error: --tolerance cannot be negative", file=sys.stderr)
        return 2
    try:
        candidates = expand_manifest_paths(args.candidates)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worst = 0
    reports = []
    with Ledger(_require_ledger(args.ledger)) as ledger:
        for path in candidates:
            document = _read_document(path)
            if document is None:
                return 2
            try:
                report = watch_document(ledger, document,
                                        window=args.window,
                                        tolerance=args.tolerance)
            except ValueError as exc:
                print(f"error: {path}: {exc}", file=sys.stderr)
                return 2
            reports.append({"path": path, "report": report})
            worst = max(worst, exit_code(report))
            if not args.json:
                print(render_watch(report, path))
            if args.ingest:
                added = ledger.ingest(document, source=path)
                print(f"ledger: {path} "
                      f"{'ingested' if added else 'already present'}",
                      file=sys.stderr)
    if args.json:
        if len(reports) == 1:
            print(json.dumps(reports[0]["report"], indent=2))
        else:
            print(json.dumps(reports, indent=2))
    return worst if args.gate else 0


def _corpus_names(requested: list[str]) -> list[str]:
    if not requested:
        return list(SCENARIO_NAMES)
    unknown = [name for name in requested if name not in SCENARIOS]
    if unknown:
        raise SystemExit(f"unknown scenario(s) {unknown}; see "
                         f"'repro corpus list'")
    return requested


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .scenarios import run_scenario

    if args.action == "list":
        print(f"  {'name':<10} {'scales':<19} {'default seed':<12} "
              f"description")
        for name in SCENARIO_NAMES:
            spec = SCENARIOS[name]
            print(f"  {name:<10} {'/'.join(spec.scales):<19} "
                  f"{spec.default_seed:<12} {spec.description}")
        print("\nevery scenario is seeded (--seed) and ships a "
              "machine-checkable expected-results contract; see "
              "docs/WORKLOADS.md")
        return 0

    names = _corpus_names(args.scenario)
    if args.action == "run":
        from .workloads import trace_summary
        print(f"{'scenario':<10} {'scale':<7} {'seed':<6} "
              f"{'records':>9} {'kernel%':>8} {'traps':>6}  exits")
        for name in names:
            build, run = run_scenario(SCENARIOS[name], args.scale,
                                      seed=args.seed, collect_trace=True)
            summary = trace_summary(run.result.trace)
            exits = ",".join(str(code) for code
                             in run.result.process_exit_codes)
            print(f"{name:<10} {args.scale:<7} {build.seed:<6} "
                  f"{len(run.result.trace):>9} "
                  f"{100 * summary['kernel_fraction']:>7.1f}% "
                  f"{run.result.traps_taken:>6}  [{exits}]")
        print("all contracts satisfied")
        return 0

    # verify
    from .scenarios.verify import verify_corpus
    configs = tuple(args.config) if args.config else None
    kwargs = {"configs": configs} if configs else {}
    progress = None if args.json else \
        (lambda line: print(line, file=sys.stderr))
    table, ok = verify_corpus(args.scale, names=names, seed=args.seed,
                              progress=progress, **kwargs)
    document = {"schema": "repro.corpus/1", "scale": args.scale,
                "ok": ok, "table": table.as_dict()}
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(table.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"verification table -> {args.output}",
              file=sys.stderr if args.json else sys.stdout)
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cache-port-efficiency reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list registered workloads") \
        .set_defaults(func=_cmd_workloads)
    sub.add_parser("configs", help="list machine configurations") \
        .set_defaults(func=_cmd_configs)

    asm = sub.add_parser("asm", help="assemble a source file")
    asm.add_argument("source")
    asm.add_argument("--list", action="store_true",
                     help="print an address/word/disassembly listing")
    asm.set_defaults(func=_cmd_asm)

    run = sub.add_parser("run", help="assemble and run on the "
                                     "functional simulator")
    run.add_argument("source")
    run.add_argument("--max-instructions", type=int, default=5_000_000)
    run.add_argument("--trace", help="save the dynamic trace to this .npz")
    run.add_argument("--bare-metal", action="store_true",
                     help="start in kernel mode (allows MFSR/MTSR/HALT)")
    run.set_defaults(func=_cmd_run)

    trace = sub.add_parser("trace", help="build and save a workload trace")
    trace.add_argument("workload")
    trace.add_argument("output")
    trace.add_argument("--scale", default="small",
                       choices=("tiny", "small", "medium", "full"))
    trace.add_argument("--seed", type=int,
                       help="generator seed (synthetic or scenario "
                            "workloads only)")
    trace.set_defaults(func=_cmd_trace)

    simulate = sub.add_parser("simulate", help="run the timing core")
    simulate.add_argument("--workload", default="stream",
                          help="suite workload, 'os-mix', a scenario, "
                               "or 'synthetic'")
    simulate.add_argument("--scale", default="small",
                          choices=("tiny", "small", "medium", "full"))
    simulate.add_argument("--trace-file",
                          help="simulate a saved .npz trace instead")
    simulate.add_argument("--config", default="1P",
                          choices=CONFIG_NAMES + EXTENDED_CONFIG_NAMES)
    simulate.add_argument("--issue-width", type=int, default=4)
    simulate.add_argument("--seed", type=int,
                          help="generator seed (synthetic or scenario "
                               "workloads only)")
    simulate.add_argument("--json", action="store_true",
                          help="emit a machine-readable run report instead "
                               "of the human summary")
    simulate.add_argument("--events", metavar="PATH",
                          help="capture a JSONL event trace (.gz to gzip); "
                               "inspect with 'repro events'")
    simulate.add_argument("--metrics-interval", type=int, metavar="CYCLES",
                          help="sample interval telemetry (IPC, port "
                               "utilization, occupancies) every N cycles; "
                               "series land in the --json report")
    simulate.add_argument("--pipe-trace", metavar="PATH",
                          help="export per-instruction stage timings as a "
                               "Konata/Kanata pipeline trace")
    simulate.add_argument("--self-profile", metavar="PATH", nargs="?",
                          const="",
                          help="profile the simulator itself (host time per "
                               "component per interval) into PATH (default "
                               "BENCH_selfprofile_<workload>_<config>.json)")
    simulate.add_argument("--spans", metavar="PATH",
                          help="record host-time spans (pipeline chunks, "
                               "stage slices, memory refills, trace cache "
                               "I/O) as a Chrome-trace JSON loadable in "
                               "Perfetto")
    simulate.add_argument("--validate", action="store_true",
                          help="attach the microarchitectural invariant "
                               "checker (see docs/VALIDATION.md); "
                               "violations land in the --json report and "
                               "flip the exit status")
    simulate.add_argument("--critpath", metavar="PATH", nargs="?",
                          const="",
                          help="record the dependence-graph critical "
                               "path and write a repro.critpath/1 "
                               "manifest to PATH (default "
                               "CRITPATH_<workload>_<config>.json); "
                               "see 'repro critpath' for the report "
                               "view")
    simulate.add_argument("--hotspots", metavar="PATH", nargs="?",
                          const="",
                          help="attach the per-PC hotspot profiler and "
                               "write a repro.hotspots/1 manifest to "
                               "PATH (default "
                               "HOTSPOTS_<workload>_<config>.json); "
                               "see 'repro hotspots' for the report "
                               "view")
    simulate.add_argument("--stats", action="store_true",
                          help="dump every counter")
    simulate.add_argument("--ledger", metavar="DB",
                          help="ingest the run report into this results "
                               "ledger (default: REPRO_LEDGER)")
    simulate.set_defaults(func=_cmd_simulate)

    critpath = sub.add_parser(
        "critpath",
        help="critical-path bottleneck analysis: CPI stack, top "
             "critical instructions, what-if predictions")
    critpath.add_argument("--workload", default="stream",
                          help="suite workload to analyse")
    critpath.add_argument("--scale", default="small",
                          choices=("tiny", "small", "full"))
    critpath.add_argument("--trace-file",
                          help="analyse a saved .npz trace instead")
    critpath.add_argument("--config", default="1P",
                          choices=CONFIG_NAMES + EXTENDED_CONFIG_NAMES)
    critpath.add_argument("--window", type=int, metavar="COMMITS",
                          help="analysis window size in commits "
                               "(default 8192; memory stays O(window))")
    critpath.add_argument("--whatif", action="append", metavar="SPEC",
                          help="extra what-if scenario: comma-separated "
                               "edge classes, each 'class' (zero its "
                               "waits) or 'class/N' (divide by N); "
                               "repeatable.  The 1P->2P port scenario "
                               "is always included")
    critpath.add_argument("--top", type=int, default=10,
                          help="critical instructions to list")
    critpath.add_argument("--json", action="store_true",
                          help="emit the repro.critpath/1 manifest "
                               "instead of the ASCII report")
    critpath.add_argument("--output", metavar="PATH",
                          help="also write the manifest to PATH")
    critpath.add_argument("--ledger", metavar="DB",
                          help="ingest the manifest into this results "
                               "ledger (default: REPRO_LEDGER)")
    critpath.set_defaults(func=_cmd_critpath)

    hotspots = sub.add_parser(
        "hotspots",
        help="program-level attribution: per-PC port/stall/miss "
             "counters, address-stream analytics, kernel/user split")
    hotspots.add_argument("--workload", default="stream",
                          help="suite workload, 'os-mix', a scenario, "
                               "or 'synthetic'")
    hotspots.add_argument("--scale", default="small",
                          choices=("tiny", "small", "medium", "full"))
    hotspots.add_argument("--seed", type=int,
                          help="generator seed (synthetic or scenario "
                               "workloads only)")
    hotspots.add_argument("--trace-file",
                          help="analyse a saved .npz trace instead")
    hotspots.add_argument("--config", default="1P",
                          choices=CONFIG_NAMES + EXTENDED_CONFIG_NAMES)
    hotspots.add_argument("--top", type=int, default=10,
                          help="rows to list in the table view")
    hotspots.add_argument("--sort", default="port",
                          choices=HOTSPOT_SORTS,
                          help="row ranking: port-conflict slots, total "
                               "stall cycles, executions, or misses "
                               "(default port)")
    hotspots.add_argument("--annotate", action="store_true",
                          help="annotated-disassembly view: every PC in "
                               "address order with its counters, plus "
                               "the top port-conflict PC's stride/"
                               "set-heatmap block")
    hotspots.add_argument("--json", action="store_true",
                          help="emit the repro.hotspots/1 manifest "
                               "instead of the ASCII report")
    hotspots.add_argument("--output", metavar="PATH",
                          help="also write the manifest to PATH")
    hotspots.add_argument("--ledger", metavar="DB",
                          help="ingest the manifest into this results "
                               "ledger (default: REPRO_LEDGER)")
    hotspots.set_defaults(func=_cmd_hotspots)

    fuzz = sub.add_parser("fuzz",
                          help="differential-fuzz the timing core against "
                               "the functional golden model")
    fuzz.add_argument("--seed", type=int, default=1,
                      help="first program seed (default 1)")
    fuzz.add_argument("--count", type=int, default=20,
                      help="number of programs (consecutive seeds)")
    fuzz.add_argument("--config", action="append", metavar="NAME",
                      help="machine configuration to check (repeatable; "
                           "default: 1P, 2P, 1P-wide+LB+SC)")
    fuzz.add_argument("--units", type=int, default=24,
                      help="body units per generated program")
    fuzz.add_argument("--max-instructions", type=int, default=200_000)
    fuzz.add_argument("--artifacts", metavar="DIR",
                      help="save each failing program as a replayable "
                           ".repro reproducer in this directory")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip reducing failing programs to minimal "
                           "reproducers")
    fuzz.add_argument("--replay", metavar="FILE",
                      help="re-check a saved .repro artifact instead of "
                           "fuzzing")
    fuzz.add_argument("--verbose", action="store_true",
                      help="print per-seed progress")
    fuzz.set_defaults(func=_cmd_fuzz)

    events = sub.add_parser("events",
                            help="filter/summarize a captured event trace")
    events.add_argument("capture", help="JSONL file from simulate --events")
    events.add_argument("--event", "--type", action="append", dest="event",
                        metavar="NAME",
                        help="keep only this event type (repeatable; "
                             "--type is an alias)")
    events.add_argument("--since", type=int, metavar="CYCLE",
                        help="drop events before this cycle")
    events.add_argument("--until", type=int, metavar="CYCLE",
                        help="drop events after this cycle")
    events.add_argument("--cycle-range", metavar="FIRST:LAST",
                        help="keep cycles FIRST..LAST inclusive (either "
                             "side may be empty; replaces --since/--until)")
    events.add_argument("--pc", metavar="ADDR",
                        help="keep only events whose pc equals ADDR "
                             "(decimal or 0x-hex); events without a pc "
                             "field are dropped")
    events.add_argument("--pc-range", metavar="FIRST:LAST",
                        help="keep events with pc in FIRST..LAST "
                             "inclusive (either side may be empty; "
                             "hex accepted); events without a pc field "
                             "are dropped")
    events.add_argument("--limit", type=int, metavar="N",
                        help="print the first N matching events as JSONL "
                             "instead of a summary")
    events.set_defaults(func=_cmd_events)

    compare = sub.add_parser("compare",
                             help="diff two --json reports/manifests "
                                  "(or two directories/globs of them, "
                                  "paired by basename)")
    compare.add_argument("a", help="baseline JSON document, directory, "
                                   "or glob")
    compare.add_argument("b", help="candidate JSON document, directory, "
                                   "or glob")
    compare.add_argument("--tolerance", type=float, default=0.0,
                         metavar="REL",
                         help="relative tolerance for numeric leaves "
                              "(|a-b| <= REL*max(|a|,|b|); default 0)")
    compare.add_argument("--ignore", action="append", metavar="KEY",
                         help="skip subtrees under this key (repeatable; "
                              "default: host, engine)")
    compare.add_argument("--limit", type=int, default=20, metavar="N",
                         help="show at most N deltas in the human output")
    compare.add_argument("--json", action="store_true",
                         help="emit the repro.compare/1 delta report")
    compare.set_defaults(func=_cmd_compare)

    experiment = sub.add_parser("experiment",
                                help="regenerate a table/figure")
    experiment.add_argument("id", help="experiment id (T1, F1..F7, T2, "
                                       "A1..A6, B1, D1) or 'all'")
    experiment.add_argument("--scale", default="small",
                            choices=("tiny", "small", "full"))
    experiment.add_argument("--output",
                            help="also write each table into this directory")
    experiment.add_argument("--csv", action="store_true",
                            help="write CSV instead of plain text")
    experiment.add_argument("--json", action="store_true",
                            help="emit a versioned manifest (table + every "
                                 "run report) instead of the rendered table")
    experiment.add_argument("--jobs", type=int, metavar="N",
                            help="run each experiment's simulation grid "
                                 "across N worker processes (default: "
                                 "REPRO_JOBS or 1; tables are identical "
                                 "for any N)")
    experiment.add_argument("--trace-cache", metavar="DIR",
                            help="persistent trace cache directory "
                                 "(default: REPRO_TRACE_CACHE or "
                                 "~/.cache/repro-traces; 'off' disables)")
    experiment.add_argument("--metrics-interval", type=int,
                            metavar="CYCLES",
                            help="sample interval telemetry for every run "
                                 "in the grid; series land in the --json "
                                 "manifest's run reports")
    experiment.add_argument("--spans", metavar="PATH",
                            help="record one merged fleet timeline (parent "
                                 "warm-up + every worker's jobs) as a "
                                 "Chrome-trace JSON loadable in Perfetto")
    experiment.add_argument("--progress", action="store_true",
                            help="live single-line fleet progress on "
                                 "stderr (jobs done/total, ETA, aggregate "
                                 "kIPS, trace-cache hit ratio)")
    experiment.add_argument("--ledger", metavar="DB",
                            help="ingest results into this results "
                                 "ledger: the manifest with --json, "
                                 "per-job run reports otherwise "
                                 "(default: REPRO_LEDGER)")
    experiment.set_defaults(func=_cmd_experiment)

    bench = sub.add_parser("bench",
                           help="benchmark the simulator itself (host "
                                "throughput over a pinned matrix)")
    bench.add_argument("--quick", action="store_true",
                       help="the tiny-scale CI smoke matrix instead of "
                            "the full small-scale one")
    bench.add_argument("--repeats", type=int, metavar="N",
                       help="timed repetitions per cell (default: 3 for "
                            "--quick, 5 otherwise)")
    bench.add_argument("--warmup", type=int, default=1, metavar="N",
                       help="untimed warmup runs per cell (default 1)")
    bench.add_argument("--output", metavar="PATH",
                       help="manifest path (default "
                            "BENCH_<host>_<date>.json)")
    bench.add_argument("--json", action="store_true",
                       help="print the repro.bench/1 manifest (and the "
                            "comparison report, with --compare) as JSON")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="compare against this saved manifest; exits 1 "
                            "if throughput regressed beyond --tolerance, "
                            "2 if simulated results differ")
    bench.add_argument("--candidate", metavar="PATH",
                       help="with --compare: diff this saved manifest "
                            "instead of running the matrix")
    bench.add_argument("--tolerance", type=float, default=0.1,
                       metavar="REL",
                       help="relative throughput tolerance for --compare "
                            "(default 0.1)")
    bench.add_argument("--ledger", metavar="DB",
                       help="ingest the fresh manifest into this results "
                            "ledger (default: REPRO_LEDGER)")
    bench.set_defaults(func=_cmd_bench)

    ledger = sub.add_parser("ledger",
                            help="inspect/maintain a results-ledger "
                                 "database (SQLite)")
    ledger.add_argument("--ledger", metavar="DB",
                        help="ledger database path (default: "
                             "REPRO_LEDGER)")
    actions = ledger.add_subparsers(dest="action", required=True)
    actions.add_parser("info", help="counts, schema version, code "
                                    "versions").set_defaults(
        func=_cmd_ledger)
    ingest = actions.add_parser("ingest",
                                help="ingest manifests (files, "
                                     "directories, or globs)")
    ingest.add_argument("paths", nargs="+",
                        help="manifest files, directories, or globs")
    ingest.add_argument("--code-version", metavar="VERSION",
                        help="stamp for manifests that predate "
                             "code-version stamping")
    ingest.set_defaults(func=_cmd_ledger)
    export = actions.add_parser("export",
                                help="export the store as diffable "
                                     "JSONL")
    export.add_argument("path", help="output JSONL path")
    export.set_defaults(func=_cmd_ledger)
    importer = actions.add_parser("import",
                                  help="import a JSONL export "
                                       "(idempotent)")
    importer.add_argument("path", help="input JSONL path")
    importer.set_defaults(func=_cmd_ledger)

    dash = sub.add_parser("dash",
                          help="render a self-contained HTML dashboard "
                               "from the results ledger")
    dash.add_argument("--ledger", metavar="DB",
                      help="ledger database path (default: "
                           "REPRO_LEDGER)")
    dash.add_argument("-o", "--output", default="dash.html",
                      metavar="PATH",
                      help="output HTML path (default dash.html)")
    dash.add_argument("--title", help="dashboard title")
    dash.set_defaults(func=_cmd_dash)

    watch = sub.add_parser("watch",
                           help="gate fresh manifests against ledger "
                                "history (throughput + determinism)")
    watch.add_argument("candidates", nargs="+",
                       help="candidate manifests: files, directories, "
                            "or globs (run, experiment, or bench)")
    watch.add_argument("--ledger", metavar="DB",
                       help="ledger database path (default: "
                            "REPRO_LEDGER)")
    watch.add_argument("--window", type=int, default=5, metavar="N",
                       help="history window per key: compare against "
                            "the median of the last N entries "
                            "(default 5)")
    watch.add_argument("--tolerance", type=float, metavar="REL",
                       help="relative throughput tolerance (default: "
                            "the bench-compare default, 0.1)")
    watch.add_argument("--gate", action="store_true",
                       help="exit 1 on a throughput regression and 2 "
                            "on a determinism break (default: report "
                            "only, exit 0)")
    watch.add_argument("--ingest", action="store_true",
                       help="ingest each candidate after checking it")
    watch.add_argument("--json", action="store_true",
                       help="emit repro.watch/1 report(s) as JSON")
    watch.set_defaults(func=_cmd_watch)

    corpus = sub.add_parser("corpus",
                            help="OS-activity scenario corpus: list, "
                                 "run, verify")
    corpus_actions = corpus.add_subparsers(dest="action", required=True)
    corpus_actions.add_parser(
        "list", help="catalogue of scenario families").set_defaults(
        func=_cmd_corpus)
    corpus_run = corpus_actions.add_parser(
        "run", help="functionally run scenarios and check their "
                    "expected-results contracts")
    corpus_verify = corpus_actions.add_parser(
        "verify", help="full co-execution verification: contract + "
                       "golden/invariant timing replay + fast-path "
                       "differential, one pass/fail table")
    for sub_parser in (corpus_run, corpus_verify):
        sub_parser.add_argument("scenario", nargs="*",
                                help="scenario names (default: all)")
        sub_parser.add_argument("--scale", default="tiny",
                                choices=SCENARIO_SCALES,
                                help="scenario scale (default tiny)")
        sub_parser.add_argument("--seed", type=int,
                                help="generator seed (default: each "
                                     "scenario's default seed)")
        sub_parser.set_defaults(func=_cmd_corpus)
    corpus_verify.add_argument("--config", action="append",
                               metavar="NAME",
                               choices=CONFIG_NAMES,
                               help="machine configuration to verify "
                                    "on (repeatable; default: 1P, 2P, "
                                    "1P-wide+LB+SC)")
    corpus_verify.add_argument("--json", action="store_true",
                               help="emit the repro.corpus/1 table as "
                                    "JSON")
    corpus_verify.add_argument("-o", "--output", metavar="PATH",
                               help="also write the JSON table to PATH "
                                    "(CI artifact)")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (AsmError, SimError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
