"""Golden-model differential checking.

The timing core is trace-driven: it never computes architectural
values, so its correctness claim is "I committed exactly the retirement
stream the functional interpreter produced, in order".  This module
checks that claim by replaying the commit stream against a **fresh**
:class:`repro.func.interp.Interpreter` instance running the same
program in lock step: at every commit the golden model must be at the
committed record's PC, agree on the decoded instruction (opclass,
destination, sources), on the effective address of memory operations,
and on branch direction; the golden model then steps, which also
replays syscalls in retirement order through its own host handler.

The first divergence is reported with full context (commit index,
expected/actual values, and the most recent commits); subsequent
commits are not checked — one wrong step invalidates everything after
it.

At drain the checker exposes architectural **digests** (registers+PC
and memory) computed from the golden state; these are by construction
the state after the last committed instruction, and match the digests
:func:`repro.func.run.run_bare` reports for the same program because
the final (never-traced) exit syscall does not mutate state.

:class:`GoldenChecker` replays bare user-mode traces.
:class:`SystemGoldenChecker` replays full-system (mini-OS) traces —
kernel instructions, syscalls, and timer interrupts included: it
rebuilds the same kernel+user image and, because interrupt delivery is
deterministic in retired-instruction counts and trap deliveries retire
nothing, the replayed commit stream lines up instruction for
instruction with the timing core's.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

from ..func.exceptions import SimError, SimHalted
from ..func.interp import _BRANCH_OPS, Interpreter, load_program
from ..func.memory import ConsoleDevice, Memory
from ..func.run import DEFAULT_STACK_TOP
from ..func.syscalls import HostSyscalls
from ..isa import Program, decode
from ..kernel.image import build_system
from ..isa.opcodes import OpClass
from ..trace.record import TraceRecord
from .base import Validator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import OoOCore
    from ..core.uop import Uop

_MASK64 = (1 << 64) - 1
_SP = 2
_CONTEXT = 6  # recent commits kept for divergence reports


class GoldenChecker(Validator):
    """Lock-step replay of the commit stream against the interpreter."""

    def __init__(self, program: Program,
                 trace: Sequence[TraceRecord] | None = None,
                 stack_top: int = DEFAULT_STACK_TOP,
                 tracer=None, strict: bool = False) -> None:
        super().__init__(tracer=tracer, strict=strict)
        self.memory = Memory()
        console = ConsoleDevice()
        self.memory.add_device(console)
        load_program(self.memory, program)
        self.interp = Interpreter(self.memory, entry=program.entry,
                                  syscall_handler=HostSyscalls(console))
        self.interp.state.status = 0  # user mode, like run_bare
        self.interp.state.write_reg(_SP, stack_top)
        self._init_tracking(trace)

    def _init_tracking(self,
                       trace: Sequence[TraceRecord] | None) -> None:
        self._expected = len(trace) if trace is not None else None
        self._commits = 0
        self._dead = False
        self._context: deque[str] = deque(maxlen=_CONTEXT)
        #: A next_pc mismatch is only a divergence if another commit
        #: follows — the final record of a flushed trace carries a
        #: synthesized (sequential) next_pc.
        self._pending_next: str | None = None

    # ------------------------------------------------------------------
    def on_commit(self, uop: "Uop", cycle: int) -> None:
        if self._dead:
            return
        record = uop.record
        self._commits += 1
        if self._pending_next is not None:
            detail, self._pending_next = self._pending_next, None
            self._diverge(cycle, "next_pc", detail)
            return
        state = self.interp.state
        if state.pc != record.pc:
            self._diverge(cycle, "pc",
                          f"golden model at pc {state.pc:#x}, core "
                          f"committed pc {record.pc:#x}")
            return
        if not self._check_decode(cycle, record):
            return
        try:
            self.interp.step()
        except SimHalted:
            self._diverge(cycle, "halt",
                          f"golden model halted at pc {record.pc:#x} but "
                          f"the record retired in the functional run")
            return
        except SimError as exc:
            self._diverge(cycle, "trap",
                          f"golden model faulted at pc {record.pc:#x}: "
                          f"{exc}")
            return
        # Interrupt deliveries are interpreter steps that retire nothing
        # and emit no trace record; the trace encodes them only as the
        # previous record's next_pc pointing at the trap vector.  Replay
        # any delivery due here so the pc chain lines up.  (Bare
        # user-mode runs never arm the timer, so this is a no-op for
        # plain GoldenChecker.)
        while self.interp._timer_pending():
            self.interp.step()
        if state.pc != record.next_pc:
            self._pending_next = (
                f"record at pc {record.pc:#x} says next_pc "
                f"{record.next_pc:#x}, golden model went to "
                f"{state.pc:#x}")
        self._context.append(f"#{self._commits} pc={record.pc:#x}")

    def _check_decode(self, cycle: int, record: TraceRecord) -> bool:
        """The committed record must describe the instruction the golden
        memory holds at its PC — catches trace corruption and
        self-modifying-code hazards alike."""
        state = self.interp.state
        try:
            instr = decode(self.memory.load(record.pc, 4))
        except Exception as exc:  # decode/load failures of any flavour
            self._diverge(cycle, "decode",
                          f"pc {record.pc:#x}: golden memory does not "
                          f"decode ({exc})")
            return False
        info = instr.info
        if info.opclass is not record.opclass or \
                instr.dest != record.dest or \
                instr.sources != tuple(record.sources):
            self._diverge(cycle, "decode",
                          f"pc {record.pc:#x}: record says "
                          f"{record.opclass.value} dest={record.dest} "
                          f"sources={tuple(record.sources)}, golden "
                          f"memory decodes {instr}")
            return False
        if info.is_mem:
            address = (state.regs[instr.rs1] + instr.imm) & _MASK64
            if address != record.mem_addr or info.mem_size != \
                    record.mem_size:
                self._diverge(cycle, "mem_addr",
                              f"pc {record.pc:#x}: record accesses "
                              f"{record.mem_addr:#x}/{record.mem_size}B, "
                              f"golden model computes {address:#x}/"
                              f"{info.mem_size}B")
                return False
        if info.opclass is OpClass.BRANCH:
            taken = _BRANCH_OPS[instr.opcode](state.regs[instr.rs1],
                                              state.regs[instr.rs2])
            if taken != record.taken:
                self._diverge(cycle, "branch",
                              f"pc {record.pc:#x}: record says "
                              f"taken={record.taken}, golden model "
                              f"evaluates taken={taken}")
                return False
        return True

    def _diverge(self, cycle: int, what: str, detail: str) -> None:
        self._dead = True
        context = "; ".join(self._context) or "none"
        self.report(cycle, f"golden.{what}",
                    f"{detail} (commit #{self._commits}; "
                    f"recent: {context})")

    # ------------------------------------------------------------------
    def on_drain(self, core: "OoOCore", cycle: int) -> None:
        if self._dead:
            return
        self._pending_next = None  # final record: synthesized next_pc
        expected = self._expected if self._expected is not None \
            else len(core._trace)
        if self._commits != expected:
            self._diverge(cycle, "commit_count",
                          f"core committed {self._commits} of "
                          f"{expected} trace records")

    def digests(self) -> dict[str, str] | None:
        """Architectural end-state digests (None after a divergence —
        the golden state is no longer meaningful)."""
        if self._dead:
            return None
        return {"registers": self.interp.state.digest(),
                "memory": self.memory.content_digest()}


class SystemGoldenChecker(GoldenChecker):
    """Lock-step replay for full-system (mini-OS) traces.

    Rebuilds the same kernel+user image as the functional run that
    produced the trace and replays the commit stream through a fresh
    kernel-mode interpreter — kernel instructions, syscall dispatches
    and context switches are checked exactly like user instructions.
    Timer interrupts are deterministic in retired-instruction counts
    and their delivery retires nothing, so :meth:`on_commit`'s drain
    loop reproduces every delivery point without needing them in the
    trace.

    The end digests equal the functional run's (the final ``halt``
    never retires and never mutates state), so scenario contracts can
    compare them directly.
    """

    def __init__(self, programs: Sequence[Program],
                 timer_interval: int = 20_000,
                 trace: Sequence[TraceRecord] | None = None,
                 tracer=None, strict: bool = False) -> None:
        Validator.__init__(self, tracer=tracer, strict=strict)
        system = build_system(list(programs), timer_interval)
        self.memory = system.memory
        self.interp = Interpreter(self.memory, entry=system.entry,
                                  trap_vector=system.trap_vector)
        self._init_tracking(trace)
