"""Differential validation: golden-model replay, invariant checking.

See ``docs/VALIDATION.md`` for the invariant catalogue and workflow.
"""

from .base import (MAX_VIOLATIONS, ValidationError, ValidationSuite,
                   Validator, Violation)
from .golden import GoldenChecker, SystemGoldenChecker
from .invariants import InvariantChecker

__all__ = [
    "MAX_VIOLATIONS",
    "GoldenChecker",
    "InvariantChecker",
    "SystemGoldenChecker",
    "ValidationError",
    "ValidationSuite",
    "Validator",
    "Violation",
]
