r"""Microarchitectural invariant checking for the timing core.

The catalogue (documented in ``docs/VALIDATION.md``):

* **rob.order / rob.incomplete / rob.premature** — the ROB retires in
  strict program order, and only uops whose completion cycle has passed.
* **lsq.load_order / lsq.store_order** — the load and store queues stay
  age-ordered (they are filled at dispatch, in program order).
* **lsq.forward.\*** — forwarding legality: a load serviced from the
  store queue must have an older, address-known, data-ready store fully
  covering its bytes; a write-buffer forward must be covered by a
  buffered entry; a line-buffer service requires the line resident with
  no fill in flight.
* **lsq.ready_past** — load data can never be ready in the past.
* **dcache.ports / dcache.mshrs** — per-cycle port issue and in-flight
  fills never exceed the configured counts.
* **wb.occupancy / lb.occupancy / victim.occupancy / rob.occupancy /
  iq.occupancy / lq.occupancy / sq.occupancy** — structure occupancy
  never exceeds capacity.
* **drain.\*** — at end of run the LSQ, ROB, fetch queue and event
  queues are empty, every trace record committed, and no MSHR leaked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import MAX_VIOLATIONS, Validator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.lsq import LoadStoreQueue
    from ..core.pipeline import OoOCore
    from ..core.uop import Uop


class InvariantChecker(Validator):
    """Checks the structural invariants above on every hook."""

    def __init__(self, tracer=None, strict: bool = False,
                 max_violations: int = MAX_VIOLATIONS) -> None:
        super().__init__(tracer=tracer, strict=strict,
                         max_violations=max_violations)
        self._last_seq: int | None = None

    # ------------------------------------------------------------------
    def on_commit(self, uop: "Uop", cycle: int) -> None:
        if self._last_seq is not None and uop.seq <= self._last_seq:
            self.report(cycle, "rob.order",
                        f"committed seq {uop.seq} after seq "
                        f"{self._last_seq} (pc={uop.record.pc:#x})")
        self._last_seq = uop.seq
        if not uop.completed:
            self.report(cycle, "rob.incomplete",
                        f"seq {uop.seq} (pc={uop.record.pc:#x}) committed "
                        f"without completing")
        elif uop.complete_cycle > cycle:
            self.report(cycle, "rob.premature",
                        f"seq {uop.seq} committed at cycle {cycle} but "
                        f"completes at {uop.complete_cycle}")

    # ------------------------------------------------------------------
    def on_load_serviced(self, lsq: "LoadStoreQueue", load: "Uop",
                         ready: int, source: str, cycle: int) -> None:
        if ready <= cycle:
            self.report(cycle, "lsq.ready_past",
                        f"load seq {load.seq} data ready at {ready} "
                        f"<= current cycle")
        if source == "sq":
            if not self._sq_forward_legal(lsq, load):
                self.report(cycle, "lsq.forward.sq",
                            f"load seq {load.seq} line {load.line} "
                            f"mask {load.byte_mask:#x} forwarded with no "
                            f"covering older data-ready store")
        elif source == "wb":
            if not lsq.dcache.write_buffer.covers(load.line,
                                                  load.byte_mask):
                self.report(cycle, "lsq.forward.wb",
                            f"load seq {load.seq} line {load.line} "
                            f"mask {load.byte_mask:#x} forwarded from an "
                            f"uncovering write buffer")
        elif source == "lb":
            dcache = lsq.dcache
            if dcache.line_buffer is None or \
                    not dcache.line_buffer.contains(load.line):
                self.report(cycle, "lsq.forward.lb",
                            f"load seq {load.seq} serviced by the line "
                            f"buffer but line {load.line} is not resident")
            elif dcache.fill_pending(load.line):
                self.report(cycle, "lsq.forward.lb",
                            f"load seq {load.seq} read line {load.line} "
                            f"from the line buffer while its fill is "
                            f"still in flight")

    @staticmethod
    def _sq_forward_legal(lsq: "LoadStoreQueue", load: "Uop") -> bool:
        for store in lsq.stores:
            if store.seq >= load.seq or not store.addr_known:
                continue
            if store.line != load.line or store.data_waiting:
                continue
            if store.byte_mask & load.byte_mask == load.byte_mask:
                return True
        return False

    # ------------------------------------------------------------------
    def on_cycle(self, core: "OoOCore", cycle: int) -> None:
        cfg = core.cfg
        dcache = core.mem.dcache
        dconf = dcache.config
        if dcache.ports_used > dconf.ports:
            self.report(cycle, "dcache.ports",
                        f"{dcache.ports_used} port issues with "
                        f"{dconf.ports} ports")
        if dcache.mshrs_busy() > dconf.mshrs:
            self.report(cycle, "dcache.mshrs",
                        f"{dcache.mshrs_busy()} fills in flight with "
                        f"{dconf.mshrs} MSHRs")
        self._check_occupancy(cycle, "wb", len(dcache.write_buffer),
                              dconf.write_buffer_depth)
        if dcache.line_buffer is not None:
            self._check_occupancy(cycle, "lb", len(dcache.line_buffer),
                                  dcache.line_buffer.entries)
        if dcache.victim_cache is not None:
            self._check_occupancy(cycle, "victim",
                                  len(dcache.victim_cache),
                                  dcache.victim_cache.entries)
        self._check_occupancy(cycle, "rob", len(core._rob), cfg.rob_size)
        self._check_occupancy(cycle, "iq", len(core._iq), cfg.iq_size)
        self._check_occupancy(cycle, "lq", len(core.lsq.loads),
                              cfg.lq_size)
        self._check_occupancy(cycle, "sq", len(core.lsq.stores),
                              cfg.sq_size)
        self._check_age_order(cycle, "lsq.load_order", core.lsq.loads)
        self._check_age_order(cycle, "lsq.store_order", core.lsq.stores)

    def _check_occupancy(self, cycle: int, name: str, occupancy: int,
                         capacity: int) -> None:
        if occupancy > capacity:
            self.report(cycle, f"{name}.occupancy",
                        f"{occupancy} entries in a {capacity}-entry "
                        f"structure")

    def _check_age_order(self, cycle: int, check: str,
                         queue: list["Uop"]) -> None:
        previous = -1
        for uop in queue:
            if uop.seq <= previous:
                self.report(cycle, check,
                            f"seq {uop.seq} queued behind seq {previous}")
                return
            previous = uop.seq

    # ------------------------------------------------------------------
    def on_drain(self, core: "OoOCore", cycle: int) -> None:
        lsq = core.lsq
        if lsq.loads or lsq.stores:
            self.report(cycle, "drain.lsq",
                        f"{len(lsq.loads)} loads / {len(lsq.stores)} "
                        f"stores leaked in the LSQ")
        if core._rob or core._fetch_queue or core._iq:
            self.report(cycle, "drain.core",
                        f"rob={len(core._rob)} iq={len(core._iq)} "
                        f"fq={len(core._fetch_queue)} not empty at drain")
        pending = sum(len(uops) for uops in core._events_complete.values())
        pending += sum(len(uops) for uops in core._events_addr.values())
        if pending:
            self.report(cycle, "drain.events",
                        f"{pending} scheduled events never fired")
        dcache = core.mem.dcache
        if dcache.mshrs_busy() > dcache.config.mshrs:
            self.report(cycle, "drain.mshrs",
                        f"{dcache.mshrs_busy()} fills in flight at drain "
                        f"with {dcache.config.mshrs} MSHRs")
        if core._committed != len(core._trace):
            self.report(cycle, "drain.commit_count",
                        f"committed {core._committed} of "
                        f"{len(core._trace)} trace records")
