"""Validator plumbing shared by the golden-model and invariant checkers.

A :class:`Validator` plugs into :class:`repro.core.pipeline.OoOCore`
through four hooks — per committed uop, per serviced load, per cycle,
and once at drain — following the repo's zero-overhead-when-off
discipline: the core holds ``None`` by default and every hook site is a
single ``is None`` check.

Violations are collected (bounded) and, when a tracer is attached,
emitted as ``validate.violation`` events so they land in the same JSONL
stream as the rest of the run.  ``strict=True`` turns the first
violation into a :class:`ValidationError` so CI fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..func.exceptions import SimError
from ..obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.lsq import LoadStoreQueue
    from ..core.pipeline import OoOCore
    from ..core.uop import Uop

#: Default cap on collected violations — a broken invariant usually
#: fires every cycle, and the first few instances carry all the signal.
MAX_VIOLATIONS = 100


@dataclass(frozen=True)
class Violation:
    """One observed rule break."""

    cycle: int
    check: str
    detail: str

    def as_dict(self) -> dict[str, object]:
        return {"cycle": self.cycle, "check": self.check,
                "detail": self.detail}

    def __str__(self) -> str:
        return f"[cycle {self.cycle}] {self.check}: {self.detail}"


class ValidationError(SimError):
    """Raised by a strict validator on the first violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class Validator:
    """Base class: no-op hooks plus violation bookkeeping."""

    def __init__(self, tracer: Tracer | None = None, strict: bool = False,
                 max_violations: int = MAX_VIOLATIONS) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.strict = strict
        self.max_violations = max_violations
        self.violations: list[Violation] = []

    # -- hook points (called by the core when a validator is attached) --
    def on_commit(self, uop: "Uop", cycle: int) -> None:
        """One uop left the ROB head this cycle."""

    def on_load_serviced(self, lsq: "LoadStoreQueue", load: "Uop",
                         ready: int, source: str, cycle: int) -> None:
        """The LSQ routed a load (``source`` names where the data
        comes from: sq/wb/lb/hit/miss/secondary)."""

    def on_cycle(self, core: "OoOCore", cycle: int) -> None:
        """End of one simulated cycle (all stages done)."""

    def on_drain(self, core: "OoOCore", cycle: int) -> None:
        """The run loop exited; the machine should be empty."""

    def digests(self) -> dict[str, str] | None:
        """Architectural end-state digests, when the validator tracks
        them (the golden checker does; invariant checking does not)."""
        return None

    # -- reporting -----------------------------------------------------
    def report(self, cycle: int, check: str, detail: str) -> None:
        """Record one violation (raises in strict mode)."""
        violation = Violation(cycle, check, detail)
        if self.strict:
            raise ValidationError(violation)
        if len(self.violations) >= self.max_violations:
            return
        self.violations.append(violation)
        if self.tracer.enabled:
            self.tracer.emit(cycle, "validate.violation", check=check,
                             detail=detail)

    @property
    def ok(self) -> bool:
        return not self.violations


class ValidationSuite(Validator):
    """Fans every hook out to a list of child validators."""

    def __init__(self, children: list[Validator]) -> None:
        super().__init__()
        self.children = list(children)

    def on_commit(self, uop: "Uop", cycle: int) -> None:
        for child in self.children:
            child.on_commit(uop, cycle)

    def on_load_serviced(self, lsq: "LoadStoreQueue", load: "Uop",
                         ready: int, source: str, cycle: int) -> None:
        for child in self.children:
            child.on_load_serviced(lsq, load, ready, source, cycle)

    def on_cycle(self, core: "OoOCore", cycle: int) -> None:
        for child in self.children:
            child.on_cycle(core, cycle)

    def on_drain(self, core: "OoOCore", cycle: int) -> None:
        for child in self.children:
            child.on_drain(core, cycle)

    def digests(self) -> dict[str, str] | None:
        for child in self.children:
            digests = child.digests()
            if digests is not None:
                return digests
        return None

    @property
    def all_violations(self) -> list[Violation]:
        collected = list(self.violations)
        for child in self.children:
            collected.extend(child.violations)
        return collected

    @property
    def ok(self) -> bool:
        return all(child.ok for child in self.children)
