"""Opcode definitions and static metadata for the mini RISC ISA.

Every opcode carries an :class:`OpInfo` record describing its encoding
format, which execution class it belongs to (used by the timing core to
pick a functional unit and latency), and — for memory operations — the
access size and signedness.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """Mnemonics of the mini RISC ISA."""

    # --- integer ALU, register-register -------------------------------
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    # --- integer ALU, register-immediate ------------------------------
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"
    SLTIU = "sltiu"
    LUI = "lui"
    # --- integer multiply / divide -------------------------------------
    MUL = "mul"
    MULH = "mulh"
    DIV = "div"
    REM = "rem"
    # --- loads ----------------------------------------------------------
    LB = "lb"
    LBU = "lbu"
    LH = "lh"
    LHU = "lhu"
    LW = "lw"
    LWU = "lwu"
    LD = "ld"
    FLD = "fld"
    # --- stores ----------------------------------------------------------
    SB = "sb"
    SH = "sh"
    SW = "sw"
    SD = "sd"
    FSD = "fsd"
    # --- floating point (double precision) ------------------------------
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FMOV = "fmov"
    FCVT_D_L = "fcvt.d.l"   # int64 -> double
    FCVT_L_D = "fcvt.l.d"   # double -> int64 (truncate)
    FEQ = "feq"
    FLT = "flt"
    FLE = "fle"
    # --- control flow -----------------------------------------------------
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    J = "j"
    JAL = "jal"
    JR = "jr"
    JALR = "jalr"
    # --- system ------------------------------------------------------------
    SYSCALL = "syscall"
    ERET = "eret"
    MFSR = "mfsr"
    MTSR = "mtsr"
    NOP = "nop"
    HALT = "halt"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Opcode.{self.name}"


class OpClass(enum.Enum):
    """Execution class, used to select a functional unit and latency."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP_ADD = "fp_add"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    SYSTEM = "system"


class Format(enum.Enum):
    """Binary encoding format (see :mod:`repro.isa.encoding`)."""

    R = "r"        # opcode rd rs1 rs2
    I = "i"        # opcode rd rs1 imm15
    MEM = "mem"    # opcode rd rs1 imm15 (loads) / rs2 rs1 imm15 (stores)
    B = "b"        # opcode rs1 rs2 imm15 (pc-relative, in instruction units)
    U = "u"        # opcode rd imm20
    SYS = "sys"    # opcode rd rs1 imm15 (system register number in imm)


class Bank(enum.Enum):
    """Which register bank an operand field addresses."""

    INT = "int"
    FP = "fp"
    NONE = "none"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata about one opcode."""

    opclass: OpClass
    fmt: Format
    rd_bank: Bank = Bank.NONE
    rs1_bank: Bank = Bank.NONE
    rs2_bank: Bank = Bank.NONE
    mem_size: int = 0          # bytes accessed; 0 for non-memory ops
    mem_signed: bool = False   # sign-extend loaded value
    has_imm: bool = False

    @property
    def is_load(self) -> bool:
        return self.opclass is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.opclass is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return self.mem_size > 0

    @property
    def is_branch(self) -> bool:
        return self.opclass is OpClass.BRANCH

    @property
    def is_control(self) -> bool:
        return self.opclass in (OpClass.BRANCH, OpClass.JUMP)

    @property
    def writes_rd(self) -> bool:
        return self.rd_bank is not Bank.NONE


_I = Bank.INT
_F = Bank.FP
_N = Bank.NONE


def _alu_rr() -> OpInfo:
    return OpInfo(OpClass.ALU, Format.R, _I, _I, _I)


def _alu_imm() -> OpInfo:
    return OpInfo(OpClass.ALU, Format.I, _I, _I, has_imm=True)


def _load(size: int, signed: bool, bank: Bank = _I) -> OpInfo:
    return OpInfo(OpClass.LOAD, Format.MEM, bank, _I,
                  mem_size=size, mem_signed=signed, has_imm=True)


def _store(size: int, bank: Bank = _I) -> OpInfo:
    return OpInfo(OpClass.STORE, Format.MEM, Bank.NONE, _I, bank,
                  mem_size=size, has_imm=True)


def _branch() -> OpInfo:
    return OpInfo(OpClass.BRANCH, Format.B, Bank.NONE, _I, _I, has_imm=True)


OPCODE_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: _alu_rr(),
    Opcode.SUB: _alu_rr(),
    Opcode.AND: _alu_rr(),
    Opcode.OR: _alu_rr(),
    Opcode.XOR: _alu_rr(),
    Opcode.NOR: _alu_rr(),
    Opcode.SLL: _alu_rr(),
    Opcode.SRL: _alu_rr(),
    Opcode.SRA: _alu_rr(),
    Opcode.SLT: _alu_rr(),
    Opcode.SLTU: _alu_rr(),
    Opcode.ADDI: _alu_imm(),
    Opcode.ANDI: _alu_imm(),
    Opcode.ORI: _alu_imm(),
    Opcode.XORI: _alu_imm(),
    Opcode.SLLI: _alu_imm(),
    Opcode.SRLI: _alu_imm(),
    Opcode.SRAI: _alu_imm(),
    Opcode.SLTI: _alu_imm(),
    Opcode.SLTIU: _alu_imm(),
    Opcode.LUI: OpInfo(OpClass.ALU, Format.U, _I, has_imm=True),
    Opcode.MUL: OpInfo(OpClass.MUL, Format.R, _I, _I, _I),
    Opcode.MULH: OpInfo(OpClass.MUL, Format.R, _I, _I, _I),
    Opcode.DIV: OpInfo(OpClass.DIV, Format.R, _I, _I, _I),
    Opcode.REM: OpInfo(OpClass.DIV, Format.R, _I, _I, _I),
    Opcode.LB: _load(1, True),
    Opcode.LBU: _load(1, False),
    Opcode.LH: _load(2, True),
    Opcode.LHU: _load(2, False),
    Opcode.LW: _load(4, True),
    Opcode.LWU: _load(4, False),
    Opcode.LD: _load(8, False),
    Opcode.FLD: _load(8, False, bank=_F),
    Opcode.SB: _store(1),
    Opcode.SH: _store(2),
    Opcode.SW: _store(4),
    Opcode.SD: _store(8),
    Opcode.FSD: _store(8, bank=_F),
    Opcode.FADD: OpInfo(OpClass.FP_ADD, Format.R, _F, _F, _F),
    Opcode.FSUB: OpInfo(OpClass.FP_ADD, Format.R, _F, _F, _F),
    Opcode.FMUL: OpInfo(OpClass.FP_MUL, Format.R, _F, _F, _F),
    Opcode.FDIV: OpInfo(OpClass.FP_DIV, Format.R, _F, _F, _F),
    Opcode.FNEG: OpInfo(OpClass.FP_ADD, Format.R, _F, _F),
    Opcode.FABS: OpInfo(OpClass.FP_ADD, Format.R, _F, _F),
    Opcode.FMOV: OpInfo(OpClass.FP_ADD, Format.R, _F, _F),
    Opcode.FCVT_D_L: OpInfo(OpClass.FP_ADD, Format.R, _F, _I),
    Opcode.FCVT_L_D: OpInfo(OpClass.FP_ADD, Format.R, _I, _F),
    Opcode.FEQ: OpInfo(OpClass.FP_ADD, Format.R, _I, _F, _F),
    Opcode.FLT: OpInfo(OpClass.FP_ADD, Format.R, _I, _F, _F),
    Opcode.FLE: OpInfo(OpClass.FP_ADD, Format.R, _I, _F, _F),
    Opcode.BEQ: _branch(),
    Opcode.BNE: _branch(),
    Opcode.BLT: _branch(),
    Opcode.BGE: _branch(),
    Opcode.BLTU: _branch(),
    Opcode.BGEU: _branch(),
    Opcode.J: OpInfo(OpClass.JUMP, Format.U, has_imm=True),
    Opcode.JAL: OpInfo(OpClass.JUMP, Format.U, _I, has_imm=True),
    Opcode.JR: OpInfo(OpClass.JUMP, Format.R, Bank.NONE, _I),
    Opcode.JALR: OpInfo(OpClass.JUMP, Format.R, _I, _I),
    Opcode.SYSCALL: OpInfo(OpClass.SYSTEM, Format.SYS, has_imm=True),
    Opcode.ERET: OpInfo(OpClass.SYSTEM, Format.SYS),
    Opcode.MFSR: OpInfo(OpClass.SYSTEM, Format.SYS, _I, has_imm=True),
    Opcode.MTSR: OpInfo(OpClass.SYSTEM, Format.SYS, Bank.NONE, _I, has_imm=True),
    Opcode.NOP: OpInfo(OpClass.ALU, Format.SYS),
    Opcode.HALT: OpInfo(OpClass.SYSTEM, Format.SYS),
}

assert set(OPCODE_INFO) == set(Opcode), "every opcode needs an OpInfo entry"

#: Mapping from mnemonic text to opcode, for the assembler.
MNEMONICS: dict[str, Opcode] = {op.value: op for op in Opcode}


class SysReg(enum.IntEnum):
    """System (privileged) registers, accessed via MFSR/MTSR."""

    EPC = 0        # exception return PC
    CAUSE = 1      # trap cause (TrapCause value)
    STATUS = 2     # bit0: kernel mode, bit1: interrupts enabled
    KSP = 3        # kernel stack pointer save slot
    SCRATCH = 4    # kernel scratch
    BADADDR = 5    # faulting address
    CYCLES = 6     # retired-instruction counter (read-only)
    TIMER = 7      # timer interval; 0 disables the timer
    SYSARG = 8     # syscall argument shuttle / kernel use
    CURRENT = 9    # kernel: current process pointer


#: STATUS register bit assignments.
STATUS_KERNEL = 1 << 0
STATUS_INT_ENABLE = 1 << 1
