"""Binary encoding of the mini RISC ISA.

Instructions encode into fixed 32-bit words:

===========  =======================================================
Format       Bit layout (msb first)
===========  =======================================================
R            opcode[7] rd[5] rs1[5] rs2[5] zero[10]
I / MEM /    opcode[7] rd[5] rs1[5] imm[15 signed]
SYS          (stores put their value register in the rd field)
B            opcode[7] rs1[5] rs2[5] imm[15 signed]
U            opcode[7] rd[5] imm[20 signed]
===========  =======================================================

Register fields hold 5-bit *bank-local* indices; the opcode's operand
bank metadata (:class:`repro.isa.opcodes.Bank`) determines whether a
field refers to the integer bank (unified 0..31) or the floating point
bank (unified 32..63).
"""

from __future__ import annotations

from .instructions import Instruction
from .opcodes import OPCODE_INFO, Bank, Format, Opcode
from .registers import INT_REG_COUNT

#: Stable opcode numbering used in the binary encoding.
OPCODE_NUMBERS: dict[Opcode, int] = {op: idx for idx, op in enumerate(Opcode)}
_NUMBER_TO_OPCODE: dict[int, Opcode] = {v: k for k, v in OPCODE_NUMBERS.items()}

IMM15_MIN, IMM15_MAX = -(1 << 14), (1 << 14) - 1
IMM20_MIN, IMM20_MAX = -(1 << 19), (1 << 19) - 1


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def _encode_reg(unified: int, bank: Bank, what: str) -> int:
    if bank is Bank.NONE:
        if unified:
            raise EncodingError(f"{what}: register set on unused field")
        return 0
    if bank is Bank.INT:
        if not 0 <= unified < INT_REG_COUNT:
            raise EncodingError(f"{what}: {unified} is not an integer register")
        return unified
    local = unified - INT_REG_COUNT
    if not 0 <= local < INT_REG_COUNT:
        raise EncodingError(f"{what}: {unified} is not a fp register")
    return local


def _decode_reg(local: int, bank: Bank) -> int:
    if bank is Bank.NONE:
        return 0
    if bank is Bank.INT:
        return local
    return local + INT_REG_COUNT


def _check_imm(value: int, lo: int, hi: int, what: str) -> int:
    if not lo <= value <= hi:
        raise EncodingError(f"{what}: immediate {value} outside [{lo}, {hi}]")
    return value


def encode(instr: Instruction) -> int:
    """Encode *instr* into its 32-bit word."""
    info = OPCODE_INFO[instr.opcode]
    opnum = OPCODE_NUMBERS[instr.opcode] << 25
    what = instr.opcode.value
    if info.fmt is Format.R:
        rd = _encode_reg(instr.rd, info.rd_bank, what)
        rs1 = _encode_reg(instr.rs1, info.rs1_bank, what)
        rs2 = _encode_reg(instr.rs2, info.rs2_bank, what)
        return opnum | (rd << 20) | (rs1 << 15) | (rs2 << 10)
    if info.fmt in (Format.I, Format.MEM, Format.SYS):
        if info.is_store:
            first = _encode_reg(instr.rs2, info.rs2_bank, what)
        else:
            first = _encode_reg(instr.rd, info.rd_bank, what)
        rs1 = _encode_reg(instr.rs1, info.rs1_bank, what)
        imm = _check_imm(instr.imm, IMM15_MIN, IMM15_MAX, what) & 0x7FFF
        return opnum | (first << 20) | (rs1 << 15) | imm
    if info.fmt is Format.B:
        rs1 = _encode_reg(instr.rs1, info.rs1_bank, what)
        rs2 = _encode_reg(instr.rs2, info.rs2_bank, what)
        imm = _check_imm(instr.imm, IMM15_MIN, IMM15_MAX, what) & 0x7FFF
        return opnum | (rs1 << 20) | (rs2 << 15) | imm
    if info.fmt is Format.U:
        rd = _encode_reg(instr.rd, info.rd_bank, what)
        imm = _check_imm(instr.imm, IMM20_MIN, IMM20_MAX, what) & 0xFFFFF
        return opnum | (rd << 20) | imm
    raise AssertionError(f"unhandled format {info.fmt}")  # pragma: no cover


def _sign_extend(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"not a 32-bit word: {word:#x}")
    opnum = word >> 25
    try:
        opcode = _NUMBER_TO_OPCODE[opnum]
    except KeyError:
        raise EncodingError(f"unknown opcode number {opnum}") from None
    info = OPCODE_INFO[opcode]
    if info.fmt is Format.R:
        rd = _decode_reg((word >> 20) & 0x1F, info.rd_bank)
        rs1 = _decode_reg((word >> 15) & 0x1F, info.rs1_bank)
        rs2 = _decode_reg((word >> 10) & 0x1F, info.rs2_bank)
        return Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2)
    if info.fmt in (Format.I, Format.MEM, Format.SYS):
        first = (word >> 20) & 0x1F
        rs1 = _decode_reg((word >> 15) & 0x1F, info.rs1_bank)
        imm = _sign_extend(word & 0x7FFF, 15)
        if info.is_store:
            return Instruction(opcode, rs1=rs1,
                               rs2=_decode_reg(first, info.rs2_bank), imm=imm)
        return Instruction(opcode, rd=_decode_reg(first, info.rd_bank),
                           rs1=rs1, imm=imm)
    if info.fmt is Format.B:
        rs1 = _decode_reg((word >> 20) & 0x1F, info.rs1_bank)
        rs2 = _decode_reg((word >> 15) & 0x1F, info.rs2_bank)
        return Instruction(opcode, rs1=rs1, rs2=rs2,
                           imm=_sign_extend(word & 0x7FFF, 15))
    if info.fmt is Format.U:
        rd = _decode_reg((word >> 20) & 0x1F, info.rd_bank)
        return Instruction(opcode, rd=rd,
                           imm=_sign_extend(word & 0xFFFFF, 20))
    raise AssertionError(f"unhandled format {info.fmt}")  # pragma: no cover


def encode_program_text(instructions: list[Instruction] | tuple[Instruction, ...]) -> bytes:
    """Encode a text section to little-endian bytes."""
    out = bytearray()
    for instr in instructions:
        out += encode(instr).to_bytes(4, "little")
    return bytes(out)


def decode_program_text(blob: bytes) -> list[Instruction]:
    """Decode a little-endian text section back to instructions."""
    if len(blob) % 4:
        raise EncodingError("text section length not a multiple of 4")
    return [decode(int.from_bytes(blob[i:i + 4], "little"))
            for i in range(0, len(blob), 4)]
