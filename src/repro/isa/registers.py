"""Register file layout of the mini RISC ISA.

The architecture has 32 64-bit integer registers and 32 64-bit floating
point registers.  Internally (assembler, functional simulator, renamer)
both banks live in a single unified namespace of 64 architectural
registers: integer registers occupy indices 0..31 and floating point
registers occupy indices 32..63.  The unified index is what appears in
:class:`repro.isa.instructions.Instruction` operand fields.
"""

from __future__ import annotations

INT_REG_COUNT = 32
FP_REG_COUNT = 32
TOTAL_REG_COUNT = INT_REG_COUNT + FP_REG_COUNT

#: Unified index of the hardwired zero register.
ZERO = 0

# Conventional ABI names for the integer bank (MIPS/RISC-V flavoured).
_INT_ABI_NAMES = (
    "zero",  # x0  hardwired zero
    "ra",    # x1  return address
    "sp",    # x2  stack pointer
    "gp",    # x3  global pointer
    "tp",    # x4  thread pointer
    "t0", "t1", "t2",            # x5-x7   temporaries
    "s0", "s1",                  # x8-x9   callee saved
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",  # x10-x17 arguments
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",  # x18-x27
    "t3", "t4", "t5", "t6",      # x28-x31 temporaries
)

assert len(_INT_ABI_NAMES) == INT_REG_COUNT


def fp_reg(index: int) -> int:
    """Return the unified register index of floating point register *index*."""
    if not 0 <= index < FP_REG_COUNT:
        raise ValueError(f"fp register index out of range: {index}")
    return INT_REG_COUNT + index


def int_reg(index: int) -> int:
    """Return the unified register index of integer register *index*."""
    if not 0 <= index < INT_REG_COUNT:
        raise ValueError(f"int register index out of range: {index}")
    return index


def is_fp_reg(unified: int) -> bool:
    """True if the unified register index names a floating point register."""
    return INT_REG_COUNT <= unified < TOTAL_REG_COUNT


def reg_name(unified: int) -> str:
    """Render a unified register index as its canonical assembly name."""
    if 0 <= unified < INT_REG_COUNT:
        return _INT_ABI_NAMES[unified]
    if INT_REG_COUNT <= unified < TOTAL_REG_COUNT:
        return f"f{unified - INT_REG_COUNT}"
    raise ValueError(f"register index out of range: {unified}")


def _build_name_table() -> dict[str, int]:
    table: dict[str, int] = {}
    for idx, name in enumerate(_INT_ABI_NAMES):
        table[name] = idx
    for idx in range(INT_REG_COUNT):
        table[f"x{idx}"] = idx
        table[f"r{idx}"] = idx
    for idx in range(FP_REG_COUNT):
        table[f"f{idx}"] = INT_REG_COUNT + idx
    # "fp" is the conventional frame pointer alias for s0.
    table["fp"] = table["s0"]
    return table


#: Mapping from every accepted register spelling to its unified index.
REGISTER_NAMES: dict[str, int] = _build_name_table()


def parse_register(text: str) -> int:
    """Parse a register name (``t0``, ``x5``, ``f2``...) to its unified index.

    Raises ``KeyError`` with a helpful message for unknown names.
    """
    key = text.strip().lower()
    try:
        return REGISTER_NAMES[key]
    except KeyError:
        raise KeyError(f"unknown register name: {text!r}") from None
