"""The :class:`Instruction` record and helpers for inspecting operands.

Instructions hold *unified* register indices (see
:mod:`repro.isa.registers`): integer registers are 0..31 and floating
point registers 32..63.  Register fields that an opcode does not use are
kept at 0 so that instructions round-trip exactly through the binary
encoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .opcodes import OPCODE_INFO, Bank, Format, Opcode, OpInfo
from .registers import ZERO, reg_name

#: Size of one encoded instruction in bytes.
INSTRUCTION_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``imm`` means different things per format: an arithmetic immediate
    (I), a memory displacement in bytes (MEM), a pc-relative offset in
    *instructions* (B and U-format jumps), the LUI immediate (shifted
    left by 15 at execution), a syscall/system-register number (SYS).
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def info(self) -> OpInfo:
        return OPCODE_INFO[self.opcode]

    # -- operand views ---------------------------------------------------
    @property
    def dest(self) -> int | None:
        """Unified index of the written register, or None.

        Writes to the hardwired zero register are reported as None: they
        have no architectural effect and the timing core must not create
        a dependence on them.
        """
        info = self.info
        if not info.writes_rd or self.rd == ZERO and info.rd_bank is Bank.INT:
            return None
        return self.rd

    @property
    def sources(self) -> tuple[int, ...]:
        """Unified indices of the registers this instruction reads."""
        info = self.info
        srcs = []
        if info.rs1_bank is not Bank.NONE and not (
                info.rs1_bank is Bank.INT and self.rs1 == ZERO):
            srcs.append(self.rs1)
        if info.rs2_bank is not Bank.NONE and not (
                info.rs2_bank is Bank.INT and self.rs2 == ZERO):
            srcs.append(self.rs2)
        return tuple(srcs)

    # -- classification shortcuts ----------------------------------------
    @property
    def is_load(self) -> bool:
        return self.info.is_load

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    @property
    def is_mem(self) -> bool:
        return self.info.is_mem

    @property
    def is_control(self) -> bool:
        return self.info.is_control

    # -- rendering --------------------------------------------------------
    def disassemble(self) -> str:
        """Render the instruction as canonical assembly text."""
        op = self.opcode
        info = self.info
        mnem = op.value
        if op in (Opcode.NOP, Opcode.HALT, Opcode.ERET):
            return mnem
        if op is Opcode.SYSCALL:
            return f"{mnem} {self.imm}"
        if op is Opcode.MFSR:
            return f"{mnem} {reg_name(self.rd)}, {self.imm}"
        if op is Opcode.MTSR:
            return f"{mnem} {self.imm}, {reg_name(self.rs1)}"
        if info.fmt is Format.R:
            parts = []
            if info.rd_bank is not Bank.NONE:
                parts.append(reg_name(self.rd))
            if info.rs1_bank is not Bank.NONE:
                parts.append(reg_name(self.rs1))
            if info.rs2_bank is not Bank.NONE:
                parts.append(reg_name(self.rs2))
            return f"{mnem} " + ", ".join(parts)
        if info.fmt is Format.MEM:
            if info.is_load:
                return f"{mnem} {reg_name(self.rd)}, {self.imm}({reg_name(self.rs1)})"
            return f"{mnem} {reg_name(self.rs2)}, {self.imm}({reg_name(self.rs1)})"
        if info.fmt is Format.I:
            return f"{mnem} {reg_name(self.rd)}, {reg_name(self.rs1)}, {self.imm}"
        if info.fmt is Format.B:
            return f"{mnem} {reg_name(self.rs1)}, {reg_name(self.rs2)}, {self.imm}"
        if info.fmt is Format.U:
            if op is Opcode.LUI:
                return f"{mnem} {reg_name(self.rd)}, {self.imm}"
            if op is Opcode.JAL:
                return f"{mnem} {reg_name(self.rd)}, {self.imm}"
            return f"{mnem} {self.imm}"
        raise AssertionError(f"unhandled format for {op}")  # pragma: no cover

    def __str__(self) -> str:
        return self.disassemble()


def nop() -> Instruction:
    """A canonical NOP instruction."""
    return Instruction(Opcode.NOP)


@dataclass(frozen=True)
class Program:
    """An assembled program image.

    ``text`` is the instruction list laid out from ``text_base``;
    ``data`` is the initialised data image laid out from ``data_base``;
    ``symbols`` maps labels to absolute byte addresses; ``entry`` is the
    address execution starts at.
    """

    text: tuple[Instruction, ...]
    data: bytes = b""
    text_base: int = 0x1000
    data_base: int = 0x100000
    entry: int = 0x1000
    symbols: dict[str, int] = field(default_factory=dict)

    @property
    def text_end(self) -> int:
        return self.text_base + len(self.text) * INSTRUCTION_BYTES

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)

    def instruction_at(self, address: int) -> Instruction:
        """Fetch the instruction stored at byte *address*."""
        offset = address - self.text_base
        if offset % INSTRUCTION_BYTES:
            raise ValueError(f"misaligned instruction address {address:#x}")
        index = offset // INSTRUCTION_BYTES
        if not 0 <= index < len(self.text):
            raise ValueError(f"instruction address out of range: {address:#x}")
        return self.text[index]
