"""Configuration of the dynamic superscalar timing core."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import OpClass
from ..mem.config import MemSystemConfig


@dataclass(frozen=True)
class FUSpec:
    """One functional-unit class: how many, how slow, pipelined or not."""

    count: int
    latency: int
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.count < 1 or self.latency < 1:
            raise ValueError("FU count and latency must be positive")


def default_fu_specs() -> dict[OpClass, FUSpec]:
    """A mid-90s 4-issue machine (R10000-flavoured latencies).

    Compute resources are provisioned generously (ALU/AGU counts match
    the issue width) so that — as in the paper's experimental setup —
    the data cache port subsystem, not the functional unit pool, is the
    structural bottleneck under study.
    """
    return {
        OpClass.ALU: FUSpec(count=4, latency=1),
        OpClass.BRANCH: FUSpec(count=2, latency=1),
        OpClass.JUMP: FUSpec(count=2, latency=1),
        OpClass.MUL: FUSpec(count=2, latency=4),
        OpClass.DIV: FUSpec(count=1, latency=20, pipelined=False),
        OpClass.FP_ADD: FUSpec(count=2, latency=2),
        OpClass.FP_MUL: FUSpec(count=2, latency=4),
        OpClass.FP_DIV: FUSpec(count=1, latency=19, pipelined=False),
        OpClass.SYSTEM: FUSpec(count=1, latency=1),
        # LOAD/STORE use the address-generation units:
        OpClass.LOAD: FUSpec(count=4, latency=1),
        OpClass.STORE: FUSpec(count=4, latency=1),
    }


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Direction predictor + branch target buffer."""

    kind: str = "twobit"        # "twobit", "gshare" or "always_taken"
    table_bits: int = 11        # 2^bits two-bit counters
    history_bits: int = 8       # gshare global history length
    btb_entries: int = 512
    mispredict_redirect: int = 1   # extra cycles after resolution
    btb_miss_redirect: int = 1     # decode-time redirect for direct jumps

    def __post_init__(self) -> None:
        if self.kind not in ("twobit", "gshare", "always_taken"):
            raise ValueError(f"unknown predictor kind {self.kind!r}")
        if self.table_bits < 1 or self.btb_entries < 1:
            raise ValueError("predictor sizes must be positive")


@dataclass(frozen=True)
class CoreConfig:
    """The dynamic superscalar processor."""

    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 64
    iq_size: int = 32
    lq_size: int = 16
    sq_size: int = 16
    decode_latency: int = 1       # fetch -> dispatch-visible delay
    fetch_queue_size: int = 16
    lb_latency: int = 1           # line-buffer load-to-use latency
    max_combine: int = 4          # loads merged into one wide-port access
    speculative_loads: bool = False  # loads may pass unknown store addresses
    fu_specs: dict[OpClass, FUSpec] = field(default_factory=default_fu_specs)
    bpred: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig)

    def __post_init__(self) -> None:
        for name in ("fetch_width", "dispatch_width", "issue_width",
                     "commit_width", "rob_size", "iq_size", "lq_size",
                     "sq_size", "fetch_queue_size"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        missing = set(OpClass) - set(self.fu_specs)
        if missing:
            raise ValueError(f"fu_specs missing classes: {missing}")


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: core + memory hierarchy."""

    name: str = "machine"
    core: CoreConfig = field(default_factory=CoreConfig)
    mem: MemSystemConfig = field(default_factory=MemSystemConfig)
