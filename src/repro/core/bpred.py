"""Branch prediction: direction predictors and a branch target buffer."""

from __future__ import annotations

from ..stats.counters import Stats
from .config import BranchPredictorConfig


class TwoBitCounters:
    """A table of classic 2-bit saturating counters indexed by pc."""

    def __init__(self, table_bits: int) -> None:
        self.mask = (1 << table_bits) - 1
        self.table = [2] * (1 << table_bits)  # init weakly taken

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1


class GShare:
    """Global-history-xor-pc indexed 2-bit counters."""

    def __init__(self, table_bits: int, history_bits: int) -> None:
        self.mask = (1 << table_bits) - 1
        self.history_mask = (1 << history_bits) - 1
        self.table = [2] * (1 << table_bits)
        self.history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self.history) & self.mask

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self.table[index]
        if taken:
            if counter < 3:
                self.table[index] = counter + 1
        elif counter > 0:
            self.table[index] = counter - 1
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


class AlwaysTaken:
    """Degenerate predictor for experiments isolating the BTB."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class BTB:
    """Direct-mapped branch target buffer with tags."""

    def __init__(self, entries: int) -> None:
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self.mask = entries - 1
        self._targets: list[tuple[int, int] | None] = [None] * entries

    def lookup(self, pc: int) -> int | None:
        entry = self._targets[(pc >> 2) & self.mask]
        if entry is not None and entry[0] == pc:
            return entry[1]
        return None

    def update(self, pc: int, target: int) -> None:
        self._targets[(pc >> 2) & self.mask] = (pc, target)


class BranchPredictor:
    """Direction predictor + BTB with prediction accounting.

    ``predict`` returns ``(taken, target)`` where ``target`` is None on
    a BTB miss — the fetch unit cannot redirect without a target even
    when the direction says taken.
    """

    def __init__(self, config: BranchPredictorConfig,
                 stats: Stats | None = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else Stats()
        if config.kind == "twobit":
            self.direction = TwoBitCounters(config.table_bits)
        elif config.kind == "gshare":
            self.direction = GShare(config.table_bits, config.history_bits)
        else:
            self.direction = AlwaysTaken()
        self.btb = BTB(config.btb_entries)

    def predict_branch(self, pc: int) -> tuple[bool, int | None]:
        """Predict a conditional branch."""
        taken = self.direction.predict(pc)
        target = self.btb.lookup(pc) if taken else None
        if taken and target is None:
            # Direction says taken but no target: fall through (and pay
            # for it at resolution if the branch really was taken).
            return False, None
        return taken, target

    def predict_jump(self, pc: int) -> int | None:
        """Predict an unconditional transfer's target (None = BTB miss)."""
        return self.btb.lookup(pc)

    def resolve_branch(self, pc: int, taken: bool, target: int,
                       predicted_taken: bool, correct: bool) -> None:
        """Train after a conditional branch resolves."""
        self.direction.update(pc, taken)
        if taken:
            self.btb.update(pc, target)
        self.stats.inc("bpred.branches")
        if correct:
            self.stats.inc("bpred.correct")
        else:
            self.stats.inc("bpred.mispredicts")

    def resolve_jump(self, pc: int, target: int, correct: bool) -> None:
        """Train after an unconditional transfer resolves."""
        self.btb.update(pc, target)
        self.stats.inc("bpred.jumps")
        if correct:
            self.stats.inc("bpred.jump_correct")
        else:
            self.stats.inc("bpred.jump_mispredicts")
