"""In-flight instruction state for the timing core."""

from __future__ import annotations

from ..isa import OpClass
from ..trace.record import TraceRecord

#: Sentinel "not yet" cycle.
NEVER = -1


class Uop:
    """One instruction travelling through the out-of-order machine.

    Plain attribute bag with ``__slots__``; the pipeline touches these
    millions of times per run.
    """

    __slots__ = (
        "record", "seq", "opclass",
        "fetch_cycle", "dispatch_cycle", "issue_cycle", "addr_cycle",
        "completed", "complete_cycle",
        "num_waiting", "operands_ready", "consumers",
        "is_load", "is_store", "addr_known", "line", "chunk", "byte_mask",
        "data_waiting", "data_ready_cycle",
        "mem_done", "mem_source", "lsq_block",
        "mispredicted", "predicted_taken", "serialize", "issued",
    )

    def __init__(self, record: TraceRecord, seq: int) -> None:
        self.record = record
        self.seq = seq
        self.opclass: OpClass = record.opclass
        self.fetch_cycle = NEVER
        self.dispatch_cycle = NEVER
        self.issue_cycle = NEVER
        self.addr_cycle = NEVER
        self.completed = False
        self.complete_cycle = NEVER
        # Operand (issue-gating) dependences.
        self.num_waiting = 0
        self.operands_ready = 0
        self.consumers: list[tuple["Uop", bool]] = []  # (consumer, is_data)
        # Memory state.
        self.is_load = record.is_load
        self.is_store = record.is_store
        self.addr_known = False
        self.line = 0
        self.chunk = 0
        self.byte_mask = 0
        # Store-data dependence (tracked separately from the AGU operand).
        self.data_waiting = 0
        self.data_ready_cycle = 0
        self.mem_done = False   # load: cache/forward satisfied
        # Observability breadcrumbs for the stall-attribution model:
        # where the load's data came from ("sq", "wb", "lb", "hit",
        # "miss", "secondary") and why the LSQ last skipped it.
        self.mem_source: str | None = None
        self.lsq_block: str | None = None
        # Fetch/branch state.
        self.mispredicted = False
        self.predicted_taken = False
        self.serialize = False
        self.issued = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "L" if self.is_load else "S" if self.is_store else \
            self.opclass.name
        return (f"Uop#{self.seq}({kind} pc={self.record.pc:#x} "
                f"completed={self.completed})")
