"""The dynamic superscalar timing core.

Trace-driven, cycle-accurate where it matters for the paper: every data
cache access arbitrates for a physical port each cycle, and the
line-buffer / write-buffer / wide-port-combining techniques remove or
merge port uses.  Control flow is modelled with real branch prediction:
a mispredicted branch stalls fetch until it resolves (wrong-path fetch
is not simulated — the standard trace-driven approximation, noted in
EXPERIMENTS.md).

Stage order within a cycle (classic reverse-pipeline order so an
instruction advances at most one stage per cycle):

1. events (FU completions, AGU address resolution)
2. commit (stores enter the write buffer here)
3. memory (LSQ port scheduling, then write buffer drain)
4. issue (wakeup/select, functional unit allocation)
5. dispatch (rename: dependence wiring, ROB/IQ/LSQ allocation)
6. fetch (I-cache, branch prediction, redirect tracking)
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..func.exceptions import SimError
from ..isa import Opcode, OpClass
from ..isa.opcodes import Bank
from ..mem.hierarchy import MemorySystem
from ..obs.critpath import CritPathRecorder
from ..obs.hotspots import HotspotRecorder
from ..obs.metrics import IntervalMetrics
from ..obs.pipetrace import PipeTrace
from ..obs.selfprof import SelfProfiler
from ..obs.spans import SpanRecorder
from ..obs.stall import DEFAULT_INTERVAL, StallCause, StallLedger
from ..obs.tracer import NULL_TRACER, Tracer
from ..stats.counters import Stats
from ..stats.histogram import Histogram
from ..trace.record import TraceRecord
from .bpred import BranchPredictor
from .config import CoreConfig, MachineConfig
from .fastpath import run_fast
from .fu import FUPool
from .lsq import LoadStoreQueue
from .uop import Uop

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..validate.base import Validator

#: Lower bound for the zero-progress watchdog.  The actual limit is
#: scaled to the configured machine (see :func:`watchdog_limit`): a
#: maximal config — deep ROB, large write buffer draining at a barrier
#: under MSHR backpressure, slow memory — can legitimately go far
#: longer than any small config without committing anything.
_WATCHDOG_FLOOR = 50_000


def watchdog_limit(machine: MachineConfig) -> int:
    """Zero-progress cycle bound for *machine*.

    The worst legitimate commit-to-commit gap is bounded by every
    in-flight slot serially taking a worst-case trip through the memory
    system, so the limit scales with the total buffering in the machine
    times the worst per-operation latency (L2 + memory + queueing
    behind every MSHR, victim probe, L1 hit, the slowest FU, decode).
    The 4x margin keeps the bound loose — the watchdog exists to catch
    real deadlocks, not slow progress — and the floor keeps tiny
    configs from tripping on startup transients.
    """
    core = machine.core
    dcache = machine.mem.dcache
    next_level = machine.mem.next_level
    inflight = (core.rob_size + core.iq_size + core.lq_size +
                core.sq_size + core.fetch_queue_size +
                dcache.write_buffer_depth + dcache.mshrs)
    fill = (next_level.hit_latency + next_level.memory_latency +
            next_level.occupancy * (dcache.mshrs + 2))
    victim = dcache.victim_latency if dcache.victim_entries else 0
    max_fu = max(spec.latency for spec in core.fu_specs.values())
    per_op = (fill + victim + dcache.hit_latency + max_fu +
              core.decode_latency)
    return max(_WATCHDOG_FLOOR, 4 * inflight * per_op)

#: ``REPRO_VALIDATE=1`` attaches a strict invariant checker to every
#: core that was not given an explicit validator — the switch CI uses
#: to run the whole tier-1 suite under invariant checking.
_ENV_VALIDATE = os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


@dataclass
class CoreResult:
    """Outcome of one timing simulation."""

    name: str
    cycles: int
    instructions: int
    stats: Stats
    #: Distribution of load service latency (address-ready to data-ready
    #: cycles) — how the port techniques reshape the common case.
    load_latency: Histogram | None = None
    #: Per-cause lost-issue-slot ledger (see :mod:`repro.obs.stall`).
    ledger: StallLedger | None = None
    #: Interval telemetry (only when the run asked for it; see
    #: :mod:`repro.obs.metrics`).
    metrics: IntervalMetrics | None = None
    #: Architectural end-state digests (registers, memory) from an
    #: attached golden-model validator; ``None`` without one.
    digests: dict[str, str] | None = None
    #: Whether the run took the fast cycle loop, and — when it did not
    #: — why the fast path was rejected (surfaced into ``repro.run/1``
    #: and ``repro.bench/1`` manifests).
    used_fastpath: bool = False
    fastpath_reason: str | None = None

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CoreResult({self.name!r}, cycles={self.cycles}, "
                f"instructions={self.instructions}, ipc={self.ipc:.3f})")


class OoOCore:
    """One configured machine instance; :meth:`run` consumes a trace."""

    def __init__(self, machine: MachineConfig,
                 tracer: Tracer | None = None,
                 stall_interval: int = DEFAULT_INTERVAL,
                 metrics_interval: int | None = None,
                 pipe_trace: PipeTrace | None = None,
                 profiler: SelfProfiler | None = None,
                 spans: SpanRecorder | None = None,
                 validator: "Validator | None" = None,
                 fastpath: bool | None = None,
                 critpath: CritPathRecorder | None = None,
                 hotspots: HotspotRecorder | None = None) -> None:
        self.machine = machine
        self.cfg: CoreConfig = machine.core
        self.stats = Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._tracing = self.tracer.enabled
        if validator is None and _ENV_VALIDATE:
            from ..validate.invariants import InvariantChecker
            validator = InvariantChecker(tracer=self.tracer, strict=True)
        self._validate = validator
        # Span tracing rides on the self-profiler's instrumented loop:
        # the per-stage brackets it already takes are the span slices
        # (one shared instrumentation layer, see repro.obs.selfprof).
        if spans is not None:
            if profiler is None:
                profiler = SelfProfiler(spans=spans)
            elif profiler.spans is None:
                profiler.spans = spans
        self.spans = spans
        self.mem = MemorySystem(machine.mem, stats=self.stats,
                                tracer=self.tracer, spans=spans)
        # Optional telemetry: interval time series, per-instruction
        # pipeline trace, host-time self-profile.  All default off and
        # cost one `is None` check (metrics/profiler: per cycle;
        # pipe trace: per commit) when disabled.
        self.metrics = IntervalMetrics(
            self.stats, ports=machine.mem.dcache.ports,
            interval=metrics_interval) if metrics_interval else None
        self._pipe = pipe_trace
        self.profiler = profiler
        # Critical-path recorder: commit-time dependence-graph snapshots
        # (see repro.obs.critpath).  Off by default; every hook site is
        # a single `is None` check.
        self._critpath = critpath
        # Per-PC hotspot recorder: program-level attribution (see
        # repro.obs.hotspots).  The D-cache carries its own reference
        # so per-access counters land on the access-context PC.
        self._hotspots = hotspots
        if hotspots is not None:
            self.mem.dcache.hotspots = hotspots
        self.bpred = BranchPredictor(self.cfg.bpred, stats=self.stats)
        self.fu = FUPool(self.cfg.fu_specs, stats=self.stats)
        self.lsq = LoadStoreQueue(self.cfg, self.mem.dcache,
                                  stats=self.stats, tracer=self.tracer,
                                  validator=validator, critpath=critpath,
                                  hotspots=hotspots)
        # Stall attribution: one slot-conservation ledger per run.
        self.ledger = StallLedger(
            max(self.cfg.issue_width, self.cfg.commit_width),
            interval=stall_interval)
        # Pipeline state.
        self._fetch_queue: deque[Uop] = deque()
        self._rob: deque[Uop] = deque()
        self._iq: list[Uop] = []
        self._scoreboard: dict[int, Uop] = {}
        self._events_complete: dict[int, list[Uop]] = {}
        self._events_addr: dict[int, list[Uop]] = {}
        self._trace: Sequence[TraceRecord] = ()
        self._trace_pos = 0
        self._seq = 0
        self._cycle = 0
        self._fetch_blocked_until = 0
        self._waiting_branch: Uop | None = None
        self._waiting_serialize: Uop | None = None
        self._fetch_block_cause = StallCause.FETCH
        self._fetch_memo: tuple[int, int] | None = None
        self._committed = 0
        self._last_activity = 0
        self.load_latency = Histogram("load_latency")
        # Fast-path selection: None picks automatically at run() entry
        # (fast loop iff no instrumentation is attached), False forces
        # the instrumented reference loop, True demands the fast loop
        # and raises if any instrumentation would be silently dropped.
        self._fastpath = fastpath
        self.used_fastpath = False
        self.fastpath_reason: str | None = None
        self._watchdog_limit = watchdog_limit(machine)

    # ------------------------------------------------------------------
    def run(self, trace: Sequence[TraceRecord]) -> CoreResult:
        """Simulate the machine over *trace*; returns timing results."""
        if not trace:
            raise ValueError("empty trace")
        self._trace = trace
        rejection = self._fastpath_rejection()
        if self._fastpath and rejection is not None:
            raise ValueError(
                f"fastpath=True requires tracer, metrics, pipe trace, "
                f"validator, profiler, critpath and hotspots to all be "
                f"off ({rejection})")
        use_fast = (rejection is None) if self._fastpath is None \
            else self._fastpath
        if not use_fast and rejection is None:
            rejection = "fastpath=False requested"
        self.used_fastpath = use_fast
        self.fastpath_reason = None if use_fast else rejection
        if self._critpath is not None:
            self._critpath.begin_run(self.cfg)
        if self._hotspots is not None:
            self._hotspots.begin_run(self.cfg, self.mem.dcache)
        if use_fast:
            cycle = run_fast(self, trace)
        elif self.profiler is not None:
            recorder = self.profiler.spans
            if recorder is not None:
                recorder.begin("core.run", "sim",
                               config=self.machine.name,
                               records=len(trace))
            start = time.perf_counter()
            cycle = self._run_loop_profiled()
            self.profiler.wall_time_s = time.perf_counter() - start
            self.profiler.finish()
            if recorder is not None:
                recorder.end(cycles=cycle, instructions=self._committed)
        else:
            cycle = self._run_loop()
        if self.metrics is not None:
            self.metrics.finalize(self._committed)
        if self._critpath is not None:
            self._critpath.finalize(cycle, self._committed)
        if self._hotspots is not None:
            self._hotspots.finalize(cycle, self._committed)
        digests = None
        if self._validate is not None:
            self._validate.on_drain(self, cycle)
            digests = self._validate.digests()
        self.stats.set("core.cycles", cycle)
        self.stats.set("core.committed", self._committed)
        for cause, slots in self.ledger.lost.items():
            if slots:
                self.stats.set(f"stall.{cause.value}", slots)
        return CoreResult(name=self.machine.name, cycles=cycle,
                          instructions=self._committed, stats=self.stats,
                          load_latency=self.load_latency,
                          ledger=self.ledger, metrics=self.metrics,
                          digests=digests,
                          used_fastpath=self.used_fastpath,
                          fastpath_reason=self.fastpath_reason)

    def _run_loop(self) -> int:
        """The plain (unprofiled) per-cycle loop; returns final cycle."""
        total = len(self._trace)
        metrics = self.metrics
        cycle = 0
        while self._trace_pos < total or self._rob or self._fetch_queue:
            self._cycle = cycle
            self.mem.begin_cycle(cycle)
            self.fu.begin_cycle(cycle)
            self._process_events(cycle)
            self._commit_stage(cycle)
            self.lsq.schedule(cycle, self._schedule_load_completion)
            self.mem.end_cycle()
            self._issue_stage(cycle)
            self._dispatch_stage(cycle)
            self._fetch_stage(cycle)
            if self._validate is not None:
                self._validate.on_cycle(self, cycle)
            if metrics is not None:
                self._sample_metrics(metrics, cycle)
            self._watchdog(cycle)
            cycle += 1
        return cycle

    def _run_loop_profiled(self) -> int:
        """The same loop with each stage group bracketed by host
        timers feeding :class:`SelfProfiler` (see repro.obs.selfprof).
        A separate loop so the default path pays nothing."""
        total = len(self._trace)
        profiler = self.profiler
        metrics = self.metrics
        perf = time.perf_counter
        cycle = 0
        while self._trace_pos < total or self._rob or self._fetch_queue:
            self._cycle = cycle
            t0 = perf()
            self.mem.begin_cycle(cycle)
            self.fu.begin_cycle(cycle)
            self._process_events(cycle)
            t1 = perf()
            self._commit_stage(cycle)
            t2 = perf()
            self.lsq.schedule(cycle, self._schedule_load_completion)
            t3 = perf()
            self.mem.end_cycle()
            t4 = perf()
            self._issue_stage(cycle)
            t5 = perf()
            self._dispatch_stage(cycle)
            t6 = perf()
            self._fetch_stage(cycle)
            t7 = perf()
            profiler.add_cycle(cycle, (t1 - t0, t2 - t1, t3 - t2,
                                       t4 - t3, t5 - t4, t6 - t5,
                                       t7 - t6))
            if self._validate is not None:
                self._validate.on_cycle(self, cycle)
            if metrics is not None:
                self._sample_metrics(metrics, cycle)
            self._watchdog(cycle)
            cycle += 1
        return cycle

    def _fastpath_rejection(self) -> str | None:
        """Why the fast loop cannot run, or ``None`` when it can.

        The fast loop is observably identical to the reference loop
        only with every instrumentation layer detached; the returned
        reason is surfaced through :attr:`CoreResult.fastpath_reason`
        into run/bench manifests.  Span recording rides on the profiler
        (see ``__init__``), so the profiler check covers it."""
        if self._tracing:
            return "tracer attached"
        if self._validate is not None:
            return "validator attached"
        if self.metrics is not None:
            return "interval metrics attached"
        if self._pipe is not None:
            return "pipe trace attached"
        if self.profiler is not None:
            return "self-profiler attached"
        if self._critpath is not None:
            return "critpath recorder attached"
        if self._hotspots is not None:
            return "hotspots recorder attached"
        return None

    def _fastpath_eligible(self) -> bool:
        """True iff no instrumentation is attached (see
        :meth:`_fastpath_rejection`)."""
        return self._fastpath_rejection() is None

    def _watchdog(self, cycle: int) -> None:
        """Single zero-progress check shared by both reference loops."""
        if cycle - self._last_activity > self._watchdog_limit:
            raise SimError(self._deadlock_report(cycle))

    def _sample_metrics(self, metrics: IntervalMetrics,
                        cycle: int) -> None:
        """End-of-cycle occupancy/port sample (telemetry on only)."""
        dcache = self.mem.dcache
        metrics.on_cycle(cycle, self._committed,
                         len(self._rob), len(self._iq),
                         len(self.lsq.loads), len(self.lsq.stores),
                         len(dcache.write_buffer), dcache.ports_used,
                         dcache.mshrs_busy())

    # ------------------------------------------------------------------
    # 1. events
    # ------------------------------------------------------------------
    def _process_events(self, cycle: int) -> None:
        for uop in self._events_addr.pop(cycle, ()):
            self._resolve_address(uop, cycle)
        for uop in self._events_complete.pop(cycle, ()):
            self._complete(uop, cycle)

    def _resolve_address(self, uop: Uop, cycle: int) -> None:
        self.lsq.resolve_address(uop)
        uop.addr_cycle = cycle
        if uop.is_store:
            self._maybe_complete_store(uop, cycle)

    def _maybe_complete_store(self, uop: Uop, cycle: int) -> None:
        if uop.addr_known and uop.data_waiting == 0 and not uop.completed:
            uop.completed = True
            uop.complete_cycle = max(cycle, uop.data_ready_cycle)

    def _schedule_load_completion(self, uop: Uop, ready: int) -> None:
        assert ready > self._cycle, "load data cannot be ready in the past"
        self.load_latency.record(ready - uop.addr_cycle)
        self._events_complete.setdefault(ready, []).append(uop)

    def _complete(self, uop: Uop, cycle: int) -> None:
        uop.completed = True
        uop.complete_cycle = cycle
        for consumer, is_data in uop.consumers:
            if is_data:
                consumer.data_waiting -= 1
                if cycle > consumer.data_ready_cycle:
                    consumer.data_ready_cycle = cycle
                self._maybe_complete_store(consumer, cycle)
            else:
                consumer.num_waiting -= 1
                if cycle > consumer.operands_ready:
                    consumer.operands_ready = cycle
        record = uop.record
        if uop.opclass is OpClass.BRANCH:
            self.bpred.resolve_branch(record.pc, record.taken,
                                      record.next_pc, uop.predicted_taken,
                                      not uop.mispredicted)
        elif uop.opclass is OpClass.JUMP:
            self.bpred.resolve_jump(record.pc, record.next_pc,
                                    not uop.mispredicted)
        if uop is self._waiting_branch:
            self._waiting_branch = None
            self._fetch_block_cause = StallCause.BRANCH
            resume = cycle + self.cfg.bpred.mispredict_redirect
            if resume > self._fetch_blocked_until:
                self._fetch_blocked_until = resume
            if self._critpath is not None:
                self._critpath.note_redirect(resume, "branch", uop.seq)
            if self._tracing:
                self.tracer.emit(cycle, "branch.resolve", pc=record.pc,
                                 seq=uop.seq, resume=resume)

    # ------------------------------------------------------------------
    # 2. commit
    # ------------------------------------------------------------------
    def _commit_stage(self, cycle: int) -> None:
        rob = self._rob
        dcache = self.mem.dcache
        direct_stores = self.machine.mem.dcache.write_buffer_depth == 0
        commits = 0
        commit_block: str | None = None
        while rob and commits < self.cfg.commit_width:
            uop = rob[0]
            if not uop.completed or uop.complete_cycle > cycle:
                break
            if uop.is_store:
                if direct_stores:
                    if self._hotspots is not None:
                        dcache.access_context = uop.record
                    result = dcache.store_access(uop.line)
                    if not result.ok:
                        self.stats.inc("core.commit_store_port_stalls")
                        commit_block = "store_port"
                        if self._critpath is not None:
                            self._critpath.note_commit_block(
                                uop.seq, "store_port")
                        break
                elif not dcache.buffer_store(uop.line, uop.byte_mask):
                    self.stats.inc("core.commit_wb_full_stalls")
                    commit_block = "wb_full"
                    if self._critpath is not None:
                        self._critpath.note_commit_block(uop.seq, "wb_full")
                    break
                self.lsq.retire_store(uop)
            elif uop.is_load:
                self.lsq.retire_load(uop)
            rob.popleft()
            commits += 1
            self._committed += 1
            if self._pipe is not None:
                self._pipe.record_commit(uop, cycle)
            if self._validate is not None:
                self._validate.on_commit(uop, cycle)
            if uop is self._waiting_serialize:
                self._waiting_serialize = None
                self._fetch_block_cause = StallCause.SERIALIZE
                resume = cycle + 1
                if resume > self._fetch_blocked_until:
                    self._fetch_blocked_until = resume
                if self._critpath is not None:
                    self._critpath.note_redirect(resume, "serialize",
                                                 uop.seq)
            if self._critpath is not None:
                self._critpath.record_commit(uop, cycle)
            if self._hotspots is not None:
                self._hotspots.record_commit(uop)
        if commits:
            self._last_activity = cycle
            self.stats.inc("core.commits", commits)
            if self._tracing:
                self.tracer.emit(cycle, "commit", n=commits)
        self._attribute_cycle(cycle, commits, commit_block)

    # ------------------------------------------------------------------
    # Stall attribution (see repro.obs.stall for the model)
    # ------------------------------------------------------------------
    def _attribute_cycle(self, cycle: int, commits: int,
                         commit_block: str | None) -> None:
        """Charge this cycle's lost issue slots to one cause."""
        ledger = self.ledger
        if commits >= ledger.width:
            ledger.account(cycle, commits, StallCause.DRAIN)  # nothing lost
            return
        cause = self._classify_stall(cycle, commit_block)
        ledger.account(cycle, commits, cause)
        if self._hotspots is not None:
            # Charge the lost slots to the commit-head PC the classifier
            # blamed (empty window: the recorder's frontend bucket).
            self._hotspots.note_stall(cause, ledger.width - commits,
                                      self._rob[0] if self._rob else None)
        if self._tracing:
            self.tracer.emit(cycle, "stall", cause=cause.value,
                             lost=ledger.width - commits)

    def _classify_stall(self, cycle: int,
                        commit_block: str | None) -> StallCause:
        """Why the commit head (or the frontend) failed to fill the
        cycle.  Priority: explicit commit blocks, then the oldest
        in-flight uop's wait, then frontend state."""
        if commit_block == "wb_full":
            return StallCause.WRITE_BUFFER_FULL
        if commit_block == "store_port":
            return StallCause.DCACHE_PORT
        rob = self._rob
        if rob:
            head = rob[0]
            if head is self._waiting_branch:
                return StallCause.BRANCH
            if head is self._waiting_serialize:
                return StallCause.SERIALIZE
            if head.is_load and not head.completed:
                if head.mem_done:
                    # Data is on its way; where is it coming from?
                    if head.mem_source in ("miss", "secondary"):
                        return StallCause.NEXT_LEVEL
                    if head.mem_source == "hit":
                        # A port access that hit L1: latency a line
                        # buffer would have hidden.
                        return StallCause.LINE_BUFFER_MISS
                    return StallCause.EXEC  # forwarded / line-buffer read
                if head.addr_known:
                    block = head.lsq_block
                    if block in ("no_port", "bank_conflict", "mshr_full"):
                        return StallCause.DCACHE_PORT
                    if block in ("order", "sq_wait", "wb_conflict"):
                        return StallCause.MEM_ORDER
            return StallCause.EXEC
        # Empty window: the frontend owns the shortfall.
        if self._fetch_queue:
            return StallCause.FETCH      # uops decoding / queued
        if self._waiting_branch is not None:
            return StallCause.BRANCH
        if self._waiting_serialize is not None:
            return StallCause.SERIALIZE
        if self._trace_pos >= len(self._trace):
            return StallCause.DRAIN      # end-of-trace wind-down
        if cycle < self._fetch_blocked_until:
            return self._fetch_block_cause
        return StallCause.FETCH

    # ------------------------------------------------------------------
    # 4. issue
    # ------------------------------------------------------------------
    def _issue_stage(self, cycle: int) -> None:
        issued = 0
        width = self.cfg.issue_width
        keep: list[Uop] = []
        for uop in self._iq:
            if issued >= width or uop.num_waiting > 0 or \
                    uop.operands_ready > cycle:
                keep.append(uop)
                continue
            done_at = self.fu.try_issue(uop.opclass, cycle)
            if done_at is None:
                keep.append(uop)
                continue
            uop.issued = True
            uop.issue_cycle = cycle
            issued += 1
            if uop.is_load or uop.is_store:
                self._events_addr.setdefault(done_at, []).append(uop)
            else:
                self._events_complete.setdefault(done_at, []).append(uop)
        self._iq = keep
        if issued:
            self.stats.inc("core.issued", issued)

    # ------------------------------------------------------------------
    # 5. dispatch
    # ------------------------------------------------------------------
    def _dispatch_stage(self, cycle: int) -> None:
        fq = self._fetch_queue
        cfg = self.cfg
        dispatched = 0
        while fq and dispatched < cfg.dispatch_width:
            uop = fq[0]
            if uop.fetch_cycle + cfg.decode_latency > cycle:
                break
            if len(self._rob) >= cfg.rob_size:
                self.stats.inc("core.dispatch_rob_full")
                self.ledger.note_capacity("rob")
                if self._critpath is not None:
                    self._critpath.note_dispatch_block(uop.seq, "rob")
                break
            if len(self._iq) >= cfg.iq_size:
                self.stats.inc("core.dispatch_iq_full")
                self.ledger.note_capacity("iq")
                if self._critpath is not None:
                    self._critpath.note_dispatch_block(uop.seq, "iq")
                break
            if uop.is_load and self.lsq.lq_full:
                self.stats.inc("core.dispatch_lq_full")
                self.ledger.note_capacity("lq")
                if self._critpath is not None:
                    self._critpath.note_dispatch_block(uop.seq, "lq")
                break
            if uop.is_store and self.lsq.sq_full:
                self.stats.inc("core.dispatch_sq_full")
                self.ledger.note_capacity("sq")
                if self._critpath is not None:
                    self._critpath.note_dispatch_block(uop.seq, "sq")
                break
            fq.popleft()
            self._wire_dependences(uop)
            uop.dispatch_cycle = cycle
            self._rob.append(uop)
            self._iq.append(uop)
            if uop.is_load:
                self.lsq.add_load(uop)
            elif uop.is_store:
                self.lsq.add_store(uop)
            dispatched += 1
        if dispatched:
            self._last_activity = cycle
            self.stats.inc("core.dispatched", dispatched)

    def _wire_dependences(self, uop: Uop) -> None:
        record = uop.record
        scoreboard = self._scoreboard
        if uop.is_store:
            instr = record.instr
            if instr is not None:
                if instr.rs1 != 0:
                    self._add_dep(uop, instr.rs1, is_data=False)
                info = instr.info
                if not (info.rs2_bank is Bank.INT and instr.rs2 == 0):
                    self._add_dep(uop, instr.rs2, is_data=True)
            elif record.store_addr_count >= 0:
                # Deserialised records carry the exact operand split
                # the instruction would have produced.
                count = record.store_addr_count
                for position, reg in enumerate(record.sources):
                    self._add_dep(uop, reg, is_data=position >= count)
            else:
                # Instruction-less records with no persisted split
                # (synthetic traces): first source is the address base,
                # the rest feed the store data.
                for position, reg in enumerate(record.sources):
                    self._add_dep(uop, reg, is_data=position > 0)
        else:
            for reg in record.sources:
                self._add_dep(uop, reg, is_data=False)
        if record.dest is not None:
            scoreboard[record.dest] = uop

    def _add_dep(self, uop: Uop, reg: int, is_data: bool) -> None:
        producer = self._scoreboard.get(reg)
        if producer is None:
            return
        if producer.completed:
            when = producer.complete_cycle
            if is_data:
                if when > uop.data_ready_cycle:
                    uop.data_ready_cycle = when
            elif when > uop.operands_ready:
                uop.operands_ready = when
            return
        producer.consumers.append((uop, is_data))
        if self._critpath is not None:
            self._critpath.note_dep(uop.seq, producer.seq, is_data)
        if is_data:
            uop.data_waiting += 1
        else:
            uop.num_waiting += 1

    # ------------------------------------------------------------------
    # 6. fetch
    # ------------------------------------------------------------------
    def _fetch_stage(self, cycle: int) -> None:
        if self._waiting_branch is not None:
            self.stats.inc("fetch.stall_branch_cycles")
            return
        if self._waiting_serialize is not None:
            self.stats.inc("fetch.stall_serialize_cycles")
            return
        if cycle < self._fetch_blocked_until:
            self.stats.inc("fetch.stall_redirect_cycles")
            return
        trace = self._trace
        total = len(trace)
        if self._trace_pos >= total:
            return
        fq = self._fetch_queue
        cfg = self.cfg
        if len(fq) >= cfg.fetch_queue_size:
            self.stats.inc("fetch.stall_queue_cycles")
            return
        icache = self.mem.icache
        first = trace[self._trace_pos]
        block = icache.block_of(first.pc)
        if self._fetch_memo is not None and self._fetch_memo[0] == block:
            ready = self._fetch_memo[1]
        else:
            ready = icache.fetch(first.pc, cycle)
            self._fetch_memo = (block, ready)
        if ready > cycle:
            self._fetch_blocked_until = ready
            self._fetch_block_cause = StallCause.FETCH
            self.stats.inc("fetch.icache_stall_cycles", ready - cycle)
            return
        fetched = 0
        while (self._trace_pos < total and fetched < cfg.fetch_width
               and len(fq) < cfg.fetch_queue_size):
            record = trace[self._trace_pos]
            if icache.block_of(record.pc) != block:
                break
            uop = Uop(record, self._seq)
            self._seq += 1
            uop.fetch_cycle = cycle
            fq.append(uop)
            fetched += 1
            self._trace_pos += 1
            if record.is_control:
                if self._handle_control_fetch(uop, cycle):
                    break
            elif record.next_pc != record.pc + 4 or \
                    record.opclass is OpClass.SYSTEM and \
                    self._serializes(record):
                # A non-branch redirect: trap, interrupt or eret.  The
                # pipeline flushes; fetch resumes after the instruction
                # commits.
                uop.serialize = True
                self._waiting_serialize = uop
                self.stats.inc("fetch.serialize_redirects")
                break
        if fetched:
            self._last_activity = cycle
            self.stats.inc("fetch.fetched", fetched)

    @staticmethod
    def _serializes(record: TraceRecord) -> bool:
        instr = record.instr
        if instr is None:
            return record.serializes  # persisted hint (trace.io v2)
        return instr.opcode in (Opcode.SYSCALL, Opcode.ERET)

    def _handle_control_fetch(self, uop: Uop, cycle: int) -> bool:
        """Predict a control transfer at fetch; returns True to stop
        fetching this cycle."""
        record = uop.record
        cfg = self.cfg.bpred
        if uop.opclass is OpClass.BRANCH:
            predicted_taken, predicted_target = \
                self.bpred.predict_branch(record.pc)
            uop.predicted_taken = predicted_taken
            correct = predicted_taken == record.taken and (
                not record.taken or predicted_target == record.next_pc)
            if not correct:
                uop.mispredicted = True
                self._waiting_branch = uop
                if self._tracing:
                    self.tracer.emit(cycle, "fetch.mispredict",
                                     pc=record.pc, seq=uop.seq)
                return True
            return record.taken  # a taken branch ends the fetch block
        # Unconditional transfers.
        instr = record.instr
        opcode = instr.opcode if instr is not None else None
        predicted_target = self.bpred.predict_jump(record.pc)
        if predicted_target == record.next_pc:
            return True  # correctly predicted taken: block ends
        if opcode in (Opcode.J, Opcode.JAL) or \
                (instr is None and record.decode_redirect):
            # Target is in the instruction word: redirect at decode.
            self._fetch_blocked_until = cycle + 1 + cfg.btb_miss_redirect
            self._fetch_block_cause = StallCause.BRANCH
            self.stats.inc("fetch.jump_decode_redirects")
            if self._critpath is not None:
                self._critpath.note_redirect(self._fetch_blocked_until,
                                             "decode", uop.seq)
            return True
        # Register-indirect target: wait for execute.
        uop.mispredicted = True
        self._waiting_branch = uop
        return True

    # ------------------------------------------------------------------
    def _deadlock_report(self, cycle: int) -> str:
        head = self._rob[0] if self._rob else None
        return (f"timing core made no progress for "
                f"{self._watchdog_limit} cycles "
                f"(cycle={cycle}, committed={self._committed}, "
                f"rob={len(self._rob)}, iq={len(self._iq)}, "
                f"fq={len(self._fetch_queue)}, head={head!r})")


def simulate(trace: Sequence[TraceRecord],
             machine: MachineConfig,
             tracer: Tracer | None = None,
             metrics_interval: int | None = None,
             pipe_trace: PipeTrace | None = None,
             profiler: SelfProfiler | None = None,
             spans: SpanRecorder | None = None,
             validator: "Validator | None" = None,
             fastpath: bool | None = None,
             critpath: CritPathRecorder | None = None,
             hotspots: HotspotRecorder | None = None) -> CoreResult:
    """Convenience: run *trace* through a fresh machine instance."""
    return OoOCore(machine, tracer=tracer,
                   metrics_interval=metrics_interval,
                   pipe_trace=pipe_trace, profiler=profiler,
                   spans=spans, validator=validator,
                   fastpath=fastpath, critpath=critpath,
                   hotspots=hotspots).run(trace)
