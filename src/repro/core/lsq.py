"""The load/store queue and its cache-port scheduler.

This module implements the processor-side half of the paper's
techniques.  Every cycle :meth:`LoadStoreQueue.schedule` decides, for
each load whose address is known, where its data comes from — in order
of cost:

1. **In-flight store forwarding** — an older, not-yet-committed store
   in the SQ fully covers the load's bytes: forward, no port.
2. **Write buffer forwarding** — a retired store waiting to drain fully
   covers the load: forward, no port.
3. **Line buffer** — the load's line sits in the line buffer: serviced
   there, no cache port (the headline "extra buffering" win).
4. **Cache port** — the load needs a real port.  With *access
   combining* enabled, ready loads whose data falls in the same aligned
   port-width chunk share a single port access (the "wider cache port"
   win), up to ``max_combine`` per access.

Loads behind an older store with an unknown address wait (conservative
memory disambiguation, the common choice for this era), unless
``speculative_loads`` is set.
"""

from __future__ import annotations

from collections.abc import Callable

from typing import TYPE_CHECKING

from ..mem.dcache import AccessStatus, DataCacheSystem
from ..obs.tracer import NULL_TRACER, Tracer
from ..stats.counters import Stats
from .config import CoreConfig
from .uop import Uop

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..obs.critpath import CritPathRecorder
    from ..obs.hotspots import HotspotRecorder
    from ..validate.base import Validator

_INFINITY = float("inf")

#: schedule() reports a load's data-ready cycle through this callback.
CompleteLoad = Callable[[Uop, int], None]


class LoadStoreQueue:
    """Age-ordered load and store queues."""

    def __init__(self, config: CoreConfig, dcache: DataCacheSystem,
                 stats: Stats | None = None,
                 tracer: Tracer | None = None,
                 validator: "Validator | None" = None,
                 critpath: "CritPathRecorder | None" = None,
                 hotspots: "HotspotRecorder | None" = None) -> None:
        self.config = config
        self.dcache = dcache
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._validate = validator
        self._critpath = critpath
        self._hotspots = hotspots
        self.loads: list[Uop] = []
        self.stores: list[Uop] = []
        self._cycle = 0

    # ------------------------------------------------------------------
    # Occupancy (dispatch gating)
    # ------------------------------------------------------------------
    @property
    def lq_full(self) -> bool:
        return len(self.loads) >= self.config.lq_size

    @property
    def sq_full(self) -> bool:
        return len(self.stores) >= self.config.sq_size

    def add_load(self, uop: Uop) -> None:
        self.loads.append(uop)

    def add_store(self, uop: Uop) -> None:
        self.stores.append(uop)

    def retire_load(self, uop: Uop) -> None:
        self.loads.remove(uop)

    def retire_store(self, uop: Uop) -> None:
        self.stores.remove(uop)

    # ------------------------------------------------------------------
    # Address resolution (called by the pipeline's AGU event)
    # ------------------------------------------------------------------
    def resolve_address(self, uop: Uop) -> None:
        """Fill in line/chunk/byte-mask once the AGU produces the address."""
        record = uop.record
        uop.line = self.dcache.line_of(record.mem_addr)
        uop.chunk = self.dcache.chunk_of(record.mem_addr)
        uop.byte_mask = self.dcache.byte_mask(record.mem_addr,
                                              record.mem_size)
        uop.addr_known = True

    # ------------------------------------------------------------------
    # The per-cycle memory stage
    # ------------------------------------------------------------------
    def schedule(self, cycle: int, complete: CompleteLoad) -> None:
        """Service ready loads; see the module docstring for the policy."""
        self._cycle = cycle
        port_requests = self._classify_loads(cycle, complete)
        if port_requests:
            self._schedule_ports(port_requests, complete)

    def _classify_loads(self, cycle: int,
                        complete: CompleteLoad) -> list[Uop]:
        """Route each ready load to forwarding/line-buffer/port."""
        dcache = self.dcache
        stats = self.stats
        lb_reads = 0
        lb_cap = self.config.max_combine
        barrier = self._oldest_unknown_store_seq()
        port_requests: list[Uop] = []
        for load in self.loads:
            if not load.addr_known or load.mem_done:
                continue
            if load.seq > barrier and not self.config.speculative_loads:
                stats.inc("lsq.order_stalls")
                load.lsq_block = "order"
                if self._hotspots is not None:
                    self._hotspots.note_lsq_wait(load, "order_stalls")
                continue
            action = self._store_forwarding(load, cycle)
            if action == "forward":
                stats.inc("lsq.sq_forwards")
                self._finish(load, cycle + 1, complete, "sq")
                continue
            if action == "wait":
                stats.inc("lsq.sq_waits")
                load.lsq_block = "sq_wait"
                if self._hotspots is not None:
                    self._hotspots.note_lsq_wait(load, "sq_waits")
                continue
            wb_action = dcache.write_buffer_check(load.line, load.byte_mask)
            if wb_action == "forward":
                stats.inc("lsq.wb_forwards")
                self._finish(load, cycle + 1, complete, "wb")
                continue
            if wb_action == "conflict":
                stats.inc("lsq.wb_conflicts")
                load.lsq_block = "wb_conflict"
                if self._hotspots is not None:
                    self._hotspots.note_lsq_wait(load, "wb_conflicts")
                continue
            if lb_reads < lb_cap and dcache.line_buffer_hit(load.line):
                lb_reads += 1
                stats.inc("lsq.lb_loads")
                self._finish(load, cycle + self.config.lb_latency, complete,
                             "lb")
                continue
            port_requests.append(load)
        return port_requests

    def _schedule_ports(self, requests: list[Uop],
                        complete: CompleteLoad) -> None:
        """Send loads to the cache ports, combining within chunks."""
        dcache = self.dcache
        stats = self.stats
        if dcache.config.combine_loads:
            groups: dict[int, list[Uop]] = {}
            for load in requests:
                groups.setdefault(load.chunk, []).append(load)
            batches: list[list[Uop]] = []
            limit = self.config.max_combine
            for group in groups.values():
                for start in range(0, len(group), limit):
                    batches.append(group[start:start + limit])
        else:
            batches = [[load] for load in requests]
        for index, batch in enumerate(batches):
            if self._hotspots is not None:
                # Per-access D-cache counters land on the batch leader.
                dcache.access_context = batch[0].record
            result = dcache.load_access(batch[0].line)
            if result.status is AccessStatus.NO_PORT:
                for blocked in batches[index:]:
                    for load in blocked:
                        load.lsq_block = "no_port"
                return
            if result.status is AccessStatus.BANK_CONFLICT:
                for load in batch:
                    load.lsq_block = "bank_conflict"
                continue  # bank busy, no port spent; try other batches
            if result.status is AccessStatus.MSHR_FULL:
                for load in batch:
                    load.lsq_block = "mshr_full"
                continue  # the port is spent; these loads retry next cycle
            stats.inc("lsq.port_loads", len(batch))
            if len(batch) > 1:
                stats.inc("lsq.combined_loads", len(batch) - 1)
                stats.inc("lsq.combined_accesses")
                if self._hotspots is not None:
                    for load in batch[1:]:
                        self._hotspots.note_lsq_combined(load)
            for load in batch:
                self._finish(load, result.ready, complete, result.source)

    def _finish(self, load: Uop, ready: int, complete: CompleteLoad,
                source: str) -> None:
        if self._critpath is not None:
            # The block reason must be captured before it is cleared:
            # it names the wait between address-ready and this grant.
            self._critpath.note_mem(load.seq, self._cycle, ready, source,
                                    load.lsq_block)
        if self._hotspots is not None:
            self._hotspots.note_lsq_service(load, source)
        load.mem_done = True
        load.mem_source = source
        load.lsq_block = None
        if self.tracer.enabled:
            self.tracer.emit(self._cycle, "lsq.load", seq=load.seq,
                             line=load.line, source=source, ready=ready)
        if self._validate is not None:
            self._validate.on_load_serviced(self, load, ready, source,
                                            self._cycle)
        complete(load, ready)

    # ------------------------------------------------------------------
    # Memory-ordering helpers
    # ------------------------------------------------------------------
    def _oldest_unknown_store_seq(self) -> float:
        for store in self.stores:
            if not store.addr_known:
                return store.seq
        return _INFINITY

    def _store_forwarding(self, load: Uop, cycle: int) -> str:
        """Check the SQ for an older store supplying the load's bytes.

        Returns ``"forward"``, ``"wait"`` (overlap but not usable yet),
        or ``"none"``.  The newest older matching store wins.
        """
        for store in reversed(self.stores):
            if store.seq >= load.seq:
                continue
            if not store.addr_known:
                # Only reachable with speculative loads: optimistically
                # assume no conflict (replay is not modelled).
                continue
            if store.line != load.line:
                continue
            overlap = store.byte_mask & load.byte_mask
            if not overlap:
                continue
            if overlap == load.byte_mask:
                if store.data_waiting == 0 and \
                        store.data_ready_cycle <= cycle:
                    return "forward"
                return "wait"   # data not produced yet
            return "wait"       # partial overlap: wait for the store
        return "none"
