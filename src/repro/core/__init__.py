"""The dynamic superscalar timing core (the paper's host machine)."""

from .bpred import BTB, AlwaysTaken, BranchPredictor, GShare, TwoBitCounters
from .config import (
    BranchPredictorConfig,
    CoreConfig,
    FUSpec,
    MachineConfig,
    default_fu_specs,
)
from .fu import FUPool
from .lsq import LoadStoreQueue
from .pipeline import CoreResult, OoOCore, simulate
from .uop import Uop

__all__ = [
    "BTB",
    "AlwaysTaken",
    "BranchPredictor",
    "GShare",
    "TwoBitCounters",
    "BranchPredictorConfig",
    "CoreConfig",
    "FUSpec",
    "MachineConfig",
    "default_fu_specs",
    "FUPool",
    "LoadStoreQueue",
    "CoreResult",
    "OoOCore",
    "simulate",
    "Uop",
]
