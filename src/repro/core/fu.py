"""Functional unit pool with pipelined and unpipelined units."""

from __future__ import annotations

from ..isa import OpClass
from ..stats.counters import Stats
from .config import FUSpec


class FUPool:
    """Tracks per-cycle functional unit availability.

    Pipelined classes accept up to ``count`` new operations per cycle.
    Unpipelined classes (divides) hold a unit for the full latency.
    """

    def __init__(self, specs: dict[OpClass, FUSpec],
                 stats: Stats | None = None) -> None:
        self.specs = specs
        self.stats = stats if stats is not None else Stats()
        self._issued_this_cycle: dict[OpClass, int] = {}
        self._busy_until: dict[OpClass, list[int]] = {
            opclass: [] for opclass, spec in specs.items()
            if not spec.pipelined}

    def begin_cycle(self, cycle: int) -> None:
        self._issued_this_cycle.clear()

    def try_issue(self, opclass: OpClass, cycle: int) -> int | None:
        """Claim a unit; returns the completion cycle, or None if busy."""
        spec = self.specs[opclass]
        used = self._issued_this_cycle.get(opclass, 0)
        if used >= spec.count:
            self.stats.inc(f"fu.{opclass.value}.structural_stalls")
            return None
        if not spec.pipelined:
            busy = self._busy_until[opclass]
            busy[:] = [t for t in busy if t > cycle]
            if len(busy) >= spec.count:
                self.stats.inc(f"fu.{opclass.value}.structural_stalls")
                return None
            busy.append(cycle + spec.latency)
        self._issued_this_cycle[opclass] = used + 1
        self.stats.inc(f"fu.{opclass.value}.ops")
        return cycle + spec.latency
