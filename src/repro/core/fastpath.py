"""The specialized fast cycle loop — the uninstrumented twin of
:meth:`repro.core.pipeline.OoOCore._run_loop`.

When a core runs with *every* observability hook off (tracer, metrics,
pipe trace, validator, self-profiler — the zero-overhead-when-off
discipline makes that predicate exact), :meth:`OoOCore.run` dispatches
here instead of the instrumented reference loop.  This module is a
flattened re-statement of the same machine:

* the six per-cycle stage calls, the LSQ scheduler, the D-cache port
  arbitration, the write/line buffers and the I-cache hit path are
  inlined into one loop body with every configuration constant and
  mutable structure hoisted into locals;
* in-flight instructions are **int-coded slot lists** instead of
  :class:`~repro.core.uop.Uop` attribute bags (one ``BUILD_LIST``
  instead of ~20 ``STORE_ATTR`` per instruction, constant-index
  subscripts instead of attribute lookups in the wakeup loops);
* per-record decode work (opclass index, fetch block, cache line /
  chunk / byte mask, the dependence-wiring plan) is batched into one
  O(n) precompute pass over the trace;
* functional-unit arbitration uses per-opclass int-indexed arrays, so
  the issue loop never hashes an enum;
* statistics, the stall ledger and the load-latency histogram
  accumulate in plain local ints/dicts and are flushed into the real
  :class:`Stats` / :class:`StallLedger` / :class:`Histogram` objects
  once, at loop exit.  All hot-path counters are integer-valued and
  far below 2**53, so batched accumulation is float-exact, and a
  counter key is flushed only when its count is non-zero — exactly the
  keys the reference loop would have created.

Cold paths stay method calls on the real objects: L1 fills and victim
disposal (``DataCacheSystem._start_fill`` / ``_dispose_victim``),
next-line prefetch, the shared L2 (:class:`NextLevel`), and I-cache
misses.  They read ``dcache._cycle`` and the shared ``_pending`` dict,
which the loop keeps in step.

The contract — enforced by ``tests/test_fastpath_diff.py`` across the
F2 configuration grid and fuzzer-generated programs — is that
:func:`run_fast` produces a **byte-identical** :class:`CoreResult`
(cycles, every counter, the stall ledger, the load-latency histogram)
to the instrumented reference loop.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

from ..func.exceptions import SimError
from ..isa import Opcode, OpClass
from ..isa.opcodes import Bank
from ..mem.config import LineBufferFill, LineBufferOnStore
from ..obs.stall import CAUSE_ORDER, StallCause
from ..stats.histogram import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..trace.record import TraceRecord
    from .pipeline import OoOCore

__all__ = ["run_fast"]

_INFINITY = float("inf")

#: Opclasses in a fixed order; uops carry the index, the FU tables are
#: indexed by it, and the enum never gets hashed inside the loop.
_OPCS = tuple(OpClass)
_OPC_INDEX = {opclass: index for index, opclass in enumerate(_OPCS)}

# ----------------------------------------------------------------------
# Int-coded uop slots (a plain list per in-flight instruction).
# ----------------------------------------------------------------------
U_IDX = 0        # trace position (indexes the precomputed arrays)
U_SEQ = 1
U_OPC = 2        # opclass index into _OPCS
U_LOAD = 3
U_STORE = 4
U_FETCH = 5      # fetch cycle
U_DONE = 6       # completed
U_CCYC = 7       # complete cycle
U_NWAIT = 8      # outstanding operand producers
U_OPRDY = 9      # operands-ready cycle
U_CONS = 10      # consumers: list of (uop, is_data)
U_DWAIT = 11     # outstanding store-data producers
U_DRDY = 12      # store-data-ready cycle
U_AKNOWN = 13    # address resolved
U_LINE = 14
U_CHUNK = 15
U_MASK = 16
U_MEMDONE = 17   # load: serviced by the memory system
U_MEMSRC = 18    # where the load data came from (codes below)
U_BLK = 19       # why the LSQ last skipped the load (codes below)
U_ACYC = 20      # address-resolve cycle
U_MISP = 21
U_PTAKEN = 22
U_SERIAL = 23
U_INIQ = 24
U_SCANEP = 25

#: Shared consumer list for non-producer uops.  Only instructions some
#: later instruction depends on (``r_is_prod``) ever receive appends,
#: and those get a private list at fetch — this one stays empty.
_EMPTY_CONS: list = []

# mem_source codes (only their NEXT_LEVEL / hit split matters to the
# stall classifier; the string forms live in the reference path).
_SRC_SQ = 1
_SRC_WB = 2
_SRC_LB = 3
_SRC_HIT = 4
_SRC_MISS = 5
_SRC_SECONDARY = 6

# lsq_block codes.
_BLK_ORDER = 1
_BLK_SQ_WAIT = 2
_BLK_WB_CONFLICT = 3
_BLK_NO_PORT = 4
_BLK_BANK = 5
_BLK_MSHR = 6

# fetch kinds from the precompute pass.
_K_PLAIN = 0
_K_BRANCH = 1
_K_JUMP = 2
_K_SERIALIZE = 3


def _record_serializes(record: "TraceRecord") -> bool:
    instr = record.instr
    if instr is None:
        return record.serializes
    return instr.opcode in (Opcode.SYSCALL, Opcode.ERET)


def _precompute(trace: Sequence["TraceRecord"], line_shift: int,
                chunk_shift: int, line_size: int,
                fetch_bytes: int) -> tuple:
    """One pass over the trace: everything derivable from a record
    alone, so the cycle loop only touches flat int arrays."""
    n = len(trace)
    r_opc = [0] * n
    r_kind = [0] * n
    r_jdec = [False] * n
    r_pc = [0] * n
    r_npc = [0] * n
    r_taken = [False] * n
    r_block = [0] * n
    r_load = [False] * n
    r_store = [False] * n
    r_line = [0] * n
    r_chunk = [0] * n
    r_mask = [0] * n
    r_prod: list[tuple] = [()] * n
    r_is_prod = [False] * n
    r_proto: list[list] = [None] * n  # type: ignore[list-item]
    # tuple.index with identity fast-path beats hashing the enum (the
    # pure-Python enum.__hash__ would dominate this pass).
    opcs = _OPCS
    branch_cls = OpClass.BRANCH
    system_cls = OpClass.SYSTEM
    offset_mask = line_size - 1
    last_writer: dict = {}
    for i, record in enumerate(trace):
        pc = record.pc
        opclass = record.opclass
        r_opc[i] = opcs.index(opclass)
        r_pc[i] = pc
        npc = record.next_pc
        r_npc[i] = npc
        r_taken[i] = record.taken
        r_block[i] = pc // fetch_bytes
        is_store = record.is_store
        is_load = record.is_load
        r_load[i] = is_load
        r_store[i] = is_store
        if is_load or is_store:
            address = record.mem_addr
            offset = address & offset_mask
            if offset + record.mem_size > line_size:
                raise ValueError("access crosses the line boundary")
            r_line[i] = address >> line_shift
            r_chunk[i] = address >> chunk_shift
            r_mask[i] = ((1 << record.mem_size) - 1) << offset
        instr = record.instr
        if is_store:
            if instr is not None:
                deps = []
                if instr.rs1 != 0:
                    deps.append((instr.rs1, False))
                info = instr.info
                if not (info.rs2_bank is Bank.INT and instr.rs2 == 0):
                    deps.append((instr.rs2, True))
            elif record.store_addr_count >= 0:
                count = record.store_addr_count
                deps = [(reg, position >= count)
                        for position, reg
                        in enumerate(record.sources)]
            else:
                deps = [(reg, position > 0)
                        for position, reg
                        in enumerate(record.sources)]
        else:
            deps = [(reg, False) for reg in record.sources]
        # Resolve register names to static producer indices: dispatch
        # order is trace order, so the last earlier writer of a
        # register is exactly what the dynamic scoreboard would hold.
        if deps:
            prods = []
            for reg, is_data in deps:
                producer_index = last_writer.get(reg)
                if producer_index is not None:
                    prods.append((producer_index, is_data))
                    r_is_prod[producer_index] = True
            if prods:
                r_prod[i] = tuple(prods)
        if record.dest is not None:
            last_writer[record.dest] = i
        if record.is_control:
            if opclass is branch_cls:
                r_kind[i] = _K_BRANCH
            else:
                r_kind[i] = _K_JUMP
                opcode = instr.opcode if instr is not None else None
                r_jdec[i] = opcode in (Opcode.J, Opcode.JAL) or \
                    (instr is None and record.decode_redirect)
        elif npc != pc + 4 or \
                opclass is system_cls and _record_serializes(record):
            r_kind[i] = _K_SERIALIZE
    # Prototype uop per index: fetch copies it and patches the fetch
    # cycle, and gives producers a fresh consumer list (everyone else
    # shares the never-mutated empty one).  The sequence number IS the
    # trace index: fetch consumes the trace in order, one uop per
    # record, so the two counters are always equal.
    empty_cons = _EMPTY_CONS
    for i in range(n):
        r_proto[i] = [i, i, r_opc[i], r_load[i], r_store[i], 0,
                      False, -1, 0, 0, empty_cons, 0, 0, False,
                      r_line[i], r_chunk[i], r_mask[i], False, 0, 0,
                      -1, False, False, False, False, -1]
    return (r_opc, r_kind, r_jdec, r_pc, r_npc, r_taken, r_block,
            r_load, r_store, r_line, r_chunk, r_mask, r_prod,
            r_is_prod, r_proto)


#: Memo for :func:`_precompute`, keyed by trace identity plus the cache
#: geometry the arrays depend on.  Each entry keeps a strong reference
#: to its trace, which is what makes the ``id()`` key safe: the id
#: cannot be recycled while the entry is alive.  Bounded LRU so sweeps
#: over many traces do not pin them all in memory.
_PRECOMPUTE_MEMO: OrderedDict = OrderedDict()
_PRECOMPUTE_MEMO_MAX = 4


def _precompute_cached(trace: Sequence["TraceRecord"], line_shift: int,
                       chunk_shift: int, line_size: int,
                       fetch_bytes: int) -> tuple:
    key = (id(trace), line_shift, chunk_shift, line_size, fetch_bytes)
    entry = _PRECOMPUTE_MEMO.get(key)
    if entry is not None and entry[0] is trace:
        _PRECOMPUTE_MEMO.move_to_end(key)
        return entry[1]
    arrays = _precompute(trace, line_shift, chunk_shift, line_size,
                         fetch_bytes)
    _PRECOMPUTE_MEMO[key] = (trace, arrays)
    while len(_PRECOMPUTE_MEMO) > _PRECOMPUTE_MEMO_MAX:
        _PRECOMPUTE_MEMO.popitem(last=False)
    return arrays


def run_fast(core: "OoOCore", trace: Sequence["TraceRecord"]) -> int:
    """Run *trace* through *core* on the flattened loop; returns the
    final cycle count.  Mutates the core exactly like the reference
    loop: stats, stall ledger, load-latency histogram, committed count
    and the drained pipeline structures."""
    # ------------------------------------------------------------------
    # Configuration constants.
    # ------------------------------------------------------------------
    cfg = core.cfg
    mem = core.mem
    dcache = mem.dcache
    icache = mem.icache
    dcfg = dcache.config
    bpred = core.bpred
    bpcfg = cfg.bpred

    fetch_width = cfg.fetch_width
    dispatch_width = cfg.dispatch_width
    issue_width = cfg.issue_width
    commit_width = cfg.commit_width
    rob_size = cfg.rob_size
    iq_size = cfg.iq_size
    lq_size = cfg.lq_size
    sq_size = cfg.sq_size
    decode_latency = cfg.decode_latency
    fetch_queue_size = cfg.fetch_queue_size
    lb_latency = cfg.lb_latency
    max_combine = cfg.max_combine
    speculative_loads = cfg.speculative_loads
    mispredict_redirect = bpcfg.mispredict_redirect
    btb_miss_redirect = bpcfg.btb_miss_redirect

    n_ports = dcfg.ports
    n_mshrs = dcfg.mshrs
    hit_latency = dcfg.hit_latency
    bank_mask = dcfg.banks - 1
    combine_loads = dcfg.combine_loads
    direct_stores = dcfg.write_buffer_depth == 0
    wb_depth = dcfg.write_buffer_depth
    wb_combine = dcfg.combine_stores
    pending_cap = 2 * n_mshrs

    line_buffer = dcache.line_buffer
    lb_fill_on_access = dcfg.line_buffer_fill is LineBufferFill.ON_ACCESS
    lb_fill_on_fill = dcfg.line_buffer_fill is LineBufferFill.ON_FILL
    lb_invalidate = dcfg.line_buffer_on_store is LineBufferOnStore.INVALIDATE
    lb_entries = dcfg.line_buffer_entries
    lb_lines = line_buffer._lines if line_buffer is not None else None
    has_lb = line_buffer is not None

    ic_hit_latency = icache.config.hit_latency
    ic_shift = icache.cache.line_shift
    ic_sets = icache.cache._sets
    ic_set_mask = icache.cache._set_mask
    ic_cache = icache.cache
    ic_pending = icache._pending
    next_level = icache.next_level

    dsets = dcache.cache._sets
    dset_mask = dcache.cache._set_mask
    dc_pending = dcache._pending

    od_move = OrderedDict.move_to_end
    od_popfirst = OrderedDict.popitem

    # Branch prediction: direction predictor via bound methods, BTB
    # inlined (a direct-mapped list of (pc, target) tuples).
    bp_predict = bpred.direction.predict
    bp_update = bpred.direction.update
    btb_targets = bpred.btb._targets
    btb_mask = bpred.btb.mask

    # FU pool as int-indexed arrays; unpipelined classes carry a
    # busy-until list, pipelined ones None.
    n_opc = len(_OPCS)
    fu_count = [0] * n_opc
    fu_latency = [0] * n_opc
    fu_busy: list[list[int] | None] = [None] * n_opc
    for index, opclass in enumerate(_OPCS):
        spec = cfg.fu_specs[opclass]
        fu_count[index] = spec.count
        fu_latency[index] = spec.latency
        if not spec.pipelined:
            fu_busy[index] = []
    fu_used = [0] * n_opc

    opc_branch = _OPC_INDEX[OpClass.BRANCH]
    opc_jump = _OPC_INDEX[OpClass.JUMP]

    # Stall causes as CAUSE_ORDER indices.
    cause_index = {cause: i for i, cause in enumerate(CAUSE_ORDER)}
    ci_fetch = cause_index[StallCause.FETCH]
    ci_branch = cause_index[StallCause.BRANCH]
    ci_serialize = cause_index[StallCause.SERIALIZE]
    ci_exec = cause_index[StallCause.EXEC]
    ci_dcache_port = cause_index[StallCause.DCACHE_PORT]
    ci_lb_miss = cause_index[StallCause.LINE_BUFFER_MISS]
    ci_wb_full = cause_index[StallCause.WRITE_BUFFER_FULL]
    ci_mem_order = cause_index[StallCause.MEM_ORDER]
    ci_next_level = cause_index[StallCause.NEXT_LEVEL]
    ci_drain = cause_index[StallCause.DRAIN]

    led_width = core.ledger.width
    led_interval = core.ledger.interval
    led_lost = [0] * len(CAUSE_ORDER)
    led_series: list[dict[int, int]] = [{} for _ in CAUSE_ORDER]
    cap_rob = cap_iq = cap_lq = cap_sq = 0

    # ------------------------------------------------------------------
    # Trace precompute.
    # ------------------------------------------------------------------
    (r_opc, r_kind, r_jdec, r_pc, r_npc, r_taken, r_block,
     r_load, r_store, r_line, r_chunk, r_mask, r_prod, r_is_prod,
     r_proto) = \
        _precompute_cached(trace, dcache.line_shift, dcache.chunk_shift,
                           dcache.line_size, icache.fetch_bytes)
    total = len(trace)

    # ------------------------------------------------------------------
    # Pipeline state (shared objects hoisted, scalars local).
    # ------------------------------------------------------------------
    rob = core._rob
    fq = core._fetch_queue
    # Issue queue, split: iq_ready holds only entries whose name
    # operands are all resolved (NWAIT == 0), kept in sequence order;
    # waiters are reachable solely through their producers' U_CONS
    # lists and re-enter iq_ready at wakeup.  iq_count tracks total
    # occupancy for the dispatch capacity check.
    iq_ready: list[list] = []
    iq_count = 0
    for uop in core._iq:
        while len(uop) <= U_INIQ:
            uop.append(False)
        uop[U_INIQ] = True
        iq_count += 1
        if uop[U_NWAIT] == 0:
            iq_ready.append(uop)
    # Producer tracking by trace index (replaces the register
    # scoreboard: the precompute pass already resolved every register
    # name to its static last writer).  idx_done_at[i] >= 0 once
    # instruction i has completed; idx_uop holds in-flight refs for
    # instructions some later instruction depends on, dropped at
    # completion so retired uops are not pinned.
    idx_done_at = [-1] * total
    idx_uop: list[list | None] = [None] * total
    # AKNOWN stores indexed by cache line (each list seq-ascending):
    # the store-forwarding scan only looks at same-line stores.
    sq_by_line: dict[int, list[list]] = {}
    sqline_get = sq_by_line.get
    ev_complete: dict[int, list] = {}
    ev_addr: dict[int, list] = {}
    evc_pop = ev_complete.pop
    eva_pop = ev_addr.pop
    evc_get = ev_complete.get
    eva_setdefault = ev_addr.setdefault
    rob_append = rob.append
    rob_popleft = rob.popleft
    fq_append = fq.append
    fq_popleft = fq.popleft
    lsq_loads: list[list] = core.lsq.loads
    lsq_stores: list[list] = core.lsq.stores
    # Derived LSQ views, so the per-cycle scans touch only entries that
    # can act: loads with a resolved address and no scheduled access
    # (rebuilt from lsq_loads when a load address resolves), and the
    # program-order queue of stores whose address is still unknown
    # (fed at dispatch, drained lazily from the front — a store with an
    # unknown address can never retire, so the front is authoritative).
    act_loads: list[list] = []
    act_dirty = False
    sq_unknown: list[list] = []
    wbl_lines: list[int] = []
    wbl_masks: list[int] = []
    # Occupancy count per line, so the per-load forwarding check is a
    # dict miss instead of a positional scan in the common no-overlap
    # case (without combining the same line can appear twice).
    wbl_count: dict[int, int] = {}
    banks_used: set[int] = set()

    trace_pos = 0
    cycle = 0
    committed = 0
    last_activity = 0
    waiting_branch: list | None = None
    waiting_serialize: list | None = None
    fetch_blocked_until = 0
    fb_cause = ci_fetch
    memo_block = -1
    memo_ready = 0
    watchdog_limit = core._watchdog_limit
    # Earliest cycle any IQ entry could issue: the issue scan is
    # skipped entirely while cycle < iq_min_ready (identical to the
    # reference loop, which would scan and find nothing ready — no
    # stats fire on a scan that issues nothing and hits no FU limit).
    # Maintained conservatively low: wakeups and dispatches lower it,
    # each real scan recomputes it exactly.
    _FAR = 1 << 60
    iq_min_ready = 0

    # Memory-disambiguation epoch: bumped whenever the store set a load
    # scans against changes (store address resolved, store retired,
    # write-buffer alloc/combine/drain).  A load whose full scan came
    # back negative at the current epoch — order check passed, no
    # forwarding match, no write-buffer match — skips straight to the
    # port request on later cycles: the negative path emits no per-
    # cycle statistics, so replaying it is pure waste.  Disabled when a
    # line buffer is configured: the LB probe depends on the cycle
    # (fill pending, per-cycle read budget) and counts hits/misses.
    mem_epoch = 0
    scan_memo = not has_lb

    # Local statistic accumulators (flushed once, at loop exit).
    st_commits = st_commit_store_port = st_commit_wb_full = 0
    st_issued = st_dispatched = 0
    st_rob_full = st_iq_full = st_lq_full = st_sq_full = 0
    st_fetched = st_f_branch = st_f_serial = st_f_redirect = 0
    st_f_queue = st_f_icache = st_f_serial_red = st_f_jdec = 0
    st_l_order = st_l_sqf = st_l_sqw = st_l_wbf = st_l_wbc = 0
    st_l_lb = st_l_port = st_l_comb = st_l_comba = 0
    st_d_bankc = st_d_portu = st_d_lnp = st_d_lsec = 0
    st_d_lhit = st_d_lmiss = st_d_lmshr = 0
    st_d_snp = st_d_smerge = st_d_shit = st_d_smiss = st_d_smshr = 0
    st_w_comb = st_w_full = st_w_alloc = st_w_drain = 0
    st_w_lf = st_w_lc = 0
    st_b_hits = st_b_miss = st_b_fill = st_b_sinv = st_b_supd = 0
    st_p_br = st_p_brc = st_p_brm = 0
    st_p_j = st_p_jc = st_p_jm = 0
    st_i_acc = st_i_pend = st_i_hit = st_i_miss = 0
    fu_ops = [0] * n_opc
    fu_stalls = [0] * n_opc
    ll_counts: dict[int, int] = {}

    try:
        while trace_pos < total or rob or fq:
            # ----------------------------------------------------------
            # begin-cycle bookkeeping (DataCacheSystem.begin_cycle)
            # ----------------------------------------------------------
            dcache._cycle = cycle
            ports_used = 0
            if bank_mask:
                banks_used.clear()
            if len(dc_pending) > pending_cap:
                dc_pending = {line: ready for line, ready
                              in dc_pending.items() if ready > cycle}
                dcache._pending = dc_pending

            # ----------------------------------------------------------
            # 1. events: AGU address resolution, then FU completions
            # ----------------------------------------------------------
            addr_events = eva_pop(cycle, None)
            if addr_events is not None:
                for uop in addr_events:
                    uop[U_AKNOWN] = True
                    uop[U_ACYC] = cycle
                    if uop[U_STORE]:
                        if uop[U_DWAIT] == 0 and not uop[U_DONE]:
                            uop[U_DONE] = True
                            ready = uop[U_DRDY]
                            when = cycle if cycle >= ready else ready
                            uop[U_CCYC] = when
                            idx_done_at[uop[U_IDX]] = when
                        line = uop[U_LINE]
                        line_stores = sqline_get(line)
                        if line_stores is None:
                            sq_by_line[line] = [uop]
                            mem_epoch += 1
                        else:
                            # keep seq-ascending despite out-of-order
                            # address resolution
                            line_stores.append(uop)
                            position = len(line_stores) - 1
                            store_seq = uop[U_SEQ]
                            while position and \
                                    line_stores[position - 1][U_SEQ] \
                                    > store_seq:
                                line_stores[position] = \
                                    line_stores[position - 1]
                                position -= 1
                            line_stores[position] = uop
                        mem_epoch += 1
                    else:
                        act_dirty = True
            complete_events = evc_pop(cycle, None)
            if complete_events is not None:
                for uop in complete_events:
                    uop[U_DONE] = True
                    uop[U_CCYC] = cycle
                    index = uop[U_IDX]
                    idx_done_at[index] = cycle
                    idx_uop[index] = None
                    for consumer, is_data in uop[U_CONS]:
                        if is_data:
                            consumer[U_DWAIT] -= 1
                            if cycle > consumer[U_DRDY]:
                                consumer[U_DRDY] = cycle
                            if consumer[U_AKNOWN] and \
                                    consumer[U_DWAIT] == 0 and \
                                    not consumer[U_DONE]:
                                consumer[U_DONE] = True
                                ready = consumer[U_DRDY]
                                when = cycle if cycle >= ready \
                                    else ready
                                consumer[U_CCYC] = when
                                idx_done_at[consumer[U_IDX]] = when
                        else:
                            consumer[U_NWAIT] -= 1
                            if cycle > consumer[U_OPRDY]:
                                consumer[U_OPRDY] = cycle
                            if consumer[U_NWAIT] == 0:
                                ready = consumer[U_OPRDY]
                                if ready < iq_min_ready:
                                    iq_min_ready = ready
                                position = len(iq_ready)
                                consumer_seq = consumer[U_SEQ]
                                while position and \
                                        iq_ready[position - 1][U_SEQ] \
                                        > consumer_seq:
                                    position -= 1
                                iq_ready.insert(position, consumer)
                    opc = uop[U_OPC]
                    if opc == opc_branch:
                        # BranchPredictor.resolve_branch, inlined.
                        pc = r_pc[index]
                        taken = r_taken[index]
                        bp_update(pc, taken)
                        if taken:
                            btb_targets[(pc >> 2) & btb_mask] = \
                                (pc, r_npc[index])
                        st_p_br += 1
                        if uop[U_MISP]:
                            st_p_brm += 1
                        else:
                            st_p_brc += 1
                    elif opc == opc_jump:
                        pc = r_pc[index]
                        btb_targets[(pc >> 2) & btb_mask] = \
                            (pc, r_npc[index])
                        st_p_j += 1
                        if uop[U_MISP]:
                            st_p_jm += 1
                        else:
                            st_p_jc += 1
                    if uop is waiting_branch:
                        waiting_branch = None
                        fb_cause = ci_branch
                        resume = cycle + mispredict_redirect
                        if resume > fetch_blocked_until:
                            fetch_blocked_until = resume

            # ----------------------------------------------------------
            # 2. commit
            # ----------------------------------------------------------
            commits = 0
            commit_block = 0   # 0 none, 1 store_port, 2 wb_full
            while rob and commits < commit_width:
                uop = rob[0]
                if not uop[U_DONE] or uop[U_CCYC] > cycle:
                    break
                if uop[U_STORE]:
                    line = uop[U_LINE]
                    if direct_stores:
                        # DataCacheSystem.store_access, inlined.
                        if ports_used >= n_ports:
                            st_d_snp += 1
                            st_commit_store_port += 1
                            commit_block = 1
                            break
                        if bank_mask and (line & bank_mask) in banks_used:
                            st_d_bankc += 1
                            st_d_snp += 1
                            st_commit_store_port += 1
                            commit_block = 1
                            break
                        pending_ready = dc_pending.get(line, 0)
                        if pending_ready > cycle:
                            ports_used += 1
                            if bank_mask:
                                banks_used.add(line & bank_mask)
                            st_d_portu += 1
                            st_d_smerge += 1
                            dset = dsets[line & dset_mask]
                            if line in dset:
                                dset[line] = True
                                od_move(dset, line)
                        else:
                            dset = dsets[line & dset_mask]
                            if line in dset:
                                ports_used += 1
                                if bank_mask:
                                    banks_used.add(line & bank_mask)
                                st_d_portu += 1
                                st_d_shit += 1
                                dset[line] = True
                                od_move(dset, line)
                            else:
                                mshr_busy = 0
                                for ready in dc_pending.values():
                                    if ready > cycle:
                                        mshr_busy += 1
                                if mshr_busy >= n_mshrs:
                                    # The port is spent even on the
                                    # MSHR-full retry (as in the slow
                                    # path's _claim_port-then-fail).
                                    ports_used += 1
                                    if bank_mask:
                                        banks_used.add(line & bank_mask)
                                    st_d_portu += 1
                                    st_d_smshr += 1
                                    st_commit_store_port += 1
                                    commit_block = 1
                                    break
                                ports_used += 1
                                if bank_mask:
                                    banks_used.add(line & bank_mask)
                                st_d_portu += 1
                                st_d_smiss += 1
                                dcache._start_fill(line, dirty=True)
                        if has_lb and line in lb_lines:
                            if lb_invalidate:
                                del lb_lines[line]
                                st_b_sinv += 1
                            else:
                                od_move(lb_lines, line)
                                st_b_supd += 1
                    else:
                        # WriteBuffer.add, inlined.
                        mask = uop[U_MASK]
                        added = False
                        if wb_combine and line in wbl_count:
                            position = wbl_lines.index(line)
                            wbl_masks[position] |= mask
                            st_w_comb += 1
                            mem_epoch += 1
                            added = True
                        if not added:
                            if len(wbl_lines) >= wb_depth:
                                st_w_full += 1
                                st_commit_wb_full += 1
                                commit_block = 2
                                break
                            wbl_lines.append(line)
                            wbl_masks.append(mask)
                            if line in wbl_count:
                                wbl_count[line] += 1
                            else:
                                wbl_count[line] = 1
                            st_w_alloc += 1
                            mem_epoch += 1
                    assert lsq_stores[0] is uop
                    del lsq_stores[0]
                    line_stores = sq_by_line[line]
                    if len(line_stores) == 1:
                        assert line_stores[0] is uop
                        del sq_by_line[line]
                    else:
                        assert line_stores[0] is uop
                        del line_stores[0]
                    mem_epoch += 1
                elif uop[U_LOAD]:
                    assert lsq_loads[0] is uop
                    del lsq_loads[0]
                rob_popleft()
                commits += 1
                committed += 1
                if uop is waiting_serialize:
                    waiting_serialize = None
                    fb_cause = ci_serialize
                    resume = cycle + 1
                    if resume > fetch_blocked_until:
                        fetch_blocked_until = resume
            if commits:
                last_activity = cycle
                st_commits += commits

            # ----------------------------------------------------------
            # Stall attribution (StallLedger.account, inlined)
            # ----------------------------------------------------------
            lost = led_width - commits
            if lost > 0:
                if commit_block == 2:
                    ci = ci_wb_full
                elif commit_block == 1:
                    ci = ci_dcache_port
                elif rob:
                    head = rob[0]
                    ci = ci_exec
                    if head is waiting_branch:
                        ci = ci_branch
                    elif head is waiting_serialize:
                        ci = ci_serialize
                    elif head[U_LOAD] and not head[U_DONE]:
                        if head[U_MEMDONE]:
                            source = head[U_MEMSRC]
                            if source == _SRC_MISS or \
                                    source == _SRC_SECONDARY:
                                ci = ci_next_level
                            elif source == _SRC_HIT:
                                ci = ci_lb_miss
                        elif head[U_AKNOWN]:
                            block_code = head[U_BLK]
                            if block_code >= _BLK_NO_PORT:
                                ci = ci_dcache_port
                            elif block_code:
                                ci = ci_mem_order
                elif fq:
                    ci = ci_fetch
                elif waiting_branch is not None:
                    ci = ci_branch
                elif waiting_serialize is not None:
                    ci = ci_serialize
                elif trace_pos >= total:
                    ci = ci_drain
                elif cycle < fetch_blocked_until:
                    ci = fb_cause
                else:
                    ci = ci_fetch
                led_lost[ci] += lost
                buckets = led_series[ci]
                bucket = cycle // led_interval
                if bucket in buckets:
                    buckets[bucket] += lost
                else:
                    buckets[bucket] = lost

            # ----------------------------------------------------------
            # 3a. memory: LSQ load scheduling
            # ----------------------------------------------------------
            if act_dirty:
                act_loads = [load for load in lsq_loads
                             if load[U_AKNOWN] and not load[U_MEMDONE]]
                act_dirty = False
            if act_loads:
                while sq_unknown and sq_unknown[0][U_AKNOWN]:
                    del sq_unknown[0]
                barrier = sq_unknown[0][U_SEQ] if sq_unknown \
                    else _INFINITY
                port_requests = None
                lb_reads = 0
                scheduled = 0
                for load in act_loads:
                    if load[U_SCANEP] == mem_epoch:
                        # Negative scan already proven at this epoch.
                        if port_requests is None:
                            port_requests = [load]
                        else:
                            port_requests.append(load)
                        continue
                    load_seq = load[U_SEQ]
                    if load_seq > barrier and not speculative_loads:
                        st_l_order += 1
                        load[U_BLK] = _BLK_ORDER
                        continue
                    load_line = load[U_LINE]
                    load_mask = load[U_MASK]
                    # In-flight store forwarding (newest older
                    # match; only same-line AKNOWN stores can match,
                    # which is exactly what sq_by_line holds).
                    action = 0
                    line_stores = sqline_get(load_line)
                    if line_stores is not None:
                        for store in reversed(line_stores):
                            if store[U_SEQ] >= load_seq:
                                continue
                            overlap = store[U_MASK] & load_mask
                            if not overlap:
                                continue
                            if overlap == load_mask and \
                                    store[U_DWAIT] == 0 and \
                                    store[U_DRDY] <= cycle:
                                action = 1
                            else:
                                action = 2
                            break
                    if action == 1:
                        st_l_sqf += 1
                        scheduled += 1
                        load[U_MEMDONE] = True
                        load[U_MEMSRC] = _SRC_SQ
                        load[U_BLK] = 0
                        ready = cycle + 1
                        latency = ready - load[U_ACYC]
                        if latency in ll_counts:
                            ll_counts[latency] += 1
                        else:
                            ll_counts[latency] = 1
                        bucket = evc_get(ready)
                        if bucket is None:
                            ev_complete[ready] = [load]
                        else:
                            bucket.append(load)
                        continue
                    if action == 2:
                        st_l_sqw += 1
                        load[U_BLK] = _BLK_SQ_WAIT
                        continue
                    # Write-buffer forwarding check (newest match).
                    wb_action = 0
                    if load_line in wbl_count:
                        for position in range(
                                len(wbl_lines) - 1, -1, -1):
                            if wbl_lines[position] != load_line:
                                continue
                            overlap = wbl_masks[position] & load_mask
                            if not overlap:
                                continue
                            if overlap == load_mask:
                                st_w_lf += 1
                                wb_action = 1
                            else:
                                st_w_lc += 1
                                wb_action = 2
                            break
                    if wb_action == 1:
                        st_l_wbf += 1
                        scheduled += 1
                        load[U_MEMDONE] = True
                        load[U_MEMSRC] = _SRC_WB
                        load[U_BLK] = 0
                        ready = cycle + 1
                        latency = ready - load[U_ACYC]
                        if latency in ll_counts:
                            ll_counts[latency] += 1
                        else:
                            ll_counts[latency] = 1
                        bucket = evc_get(ready)
                        if bucket is None:
                            ev_complete[ready] = [load]
                        else:
                            bucket.append(load)
                        continue
                    if wb_action == 2:
                        st_l_wbc += 1
                        load[U_BLK] = _BLK_WB_CONFLICT
                        continue
                    # Line buffer (DataCacheSystem.line_buffer_hit).
                    if lb_reads < max_combine and has_lb and \
                            not dc_pending.get(load_line, 0) > cycle:
                        if load_line in lb_lines:
                            od_move(lb_lines, load_line)
                            st_b_hits += 1
                            lb_reads += 1
                            st_l_lb += 1
                            scheduled += 1
                            load[U_MEMDONE] = True
                            load[U_MEMSRC] = _SRC_LB
                            load[U_BLK] = 0
                            ready = cycle + lb_latency
                            assert ready > cycle
                            latency = ready - load[U_ACYC]
                            if latency in ll_counts:
                                ll_counts[latency] += 1
                            else:
                                ll_counts[latency] = 1
                            bucket = evc_get(ready)
                            if bucket is None:
                                ev_complete[ready] = [load]
                            else:
                                bucket.append(load)
                            continue
                        st_b_miss += 1
                    elif scan_memo:
                        load[U_SCANEP] = mem_epoch
                    if port_requests is None:
                        port_requests = [load]
                    else:
                        port_requests.append(load)
                # Port scheduling with wide-port access combining.
                if port_requests is not None:
                    if combine_loads:
                        groups: dict[int, list] = {}
                        for load in port_requests:
                            chunk = load[U_CHUNK]
                            group = groups.get(chunk)
                            if group is None:
                                groups[chunk] = [load]
                            else:
                                group.append(load)
                        batches = []
                        for group in groups.values():
                            for start in range(0, len(group), max_combine):
                                batches.append(
                                    group[start:start + max_combine])
                        for batch_index, batch in enumerate(batches):
                            line = batch[0][U_LINE]
                            # DataCacheSystem.load_access, inlined.
                            if ports_used >= n_ports:
                                st_d_lnp += 1
                                for blocked in batches[batch_index:]:
                                    for load in blocked:
                                        load[U_BLK] = _BLK_NO_PORT
                                break
                            if bank_mask and (line & bank_mask) in banks_used:
                                st_d_bankc += 1
                                st_d_lnp += 1
                                for load in batch:
                                    load[U_BLK] = _BLK_BANK
                                continue
                            pending_ready = dc_pending.get(line, 0)
                            if pending_ready > cycle:
                                ports_used += 1
                                if bank_mask:
                                    banks_used.add(line & bank_mask)
                                st_d_portu += 1
                                st_d_lsec += 1
                                ready = pending_ready
                                source = _SRC_SECONDARY
                            else:
                                dset = dsets[line & dset_mask]
                                if line in dset:
                                    ports_used += 1
                                    if bank_mask:
                                        banks_used.add(line & bank_mask)
                                    st_d_portu += 1
                                    od_move(dset, line)
                                    st_d_lhit += 1
                                    ready = cycle + hit_latency
                                    source = _SRC_HIT
                                else:
                                    mshr_busy = 0
                                    for fill_ready in dc_pending.values():
                                        if fill_ready > cycle:
                                            mshr_busy += 1
                                    if mshr_busy >= n_mshrs:
                                        ports_used += 1
                                        if bank_mask:
                                            banks_used.add(line & bank_mask)
                                        st_d_portu += 1
                                        st_d_lmshr += 1
                                        for load in batch:
                                            load[U_BLK] = _BLK_MSHR
                                        continue
                                    ports_used += 1
                                    if bank_mask:
                                        banks_used.add(line & bank_mask)
                                    st_d_portu += 1
                                    st_d_lmiss += 1
                                    ready = dcache._start_fill(line)
                                    source = _SRC_MISS
                                    dcache._maybe_prefetch(line + 1)
                            if lb_fill_on_access and has_lb:
                                # LineBuffer.insert, inlined.
                                if line in lb_lines:
                                    od_move(lb_lines, line)
                                else:
                                    if len(lb_lines) >= lb_entries:
                                        od_popfirst(lb_lines, last=False)
                                    lb_lines[line] = None
                                    st_b_fill += 1
                            batch_size = len(batch)
                            scheduled += batch_size
                            st_l_port += batch_size
                            if batch_size > 1:
                                st_l_comb += batch_size - 1
                                st_l_comba += 1
                            for load in batch:
                                load[U_MEMDONE] = True
                                load[U_MEMSRC] = source
                                load[U_BLK] = 0
                                assert ready > cycle, \
                                    "load data cannot be ready in the past"
                                latency = ready - load[U_ACYC]
                                if latency in ll_counts:
                                    ll_counts[latency] += 1
                                else:
                                    ll_counts[latency] = 1
                                bucket = evc_get(ready)
                                if bucket is None:
                                    ev_complete[ready] = [load]
                                else:
                                    bucket.append(load)
                    else:
                        # Single-access ports: iterate the requests
                        # directly — no per-load batch lists, and the
                        # port-exhausted tail is marked in place.
                        n_req = len(port_requests)
                        req_pos = 0
                        while req_pos < n_req:
                            if ports_used >= n_ports:
                                st_d_lnp += 1
                                for position in range(req_pos, n_req):
                                    port_requests[position][U_BLK] = \
                                        _BLK_NO_PORT
                                break
                            load = port_requests[req_pos]
                            req_pos += 1
                            line = load[U_LINE]
                            # DataCacheSystem.load_access, inlined.
                            if bank_mask and \
                                    (line & bank_mask) in banks_used:
                                st_d_bankc += 1
                                st_d_lnp += 1
                                load[U_BLK] = _BLK_BANK
                                continue
                            pending_ready = dc_pending.get(line, 0)
                            if pending_ready > cycle:
                                ports_used += 1
                                if bank_mask:
                                    banks_used.add(line & bank_mask)
                                st_d_portu += 1
                                st_d_lsec += 1
                                ready = pending_ready
                                source = _SRC_SECONDARY
                            else:
                                dset = dsets[line & dset_mask]
                                if line in dset:
                                    ports_used += 1
                                    if bank_mask:
                                        banks_used.add(line & bank_mask)
                                    st_d_portu += 1
                                    od_move(dset, line)
                                    st_d_lhit += 1
                                    ready = cycle + hit_latency
                                    source = _SRC_HIT
                                else:
                                    mshr_busy = 0
                                    for fill_ready in \
                                            dc_pending.values():
                                        if fill_ready > cycle:
                                            mshr_busy += 1
                                    if mshr_busy >= n_mshrs:
                                        ports_used += 1
                                        if bank_mask:
                                            banks_used.add(
                                                line & bank_mask)
                                        st_d_portu += 1
                                        st_d_lmshr += 1
                                        load[U_BLK] = _BLK_MSHR
                                        continue
                                    ports_used += 1
                                    if bank_mask:
                                        banks_used.add(line & bank_mask)
                                    st_d_portu += 1
                                    st_d_lmiss += 1
                                    ready = dcache._start_fill(line)
                                    source = _SRC_MISS
                                    dcache._maybe_prefetch(line + 1)
                            if lb_fill_on_access and has_lb:
                                # LineBuffer.insert, inlined.
                                if line in lb_lines:
                                    od_move(lb_lines, line)
                                else:
                                    if len(lb_lines) >= lb_entries:
                                        od_popfirst(lb_lines, last=False)
                                    lb_lines[line] = None
                                    st_b_fill += 1
                            scheduled += 1
                            st_l_port += 1
                            load[U_MEMDONE] = True
                            load[U_MEMSRC] = source
                            load[U_BLK] = 0
                            assert ready > cycle, \
                                "load data cannot be ready in the past"
                            latency = ready - load[U_ACYC]
                            if latency in ll_counts:
                                ll_counts[latency] += 1
                            else:
                                ll_counts[latency] = 1
                            bucket = evc_get(ready)
                            if bucket is None:
                                ev_complete[ready] = [load]
                            else:
                                bucket.append(load)
                if scheduled:
                    act_loads = [load for load in act_loads
                                 if not load[U_MEMDONE]]

            # ----------------------------------------------------------
            # 3b. memory: write buffer drain into leftover port cycles
            # ----------------------------------------------------------
            while wbl_lines and ports_used < n_ports:
                line = wbl_lines[0]
                # DataCacheSystem.store_access, inlined (drain flavour).
                if bank_mask and (line & bank_mask) in banks_used:
                    st_d_bankc += 1
                    st_d_snp += 1
                    break
                ok = True
                pending_ready = dc_pending.get(line, 0)
                if pending_ready > cycle:
                    ports_used += 1
                    if bank_mask:
                        banks_used.add(line & bank_mask)
                    st_d_portu += 1
                    st_d_smerge += 1
                    dset = dsets[line & dset_mask]
                    if line in dset:
                        dset[line] = True
                        od_move(dset, line)
                else:
                    dset = dsets[line & dset_mask]
                    if line in dset:
                        ports_used += 1
                        if bank_mask:
                            banks_used.add(line & bank_mask)
                        st_d_portu += 1
                        st_d_shit += 1
                        dset[line] = True
                        od_move(dset, line)
                    else:
                        mshr_busy = 0
                        for fill_ready in dc_pending.values():
                            if fill_ready > cycle:
                                mshr_busy += 1
                        if mshr_busy >= n_mshrs:
                            ports_used += 1
                            if bank_mask:
                                banks_used.add(line & bank_mask)
                            st_d_portu += 1
                            st_d_smshr += 1
                            ok = False
                        else:
                            ports_used += 1
                            if bank_mask:
                                banks_used.add(line & bank_mask)
                            st_d_portu += 1
                            st_d_smiss += 1
                            dcache._start_fill(line, dirty=True)
                if ok:
                    if has_lb and line in lb_lines:
                        if lb_invalidate:
                            del lb_lines[line]
                            st_b_sinv += 1
                        else:
                            od_move(lb_lines, line)
                            st_b_supd += 1
                    del wbl_lines[0]
                    del wbl_masks[0]
                    remaining = wbl_count[line] - 1
                    if remaining:
                        wbl_count[line] = remaining
                    else:
                        del wbl_count[line]
                    st_w_drain += 1
                    mem_epoch += 1
                else:
                    break

            # ----------------------------------------------------------
            # 4. issue (wakeup/select + FU allocation)
            # ----------------------------------------------------------
            issued = 0
            if iq_ready and iq_min_ready <= cycle:
                for index in range(n_opc):
                    fu_used[index] = 0
                keep = []
                next_ready = _FAR
                for uop in iq_ready:
                    if issued >= issue_width or uop[U_OPRDY] > cycle:
                        keep.append(uop)
                        if uop[U_OPRDY] < next_ready:
                            next_ready = uop[U_OPRDY]
                        continue
                    opc = uop[U_OPC]
                    used = fu_used[opc]
                    if used >= fu_count[opc]:
                        fu_stalls[opc] += 1
                        keep.append(uop)
                        next_ready = cycle
                        continue
                    busy = fu_busy[opc]
                    if busy is not None:
                        busy[:] = [t for t in busy if t > cycle]
                        if len(busy) >= fu_count[opc]:
                            fu_stalls[opc] += 1
                            keep.append(uop)
                            next_ready = cycle
                            continue
                        busy.append(cycle + fu_latency[opc])
                    fu_used[opc] = used + 1
                    fu_ops[opc] += 1
                    done_at = cycle + fu_latency[opc]
                    issued += 1
                    uop[U_INIQ] = False
                    iq_count -= 1
                    if uop[U_LOAD] or uop[U_STORE]:
                        eva_setdefault(done_at, []).append(uop)
                    else:
                        bucket = evc_get(done_at)
                        if bucket is None:
                            ev_complete[done_at] = [uop]
                        else:
                            bucket.append(uop)
                iq_ready = keep
                iq_min_ready = next_ready
                if issued:
                    st_issued += issued

            # ----------------------------------------------------------
            # 5. dispatch (rename: dependences, ROB/IQ/LSQ allocation)
            # ----------------------------------------------------------
            dispatched = 0
            while fq and dispatched < dispatch_width:
                uop = fq[0]
                if uop[U_FETCH] + decode_latency > cycle:
                    break
                if len(rob) >= rob_size:
                    st_rob_full += 1
                    cap_rob += 1
                    break
                if iq_count >= iq_size:
                    st_iq_full += 1
                    cap_iq += 1
                    break
                is_load = uop[U_LOAD]
                is_store = uop[U_STORE]
                if is_load and len(lsq_loads) >= lq_size:
                    st_lq_full += 1
                    cap_lq += 1
                    break
                if is_store and len(lsq_stores) >= sq_size:
                    st_sq_full += 1
                    cap_sq += 1
                    break
                fq_popleft()
                index = uop[U_IDX]
                for producer_index, is_data in r_prod[index]:
                    when = idx_done_at[producer_index]
                    if when >= 0:
                        if is_data:
                            if when > uop[U_DRDY]:
                                uop[U_DRDY] = when
                        elif when > uop[U_OPRDY]:
                            uop[U_OPRDY] = when
                        continue
                    idx_uop[producer_index][U_CONS].append(
                        (uop, is_data))
                    if is_data:
                        uop[U_DWAIT] += 1
                    else:
                        uop[U_NWAIT] += 1
                if r_is_prod[index]:
                    idx_uop[index] = uop
                uop[U_INIQ] = True
                iq_count += 1
                if uop[U_NWAIT] == 0:
                    if uop[U_OPRDY] < iq_min_ready:
                        iq_min_ready = uop[U_OPRDY]
                    iq_ready.append(uop)
                rob_append(uop)
                if is_load:
                    lsq_loads.append(uop)
                elif is_store:
                    lsq_stores.append(uop)
                    sq_unknown.append(uop)
                dispatched += 1
            if dispatched:
                last_activity = cycle
                st_dispatched += dispatched

            # ----------------------------------------------------------
            # 6. fetch
            # ----------------------------------------------------------
            fetched = 0
            while True:   # single-shot block: break == stage return
                if waiting_branch is not None:
                    st_f_branch += 1
                    break
                if waiting_serialize is not None:
                    st_f_serial += 1
                    break
                if cycle < fetch_blocked_until:
                    st_f_redirect += 1
                    break
                if trace_pos >= total:
                    break
                if len(fq) >= fetch_queue_size:
                    st_f_queue += 1
                    break
                block = r_block[trace_pos]
                if memo_block == block:
                    ready = memo_ready
                else:
                    # ICacheSystem.fetch, inlined.
                    st_i_acc += 1
                    ic_line = r_pc[trace_pos] >> ic_shift
                    pending_ready = ic_pending.get(ic_line, 0)
                    if pending_ready > cycle:
                        st_i_pend += 1
                        ready = pending_ready
                    else:
                        ic_set = ic_sets[ic_line & ic_set_mask]
                        if ic_line in ic_set:
                            od_move(ic_set, ic_line)
                            st_i_hit += 1
                            ready = cycle + ic_hit_latency - 1
                        else:
                            st_i_miss += 1
                            ready = next_level.request(ic_line, cycle)
                            ic_pending[ic_line] = ready
                            victim = ic_cache.fill(ic_line)
                            if victim is not None and victim[1]:
                                next_level.writeback(victim[0], cycle)
                            if len(ic_pending) > 64:
                                ic_pending = {
                                    line: fill_ready for line, fill_ready
                                    in ic_pending.items()
                                    if fill_ready > cycle}
                                icache._pending = ic_pending
                    memo_block = block
                    memo_ready = ready
                if ready > cycle:
                    fetch_blocked_until = ready
                    fb_cause = ci_fetch
                    st_f_icache += ready - cycle
                    break
                while trace_pos < total and fetched < fetch_width and \
                        len(fq) < fetch_queue_size:
                    index = trace_pos
                    if r_block[index] != block:
                        break
                    uop = r_proto[index].copy()
                    uop[U_FETCH] = cycle
                    if r_is_prod[index]:
                        uop[U_CONS] = []
                    fq_append(uop)
                    fetched += 1
                    trace_pos += 1
                    kind = r_kind[index]
                    if kind == _K_BRANCH:
                        pc = r_pc[index]
                        predicted_taken = bp_predict(pc)
                        if predicted_taken:
                            entry = btb_targets[(pc >> 2) & btb_mask]
                            if entry is not None and entry[0] == pc:
                                predicted_target = entry[1]
                            else:
                                predicted_taken = False
                                predicted_target = None
                        else:
                            predicted_target = None
                        uop[U_PTAKEN] = predicted_taken
                        taken = r_taken[index]
                        correct = predicted_taken == taken and (
                            not taken or predicted_target == r_npc[index])
                        if not correct:
                            uop[U_MISP] = True
                            waiting_branch = uop
                            break
                        if taken:
                            break
                    elif kind == _K_JUMP:
                        pc = r_pc[index]
                        entry = btb_targets[(pc >> 2) & btb_mask]
                        if entry is not None and entry[0] == pc and \
                                entry[1] == r_npc[index]:
                            break
                        if r_jdec[index]:
                            fetch_blocked_until = \
                                cycle + 1 + btb_miss_redirect
                            fb_cause = ci_branch
                            st_f_jdec += 1
                            break
                        uop[U_MISP] = True
                        waiting_branch = uop
                        break
                    elif kind == _K_SERIALIZE:
                        uop[U_SERIAL] = True
                        waiting_serialize = uop
                        st_f_serial_red += 1
                        break
                if fetched:
                    last_activity = cycle
                    st_fetched += fetched
                break

            # ----------------------------------------------------------
            # Idle-cycle skip.  When this cycle performed no work at
            # all, every stall statistic the reference loop would emit
            # is constant until the next scheduled event: events are
            # always scheduled in the future, commit is capped by the
            # head's completion cycle, wakeup/issue by iq_min_ready,
            # decode by the head-of-queue fetch gate, and blocked loads
            # re-classify identically while the stores they wait on are
            # unchanged.  Jump straight to the earliest cycle anything
            # can change and apply the per-cycle statistics in bulk —
            # byte-identical to running the intermediate cycles.
            # Cycles that touched a port, drained (or merely retried)
            # the write buffer, or blocked a commit are never skipped:
            # their cache-side statistics are not state-constant.
            # ----------------------------------------------------------
            if not (commits or dispatched or issued or fetched or
                    commit_block or ports_used or wbl_lines):
                skip_to = last_activity + watchdog_limit + 1
                if ev_complete:
                    event_at = min(ev_complete)
                    if event_at < skip_to:
                        skip_to = event_at
                if ev_addr:
                    event_at = min(ev_addr)
                    if event_at < skip_to:
                        skip_to = event_at
                ok_skip = True
                if rob:
                    sk_head = rob[0]
                    if sk_head[U_DONE] and sk_head[U_CCYC] < skip_to:
                        skip_to = sk_head[U_CCYC]
                if iq_ready and iq_min_ready < skip_to:
                    skip_to = iq_min_ready
                gate_passed = False
                if fq:
                    gate = fq[0][U_FETCH] + decode_latency
                    if gate > cycle:
                        if gate < skip_to:
                            skip_to = gate
                    else:
                        gate_passed = True
                if cycle < fetch_blocked_until < skip_to:
                    skip_to = fetch_blocked_until
                n_order = n_sqwait = 0
                for load in act_loads:
                    blk = load[U_BLK]
                    if blk == _BLK_ORDER:
                        n_order += 1
                    elif blk == _BLK_SQ_WAIT:
                        n_sqwait += 1
                    else:
                        # Port/bank/MSHR/WB-conflict blocks depend on
                        # per-cycle cache state: not skippable.
                        ok_skip = False
                        break
                if ok_skip and n_sqwait:
                    for store in lsq_stores:
                        drdy = store[U_DRDY]
                        if cycle < drdy < skip_to:
                            skip_to = drdy
                dispatch_full = 0
                if ok_skip and gate_passed:
                    sk_uop = fq[0]
                    if len(rob) >= rob_size:
                        dispatch_full = 1
                    elif iq_count >= iq_size:
                        dispatch_full = 2
                    elif sk_uop[U_LOAD] and len(lsq_loads) >= lq_size:
                        dispatch_full = 3
                    elif sk_uop[U_STORE] and \
                            len(lsq_stores) >= sq_size:
                        dispatch_full = 4
                    else:
                        ok_skip = False   # would dispatch next cycle
                fetch_stall = 0
                if ok_skip:
                    if waiting_branch is not None:
                        fetch_stall = 1
                    elif waiting_serialize is not None:
                        fetch_stall = 2
                    elif cycle + 1 < fetch_blocked_until:
                        fetch_stall = 3
                    elif trace_pos >= total:
                        fetch_stall = 4   # drained: no statistic
                    elif len(fq) >= fetch_queue_size:
                        fetch_stall = 5
                    else:
                        ok_skip = False   # would fetch next cycle
                if ok_skip and skip_to - cycle > 1:
                    k = skip_to - cycle - 1
                    if fetch_stall == 1:
                        st_f_branch += k
                    elif fetch_stall == 2:
                        st_f_serial += k
                    elif fetch_stall == 3:
                        st_f_redirect += k
                    elif fetch_stall == 5:
                        st_f_queue += k
                    if dispatch_full == 1:
                        st_rob_full += k
                        cap_rob += k
                    elif dispatch_full == 2:
                        st_iq_full += k
                        cap_iq += k
                    elif dispatch_full == 3:
                        st_lq_full += k
                        cap_lq += k
                    elif dispatch_full == 4:
                        st_sq_full += k
                        cap_sq += k
                    if n_order:
                        st_l_order += n_order * k
                    if n_sqwait:
                        st_l_sqw += n_sqwait * k
                    # Stall-ledger attribution for the skipped cycles.
                    # commits == 0 and commit_block == 0 there, so only
                    # the tail of the reference chain can apply, and
                    # (as argued above) its verdict is constant across
                    # the window.
                    if led_width > 0:
                        if rob:
                            sk_head = rob[0]
                            ci = ci_exec
                            if sk_head is waiting_branch:
                                ci = ci_branch
                            elif sk_head is waiting_serialize:
                                ci = ci_serialize
                            elif sk_head[U_LOAD] and \
                                    not sk_head[U_DONE]:
                                if sk_head[U_MEMDONE]:
                                    source = sk_head[U_MEMSRC]
                                    if source == _SRC_MISS or \
                                            source == _SRC_SECONDARY:
                                        ci = ci_next_level
                                    elif source == _SRC_HIT:
                                        ci = ci_lb_miss
                                elif sk_head[U_AKNOWN]:
                                    block_code = sk_head[U_BLK]
                                    if block_code >= _BLK_NO_PORT:
                                        ci = ci_dcache_port
                                    elif block_code:
                                        ci = ci_mem_order
                        elif fq:
                            ci = ci_fetch
                        elif waiting_branch is not None:
                            ci = ci_branch
                        elif waiting_serialize is not None:
                            ci = ci_serialize
                        elif trace_pos >= total:
                            ci = ci_drain
                        elif cycle < fetch_blocked_until:
                            ci = fb_cause
                        else:
                            ci = ci_fetch
                        led_lost[ci] += led_width * k
                        buckets = led_series[ci]
                        b_first = (cycle + 1) // led_interval
                        b_last = (cycle + k) // led_interval
                        if b_first == b_last:
                            if b_first in buckets:
                                buckets[b_first] += led_width * k
                            else:
                                buckets[b_first] = led_width * k
                        else:
                            for b in range(b_first, b_last + 1):
                                if b == b_first:
                                    span = led_interval - \
                                        ((cycle + 1) % led_interval)
                                elif b == b_last:
                                    span = \
                                        ((cycle + k) % led_interval) + 1
                                else:
                                    span = led_interval
                                slots = led_width * span
                                if b in buckets:
                                    buckets[b] += slots
                                else:
                                    buckets[b] = slots
                    cycle += k

            if cycle - last_activity > watchdog_limit:
                head = rob[0] if rob else None
                raise SimError(
                    f"timing core made no progress for "
                    f"{watchdog_limit} cycles (cycle={cycle}, "
                    f"committed={committed}, rob={len(rob)}, "
                    f"iq={iq_count}, fq={len(fq)}, head={head!r})")
            cycle += 1
    finally:
        # --------------------------------------------------------------
        # Write the batched state back into the real objects, so the
        # caller (and post-mortem inspection after an exception) sees
        # exactly what the reference loop would have produced.
        # --------------------------------------------------------------
        core._trace_pos = trace_pos
        core._seq = trace_pos
        core._cycle = cycle - 1 if cycle else 0
        core._committed = committed
        core._last_activity = last_activity
        core._iq = [uop for uop in rob if uop[U_INIQ]]
        core._events_complete = ev_complete
        core._events_addr = ev_addr
        core._waiting_branch = waiting_branch
        core._waiting_serialize = waiting_serialize
        core._fetch_blocked_until = fetch_blocked_until
        core._fetch_block_cause = CAUSE_ORDER[fb_cause]
        core._fetch_memo = (memo_block, memo_ready) \
            if memo_block >= 0 else None
        dcache._ports_used = ports_used
        if wbl_lines:
            from ..mem.writebuffer import WriteBufferEntry
            dcache.write_buffer._entries = [
                WriteBufferEntry(line, mask)
                for line, mask in zip(wbl_lines, wbl_masks)]

        inc = core.stats.inc
        if st_commits:
            inc("core.commits", st_commits)
        if st_commit_store_port:
            inc("core.commit_store_port_stalls", st_commit_store_port)
        if st_commit_wb_full:
            inc("core.commit_wb_full_stalls", st_commit_wb_full)
        if st_issued:
            inc("core.issued", st_issued)
        if st_dispatched:
            inc("core.dispatched", st_dispatched)
        if st_rob_full:
            inc("core.dispatch_rob_full", st_rob_full)
        if st_iq_full:
            inc("core.dispatch_iq_full", st_iq_full)
        if st_lq_full:
            inc("core.dispatch_lq_full", st_lq_full)
        if st_sq_full:
            inc("core.dispatch_sq_full", st_sq_full)
        if st_fetched:
            inc("fetch.fetched", st_fetched)
        if st_f_branch:
            inc("fetch.stall_branch_cycles", st_f_branch)
        if st_f_serial:
            inc("fetch.stall_serialize_cycles", st_f_serial)
        if st_f_redirect:
            inc("fetch.stall_redirect_cycles", st_f_redirect)
        if st_f_queue:
            inc("fetch.stall_queue_cycles", st_f_queue)
        if st_f_icache:
            inc("fetch.icache_stall_cycles", st_f_icache)
        if st_f_serial_red:
            inc("fetch.serialize_redirects", st_f_serial_red)
        if st_f_jdec:
            inc("fetch.jump_decode_redirects", st_f_jdec)
        if st_l_order:
            inc("lsq.order_stalls", st_l_order)
        if st_l_sqf:
            inc("lsq.sq_forwards", st_l_sqf)
        if st_l_sqw:
            inc("lsq.sq_waits", st_l_sqw)
        if st_l_wbf:
            inc("lsq.wb_forwards", st_l_wbf)
        if st_l_wbc:
            inc("lsq.wb_conflicts", st_l_wbc)
        if st_l_lb:
            inc("lsq.lb_loads", st_l_lb)
        if st_l_port:
            inc("lsq.port_loads", st_l_port)
        if st_l_comb:
            inc("lsq.combined_loads", st_l_comb)
        if st_l_comba:
            inc("lsq.combined_accesses", st_l_comba)
        if st_d_bankc:
            inc("dcache.bank_conflicts", st_d_bankc)
        if st_d_portu:
            inc("dcache.port_uses", st_d_portu)
        if st_d_lnp:
            inc("dcache.load_no_port", st_d_lnp)
        if st_d_lsec:
            inc("dcache.load_secondary_misses", st_d_lsec)
        if st_d_lhit:
            inc("dcache.load_hits", st_d_lhit)
        if st_d_lmiss:
            inc("dcache.load_misses", st_d_lmiss)
        if st_d_lmshr:
            inc("dcache.load_mshr_full", st_d_lmshr)
        if st_d_snp:
            inc("dcache.store_no_port", st_d_snp)
        if st_d_smerge:
            inc("dcache.store_mshr_merges", st_d_smerge)
        if st_d_shit:
            inc("dcache.store_hits", st_d_shit)
        if st_d_smiss:
            inc("dcache.store_misses", st_d_smiss)
        if st_d_smshr:
            inc("dcache.store_mshr_full", st_d_smshr)
        if st_w_comb:
            inc("wb.combined", st_w_comb)
        if st_w_full:
            inc("wb.full_stalls", st_w_full)
        if st_w_alloc:
            inc("wb.entries_allocated", st_w_alloc)
        if st_w_drain:
            inc("wb.drains", st_w_drain)
        if st_w_lf:
            inc("wb.load_forwards", st_w_lf)
        if st_w_lc:
            inc("wb.load_conflicts", st_w_lc)
        if st_b_hits:
            inc("lb.hits", st_b_hits)
        if st_b_miss:
            inc("lb.misses", st_b_miss)
        if st_b_fill:
            inc("lb.fills", st_b_fill)
        if st_b_sinv:
            inc("lb.store_invalidations", st_b_sinv)
        if st_b_supd:
            inc("lb.store_updates", st_b_supd)
        if st_p_br:
            inc("bpred.branches", st_p_br)
        if st_p_brc:
            inc("bpred.correct", st_p_brc)
        if st_p_brm:
            inc("bpred.mispredicts", st_p_brm)
        if st_p_j:
            inc("bpred.jumps", st_p_j)
        if st_p_jc:
            inc("bpred.jump_correct", st_p_jc)
        if st_p_jm:
            inc("bpred.jump_mispredicts", st_p_jm)
        if st_i_acc:
            inc("icache.accesses", st_i_acc)
        if st_i_pend:
            inc("icache.pending_hits", st_i_pend)
        if st_i_hit:
            inc("icache.hits", st_i_hit)
        if st_i_miss:
            inc("icache.misses", st_i_miss)
        for index, count in enumerate(fu_ops):
            if count:
                inc(f"fu.{_OPCS[index].value}.ops", count)
        for index, count in enumerate(fu_stalls):
            if count:
                inc(f"fu.{_OPCS[index].value}.structural_stalls", count)

        histogram = core.load_latency
        if ll_counts:
            counts = histogram._counts
            for value, count in ll_counts.items():
                counts[value] += count
            histogram._total += sum(ll_counts.values())

        ledger = core.ledger
        ledger.cycles += cycle
        ledger.committed += committed
        for ci, cause in enumerate(CAUSE_ORDER):
            lost = led_lost[ci]
            if not lost:
                continue
            ledger.lost[cause] += lost
            series = ledger.series.get(cause)
            if series is None:
                series = ledger.series[cause] = Histogram(cause.value)
            series_counts = series._counts
            for bucket, slots in led_series[ci].items():
                series_counts[bucket] += slots
            series._total += lost
        if cap_rob:
            ledger.capacity["rob"] = \
                ledger.capacity.get("rob", 0) + cap_rob
        if cap_iq:
            ledger.capacity["iq"] = ledger.capacity.get("iq", 0) + cap_iq
        if cap_lq:
            ledger.capacity["lq"] = ledger.capacity.get("lq", 0) + cap_lq
        if cap_sq:
            ledger.capacity["sq"] = ledger.capacity.get("sq", 0) + cap_sq
    return cycle
