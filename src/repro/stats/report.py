"""Plain-text table rendering for experiment output.

Every experiment produces a :class:`Table`: named columns, one row per
workload/sweep-point, and a caption tying it back to the paper's
table/figure identifier.  Rendering is deliberately boring ASCII so the
benchmark harness output diffs cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def format_value(value: object, precision: int = 3) -> str:
    """Render one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value and abs(value) < 10 ** -precision:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class Table:
    """A captioned results table."""

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> list[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, row_key: object, column: str) -> object:
        """Value at (first column == *row_key*, *column*)."""
        col_index = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[col_index]
        raise KeyError(f"no row keyed {row_key!r}")

    def as_dict(self) -> dict[str, object]:
        """JSON-ready snapshot (used by the ``--json`` manifests)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_csv(self) -> str:
        """Render as CSV (header row + data rows; notes as comments)."""
        import csv
        import io
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow([format_value(v, self.precision) for v in row])
        for note in self.notes:
            buffer.write(f"# {note}\r\n")
        return buffer.getvalue()

    def render(self) -> str:
        cells = [[format_value(v, self.precision) for v in row]
                 for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(f"{name:>{w}}" for name, w
                           in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(f"{cell:>{w}}" for cell, w
                                   in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
