"""A simple integer histogram with percentile queries.

Used for latency distributions (load-to-use, fill times).  Values are
counted exactly in a dict — distributions here have a few dozen
distinct values, so no bucketing is needed.
"""

from __future__ import annotations

from collections import Counter


class Histogram:
    """Exact counts over integer samples."""

    def __init__(self, name: str = "histogram") -> None:
        self.name = name
        self._counts: Counter[int] = Counter()
        self._total = 0

    def record(self, value: int, count: int = 1) -> None:
        """Add *count* samples of *value*."""
        self._counts[value] += count
        self._total += count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        if not self._total:
            return 0.0
        return sum(v * c for v, c in self._counts.items()) / self._total

    @property
    def min(self) -> int:
        if not self._counts:
            raise ValueError("empty histogram")
        return min(self._counts)

    @property
    def max(self) -> int:
        if not self._counts:
            raise ValueError("empty histogram")
        return max(self._counts)

    def percentile(self, fraction: float) -> int:
        """Smallest value v with at least *fraction* of samples ≤ v."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self._counts:
            raise ValueError("empty histogram")
        threshold = fraction * self._total
        running = 0
        for value in sorted(self._counts):
            running += self._counts[value]
            if running >= threshold:
                return value
        return self.max  # pragma: no cover - numeric safety net

    def percentile_or(self, fraction: float, default: int = 0) -> int:
        """:meth:`percentile`, but *default* instead of raising for an
        empty histogram — occupancy series legitimately stay empty when
        a structure is absent (e.g. a zero-depth write buffer)."""
        if not self._counts:
            return default
        return self.percentile(fraction)

    def fraction_at_most(self, value: int) -> float:
        """Fraction of samples ≤ *value*."""
        if not self._total:
            return 0.0
        covered = sum(c for v, c in self._counts.items() if v <= value)
        return covered / self._total

    def as_dict(self) -> dict[int, int]:
        """Value → count, sorted by value."""
        return dict(sorted(self._counts.items()))

    def merge(self, other: "Histogram") -> None:
        for value, count in other._counts.items():
            self.record(value, count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, n={self._total}, "
                f"mean={self.mean:.2f})")
