"""Statistics: counters, aggregation helpers, table rendering."""

from .counters import Stats, geometric_mean, weighted_mean
from .histogram import Histogram
from .report import Table, format_value

__all__ = ["Stats", "geometric_mean", "weighted_mean", "Histogram",
           "Table", "format_value"]
