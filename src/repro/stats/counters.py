"""Flat named counters used throughout the simulators.

A :class:`Stats` object is a dictionary of integer/float counters with
helpers for incrementing, deriving ratios, and merging.  Counter names
are dotted strings (``dcache.load_hits``), which keeps reports greppable
without nested structure.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator


class Stats:
    """Named counters with dotted-path names."""

    def __init__(self) -> None:
        self._values: dict[str, float] = defaultdict(float)

    def inc(self, name: str, amount: float = 1) -> None:
        """Add *amount* to counter *name* (creating it at zero)."""
        self._values[name] += amount

    def set(self, name: str, value: float) -> None:
        """Set counter *name* to *value*."""
        self._values[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Current value of *name* (or *default* if never touched)."""
        return self._values.get(name, default)

    def __getitem__(self, name: str) -> float:
        return self._values.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``, or 0.0 when the denominator is 0."""
        denom = self.get(denominator)
        return self.get(numerator) / denom if denom else 0.0

    def merge(self, other: "Stats") -> None:
        """Add all of *other*'s counters into this object."""
        for name, value in other._values.items():
            self._values[name] += value

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        """Snapshot as a plain dict, optionally filtered by *prefix*."""
        return {name: value for name, value in sorted(self._values.items())
                if name.startswith(prefix)}

    def format(self, prefix: str = "", indent: str = "") -> str:
        """Human-readable ``name value`` lines."""
        rows = self.as_dict(prefix)
        if not rows:
            return f"{indent}(no counters)"
        width = max(len(name) for name in rows)
        lines = []
        for name, value in rows.items():
            if value == int(value):
                rendered = f"{int(value)}"
            else:
                rendered = f"{value:.4f}"
            lines.append(f"{indent}{name:<{width}}  {rendered}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stats({dict(self._values)!r})"


def weighted_mean(pairs: Iterable[tuple[float, float]]) -> float:
    """Mean of (value, weight) pairs; 0.0 for empty/zero-weight input."""
    total = 0.0
    weight_sum = 0.0
    for value, weight in pairs:
        total += value * weight
        weight_sum += weight
    return total / weight_sum if weight_sum else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; values must be positive."""
    product = 1.0
    count = 0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean needs positive values")
        product *= value
        count += 1
    if not count:
        return 0.0
    return product ** (1.0 / count)
