"""F3 — line buffer effectiveness.

For each workload: the fraction of loads the line buffer services (port
accesses avoided), the resulting IPC gain over the plain single port,
and a comparison of the two fill policies (capture on every access —
the paper's "load all" — vs capture only on miss fills).
"""

from __future__ import annotations

from ..mem.config import LineBufferFill
from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import ROW_NAMES


def plan(scale: str = "small") -> list[SimJob]:
    variants = {
        "1P": machine("1P"),
        "1P+LB": machine("1P+LB"),
        "on-fill": machine("1P+LB",
                           line_buffer_fill=LineBufferFill.ON_FILL),
    }
    return [SimJob((name, label), TraceSpec.workload(name, scale), config)
            for name in ROW_NAMES for label, config in variants.items()]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"F3: line buffer effectiveness ({scale})",
        columns=["workload", "lb_hit_frac", "ipc_1P", "ipc_1P+LB",
                 "speedup", "ipc_fill_policy"],
    )
    for name in ROW_NAMES:
        base = results[(name, "1P")]
        with_lb = results[(name, "1P+LB")]
        on_fill = results[(name, "on-fill")]
        stats = with_lb.stats
        loads = stats["lsq.lb_loads"] + stats["lsq.port_loads"] + \
            stats["lsq.sq_forwards"] + stats["lsq.wb_forwards"]
        lb_fraction = stats["lsq.lb_loads"] / loads if loads else 0.0
        table.add_row(
            name,
            round(lb_fraction, 3),
            round(base.ipc, 3),
            round(with_lb.ipc, 3),
            round(with_lb.ipc / base.ipc, 3),
            round(on_fill.ipc, 3),
        )
    table.add_note("ipc_fill_policy: line buffer filled only by miss fills "
                   "(weaker than the 'load all' on-access policy)")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
