"""The experiment harness: one module per reproduced table/figure.

``ALL_EXPERIMENTS`` maps experiment ids to their ``run(scale)``
callables; ``run_all`` regenerates the whole evaluation.  Every module
follows the same contract — ``plan(scale)`` returns the simulation
grid as :class:`~repro.experiments.engine.SimJob` objects,
``tabulate(scale, results)`` is a pure function of the results, and
``run(scale, engine=None)`` composes the two through an
:class:`~repro.experiments.engine.Engine` (serial by default, process
parallel with ``jobs > 1``; tables are byte-identical either way).
"""

from __future__ import annotations

from collections.abc import Callable

from ..stats.report import Table
from .engine import Engine
from . import (
    a1_combining_window,
    a2_line_buffer_entries,
    a3_locality_sweep,
    a4_banking,
    a5_prefetch,
    a6_victim_cache,
    b1_predictors,
    d1_load_latency,
    f1_ipc_configs,
    f2_headline,
    f3_line_buffer,
    f4_combining,
    f5_write_buffer,
    f6_issue_width,
    f7_os_effect,
    t1_characteristics,
    t2_cache_behaviour,
)

ALL_EXPERIMENTS: dict[str, Callable[..., Table]] = {
    "T1": t1_characteristics.run,
    "F1": f1_ipc_configs.run,
    "F2": f2_headline.run,
    "F3": f3_line_buffer.run,
    "F4": f4_combining.run,
    "F5": f5_write_buffer.run,
    "F6": f6_issue_width.run,
    "T2": t2_cache_behaviour.run,
    "F7": f7_os_effect.run,
    "A1": a1_combining_window.run,
    "A2": a2_line_buffer_entries.run,
    "A3": a3_locality_sweep.run,
    "A4": a4_banking.run,
    "A5": a5_prefetch.run,
    "A6": a6_victim_cache.run,
    "B1": b1_predictors.run,
    "D1": d1_load_latency.run,
}


def run_all(scale: str = "small",
            engine: Engine | None = None) -> dict[str, Table]:
    """Regenerate every table/figure; returns them keyed by id.

    Pass an :class:`Engine` to fan each experiment's grid across worker
    processes; the result dict is identical to the serial run.
    """
    return {exp_id: runner(scale, engine=engine) for exp_id, runner
            in ALL_EXPERIMENTS.items()}


__all__ = ["ALL_EXPERIMENTS", "Engine", "run_all"]
