"""T2 — cache-side behaviour per configuration.

Aggregate D-cache behaviour over the whole suite for each port
configuration: port utilisation, load miss rate, line-buffer service
fraction, write-buffer drain counts.  Confirms the techniques change
*port traffic*, not miss behaviour.
"""

from __future__ import annotations

from ..presets import CONFIG_NAMES, machine
from ..stats.counters import Stats
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import ROW_NAMES


def plan(scale: str = "small") -> list[SimJob]:
    machines = {config: machine(config) for config in CONFIG_NAMES}
    return [SimJob((config, name), TraceSpec.workload(name, scale),
                   machines[config])
            for config in CONFIG_NAMES for name in ROW_NAMES]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"T2: aggregate D-cache behaviour by configuration ({scale})",
        columns=["config", "port_util", "load_miss_rate", "lb_frac",
                 "wb_drains", "wb_combined", "port_uses"],
    )
    for config_name in CONFIG_NAMES:
        total = Stats()
        cycles = 0
        ports = machine(config_name).mem.dcache.ports
        for name in ROW_NAMES:
            result = results[(config_name, name)]
            total.merge(result.stats)
            cycles += result.cycles
        port_loads = (total["dcache.load_hits"]
                      + total["dcache.load_misses"]
                      + total["dcache.load_secondary_misses"])
        loads_all = port_loads + total["lsq.lb_loads"] + \
            total["lsq.sq_forwards"] + total["lsq.wb_forwards"]
        table.add_row(
            config_name,
            round(total["dcache.port_uses"] / (cycles * ports), 3),
            round(total["dcache.load_misses"] / port_loads
                  if port_loads else 0.0, 3),
            round(total["lsq.lb_loads"] / loads_all if loads_all else 0.0,
                  3),
            int(total["wb.drains"]),
            int(total["wb.combined"]),
            int(total["dcache.port_uses"]),
        )
    table.add_note("aggregated over the full suite incl. the OS mix")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
