"""T2 — cache-side behaviour per configuration.

Aggregate D-cache behaviour over the whole suite for each port
configuration: port utilisation, load miss rate, line-buffer service
fraction, write-buffer drain counts.  Confirms the techniques change
*port traffic*, not miss behaviour.
"""

from __future__ import annotations

from ..presets import CONFIG_NAMES, machine
from ..stats.counters import Stats
from ..stats.report import Table
from .runner import ROW_NAMES, run_one, suite_traces


def run(scale: str = "small") -> Table:
    table = Table(
        title=f"T2: aggregate D-cache behaviour by configuration ({scale})",
        columns=["config", "port_util", "load_miss_rate", "lb_frac",
                 "wb_drains", "wb_combined", "port_uses"],
    )
    traces = suite_traces(scale)
    for config_name in CONFIG_NAMES:
        total = Stats()
        cycles = 0
        ports = machine(config_name).mem.dcache.ports
        for name in ROW_NAMES:
            result = run_one(traces[name], machine(config_name))
            total.merge(result.stats)
            cycles += result.cycles
        port_loads = (total["dcache.load_hits"]
                      + total["dcache.load_misses"]
                      + total["dcache.load_secondary_misses"])
        loads_all = port_loads + total["lsq.lb_loads"] + \
            total["lsq.sq_forwards"] + total["lsq.wb_forwards"]
        table.add_row(
            config_name,
            round(total["dcache.port_uses"] / (cycles * ports), 3),
            round(total["dcache.load_misses"] / port_loads
                  if port_loads else 0.0, 3),
            round(total["lsq.lb_loads"] / loads_all if loads_all else 0.0,
                  3),
            int(total["wb.drains"]),
            int(total["wb.combined"]),
            int(total["dcache.port_uses"]),
        )
    table.add_note("aggregated over the full suite incl. the OS mix")
    return table
