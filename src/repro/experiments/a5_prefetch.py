"""A5 — extension: next-line prefetch through idle MSHRs.

The same "use otherwise-idle resources" philosophy as the paper's
write-buffer drain, applied to misses: a demand miss also fetches the
next sequential line into a free MSHR.  Helps streaming misses, does
nothing for resident working sets, and can pollute on irregular
workloads — the L2-occupancy model charges the bandwidth cost.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .runner import run_one, suite_traces

_WORKLOADS = ("compress", "stream", "memops", "linked", "os-mix")
_CONFIGS = ("1P", "1P-wide+LB+SC")


def run(scale: str = "small") -> Table:
    columns = ["workload"]
    for config in _CONFIGS:
        columns += [f"{config}", f"{config}+PF"]
    columns += ["prefetches"]
    table = Table(
        title=f"A5: next-line prefetch through idle MSHRs ({scale})",
        columns=columns,
    )
    traces = suite_traces(scale, names=_WORKLOADS)
    for name in _WORKLOADS:
        trace = traces[name]
        cells: list[object] = [name]
        prefetches = 0
        for config in _CONFIGS:
            base = run_one(trace, machine(config))
            prefetched = run_one(trace, machine(config,
                                                prefetch_next_line=True))
            cells += [round(base.ipc, 3), round(prefetched.ipc, 3)]
            prefetches = int(prefetched.stats["dcache.prefetches"])
        cells.append(prefetches)
        table.add_row(*cells)
    table.add_note("+PF = prefetch_next_line enabled; prefetch count from "
                   "the techniques configuration")
    return table
