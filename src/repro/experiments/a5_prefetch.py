"""A5 — extension: next-line prefetch through idle MSHRs.

The same "use otherwise-idle resources" philosophy as the paper's
write-buffer drain, applied to misses: a demand miss also fetches the
next sequential line into a free MSHR.  Helps streaming misses, does
nothing for resident working sets, and can pollute on irregular
workloads — the L2-occupancy model charges the bandwidth cost.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute

_WORKLOADS = ("compress", "stream", "memops", "linked", "os-mix")
_CONFIGS = ("1P", "1P-wide+LB+SC")


def plan(scale: str = "small") -> list[SimJob]:
    machines = {(config, pf): machine(config, prefetch_next_line=True)
                if pf else machine(config)
                for config in _CONFIGS for pf in (False, True)}
    return [SimJob((name, config, pf), TraceSpec.workload(name, scale),
                   machines[(config, pf)])
            for name in _WORKLOADS
            for config in _CONFIGS for pf in (False, True)]


def tabulate(scale: str, results: dict) -> Table:
    columns = ["workload"]
    for config in _CONFIGS:
        columns += [f"{config}", f"{config}+PF"]
    columns += ["prefetches"]
    table = Table(
        title=f"A5: next-line prefetch through idle MSHRs ({scale})",
        columns=columns,
    )
    for name in _WORKLOADS:
        cells: list[object] = [name]
        prefetches = 0
        for config in _CONFIGS:
            base = results[(name, config, False)]
            prefetched = results[(name, config, True)]
            cells += [round(base.ipc, 3), round(prefetched.ipc, 3)]
            prefetches = int(prefetched.stats["dcache.prefetches"])
        cells.append(prefetches)
        table.add_row(*cells)
    table.add_note("+PF = prefetch_next_line enabled; prefetch count from "
                   "the techniques configuration")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
