"""F2 — the headline: single-port techniques vs the dual-ported cache.

The abstract's claim: *"Our techniques using a single-ported cache
achieve 91% of the performance of a dual-ported cache."*  This
experiment reports, per workload and as suite means, the performance of
the plain single port and of the all-techniques single port relative to
the dual-ported references (plain ``2P`` and the conservative
``2P+SC``).
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT, STRONG_DUAL_PORT
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import MEMORY_INTENSIVE, ROW_NAMES, config_machines, mean

_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT, STRONG_DUAL_PORT)

#: Scenario-corpus rows appended below the classic suite rows.  The
#: suite means keep their historical membership (``MEAN (all)`` stays
#: comparable across ledger history); scenarios get their own mean.
SCENARIO_ROWS = ("proctree", "iostorm", "syspipe", "copystorm",
                 "locality")

#: Experiment scales are tiny/small/full; scenarios call their largest
#: scale "medium".
_SCENARIO_SCALE = {"tiny": "tiny", "small": "small", "full": "medium"}


def _row_spec(name: str, scale: str) -> TraceSpec:
    if name in SCENARIO_ROWS:
        return TraceSpec.scenario(name, _SCENARIO_SCALE[scale])
    return TraceSpec.workload(name, scale)


def plan(scale: str = "small") -> list[SimJob]:
    machines = config_machines(_CONFIGS)
    return [SimJob((name, config), _row_spec(name, scale),
                   machines[config])
            for name in ROW_NAMES + SCENARIO_ROWS
            for config in _CONFIGS]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"F2: performance relative to the dual-ported cache ({scale})",
        columns=["workload", "1P/2P", "tech/2P", "1P/2P+SC", "tech/2P+SC"],
    )
    rows: dict[str, tuple[float, float, float, float]] = {}
    for name in ROW_NAMES + SCENARIO_ROWS:
        base = results[(name, DUAL_PORT)].ipc
        strong = results[(name, STRONG_DUAL_PORT)].ipc
        single = results[(name, "1P")].ipc
        tech = results[(name, BEST_SINGLE_PORT)].ipc
        rows[name] = (single / base, tech / base,
                      single / strong, tech / strong)
        table.add_row(name, *(round(v, 3) for v in rows[name]))
    for label, names in (("MEAN (all)", ROW_NAMES),
                         ("MEAN (memory-intensive)", MEMORY_INTENSIVE),
                         ("MEAN (scenarios)", SCENARIO_ROWS)):
        columns = zip(*(rows[name] for name in names))
        table.add_row(label, *(round(mean(list(col)), 3)
                               for col in columns))
    table.add_note(f"'tech' = {BEST_SINGLE_PORT} (wide port + line buffer "
                   "+ store combining on one port)")
    table.add_note("paper headline: tech reaches 91% of dual-port; see "
                   "EXPERIMENTS.md for the measured relation")
    table.add_note("scenario rows (proctree..locality) are OS-heavy "
                   "corpus entries; 'MEAN (all)' keeps its historical "
                   "suite membership")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))


def headline_ratios(scale: str = "small",
                    engine: Engine | None = None) -> dict[str, float]:
    """Machine-readable headline numbers (used by tests/benches)."""
    table = run(scale, engine)
    return {
        "tech_vs_2p": float(table.cell("MEAN (all)", "tech/2P")),
        "tech_vs_2p_sc": float(table.cell("MEAN (all)", "tech/2P+SC")),
        "single_vs_2p": float(table.cell("MEAN (all)", "1P/2P")),
        "single_vs_2p_sc": float(table.cell("MEAN (all)", "1P/2P+SC")),
        "tech_vs_2p_memint": float(
            table.cell("MEAN (memory-intensive)", "tech/2P")),
        "single_vs_2p_memint": float(
            table.cell("MEAN (memory-intensive)", "1P/2P")),
    }
