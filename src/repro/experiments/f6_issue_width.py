"""F6 — sensitivity to issue width.

Port bandwidth matters more as the core gets wider: this sweep runs
2-, 4- and 8-wide cores over the single-port baseline, the
all-techniques single port and the dual-ported cache, and reports the
relative performance at each width.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT
from ..stats.report import Table
from .runner import MEMORY_INTENSIVE, mean, run_configs, suite_traces

_WIDTHS = (2, 4, 8)
_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT)


def run(scale: str = "small") -> Table:
    columns = ["width"]
    for config in _CONFIGS:
        columns.append(f"ipc_{config}")
    columns += ["1P/2P", "tech/2P"]
    table = Table(
        title=f"F6: issue width sensitivity, memory-intensive mean ({scale})",
        columns=columns,
    )
    traces = suite_traces(scale, names=MEMORY_INTENSIVE)
    for width in _WIDTHS:
        per_config: dict[str, list[float]] = {c: [] for c in _CONFIGS}
        for name in MEMORY_INTENSIVE:
            results = run_configs(traces[name], _CONFIGS,
                                  issue_width=width)
            for config in _CONFIGS:
                per_config[config].append(results[config].ipc)
        means = {c: mean(per_config[c]) for c in _CONFIGS}
        table.add_row(
            width,
            *(round(means[c], 3) for c in _CONFIGS),
            round(means["1P"] / means[DUAL_PORT], 3),
            round(means[BEST_SINGLE_PORT] / means[DUAL_PORT], 3),
        )
    table.add_note(f"rows are means over {MEMORY_INTENSIVE}")
    return table
