"""F6 — sensitivity to issue width.

Port bandwidth matters more as the core gets wider: this sweep runs
2-, 4- and 8-wide cores over the single-port baseline, the
all-techniques single port and the dual-ported cache, and reports the
relative performance at each width.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import MEMORY_INTENSIVE, config_machines, mean

_WIDTHS = (2, 4, 8)
_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT)


def plan(scale: str = "small") -> list[SimJob]:
    jobs = []
    for width in _WIDTHS:
        machines = config_machines(_CONFIGS, issue_width=width)
        jobs += [SimJob((width, name, config),
                        TraceSpec.workload(name, scale), machines[config])
                 for name in MEMORY_INTENSIVE for config in _CONFIGS]
    return jobs


def tabulate(scale: str, results: dict) -> Table:
    columns = ["width"]
    for config in _CONFIGS:
        columns.append(f"ipc_{config}")
    columns += ["1P/2P", "tech/2P"]
    table = Table(
        title=f"F6: issue width sensitivity, memory-intensive mean ({scale})",
        columns=columns,
    )
    for width in _WIDTHS:
        means = {config: mean([results[(width, name, config)].ipc
                               for name in MEMORY_INTENSIVE])
                 for config in _CONFIGS}
        table.add_row(
            width,
            *(round(means[c], 3) for c in _CONFIGS),
            round(means["1P"] / means[DUAL_PORT], 3),
            round(means[BEST_SINGLE_PORT] / means[DUAL_PORT], 3),
        )
    table.add_note(f"rows are means over {MEMORY_INTENSIVE}")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
