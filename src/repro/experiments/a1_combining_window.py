"""A1 — ablation: how many loads may share one wide-port access.

Sweeps ``max_combine`` (1 disables combining entirely) on the wide
single-port configuration over the memory-intensive workloads.
"""

from __future__ import annotations

from dataclasses import replace

from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import MEMORY_INTENSIVE

_LIMITS = (1, 2, 4, 8)


def plan(scale: str = "small") -> list[SimJob]:
    base = machine("1P-wide+LB+SC")
    machines = {limit: replace(base, core=replace(base.core,
                                                  max_combine=limit))
                for limit in _LIMITS}
    return [SimJob((name, limit), TraceSpec.workload(name, scale),
                   machines[limit])
            for name in MEMORY_INTENSIVE for limit in _LIMITS]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"A1: loads combined per wide-port access ({scale})",
        columns=["workload"] + [f"max_{n}" for n in _LIMITS],
    )
    for name in MEMORY_INTENSIVE:
        table.add_row(name, *(round(results[(name, limit)].ipc, 3)
                              for limit in _LIMITS))
    table.add_note("max_1 keeps the wide port but allows no sharing; the "
                   "line buffer read cap follows the same limit")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
