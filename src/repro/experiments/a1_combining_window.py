"""A1 — ablation: how many loads may share one wide-port access.

Sweeps ``max_combine`` (1 disables combining entirely) on the wide
single-port configuration over the memory-intensive workloads.
"""

from __future__ import annotations

from dataclasses import replace

from ..presets import machine
from ..stats.report import Table
from .runner import MEMORY_INTENSIVE, run_one, suite_traces

_LIMITS = (1, 2, 4, 8)


def run(scale: str = "small") -> Table:
    table = Table(
        title=f"A1: loads combined per wide-port access ({scale})",
        columns=["workload"] + [f"max_{n}" for n in _LIMITS],
    )
    traces = suite_traces(scale, names=MEMORY_INTENSIVE)
    for name in MEMORY_INTENSIVE:
        cells: list[object] = [name]
        for limit in _LIMITS:
            base = machine("1P-wide+LB+SC")
            config = replace(base, core=replace(base.core,
                                                max_combine=limit))
            cells.append(round(run_one(traces[name], config).ipc, 3))
        table.add_row(*cells)
    table.add_note("max_1 keeps the wide port but allows no sharing; the "
                   "line buffer read cap follows the same limit")
    return table
