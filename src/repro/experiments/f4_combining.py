"""F4 — wide-port access combining, by port width.

How much of the load traffic combines into shared port accesses as the
port widens from 8 to 16 to 32 bytes, and what that buys in IPC.
Measured on the combining single-port configuration without a line
buffer so the combining effect is isolated.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import ROW_NAMES

_WIDTHS = (8, 16, 32)


def plan(scale: str = "small") -> list[SimJob]:
    machines = {width: machine("1P-wide", port_width=width)
                for width in _WIDTHS}
    return [SimJob((name, width), TraceSpec.workload(name, scale),
                   machines[width])
            for name in ROW_NAMES for width in _WIDTHS]


def tabulate(scale: str, results: dict) -> Table:
    columns = ["workload"]
    for width in _WIDTHS:
        columns += [f"ipc_w{width}", f"comb_frac_w{width}"]
    table = Table(
        title=f"F4: wide-port access combining ({scale})",
        columns=columns,
    )
    for name in ROW_NAMES:
        cells: list[object] = [name]
        for width in _WIDTHS:
            result = results[(name, width)]
            stats = result.stats
            port_loads = stats["lsq.port_loads"]
            combined = stats["lsq.combined_loads"]
            fraction = combined / port_loads if port_loads else 0.0
            cells += [round(result.ipc, 3), round(fraction, 3)]
        table.add_row(*cells)
    table.add_note("comb_frac = loads sharing another load's port access / "
                   "all port loads; width 8 cannot combine 8-byte loads")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
