"""F5 — write buffer depth and store combining.

IPC of the single-ported cache as the write buffer deepens (0 = stores
take a port at commit), with and without same-line store combining.
Measured on the store-heavy workloads where the write path matters.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute

_DEPTHS = (0, 1, 2, 4, 8, 16)
_WORKLOADS = ("memops", "stream", "qsort", "os-mix")


def plan(scale: str = "small") -> list[SimJob]:
    return [SimJob((name, combining, depth),
                   TraceSpec.workload(name, scale),
                   machine("1P", write_buffer_depth=depth,
                           combine_stores=combining and depth > 0))
            for name in _WORKLOADS
            for combining in (False, True)
            for depth in _DEPTHS]


def tabulate(scale: str, results: dict) -> Table:
    columns = ["workload", "combining"]
    columns += [f"depth_{d}" for d in _DEPTHS]
    table = Table(
        title=f"F5: write buffer depth and store combining ({scale})",
        columns=columns,
    )
    for name in _WORKLOADS:
        for combining in (False, True):
            cells: list[object] = [name, combining]
            for depth in _DEPTHS:
                cells.append(round(results[(name, combining, depth)].ipc, 3))
            table.add_row(*cells)
    table.add_note("depth 0: no write buffer — stores claim a port at "
                   "commit and stall it when none is free")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
