"""F5 — write buffer depth and store combining.

IPC of the single-ported cache as the write buffer deepens (0 = stores
take a port at commit), with and without same-line store combining.
Measured on the store-heavy workloads where the write path matters.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .runner import run_one, suite_traces

_DEPTHS = (0, 1, 2, 4, 8, 16)
_WORKLOADS = ("memops", "stream", "qsort", "os-mix")


def run(scale: str = "small") -> Table:
    columns = ["workload", "combining"]
    columns += [f"depth_{d}" for d in _DEPTHS]
    table = Table(
        title=f"F5: write buffer depth and store combining ({scale})",
        columns=columns,
    )
    traces = suite_traces(scale, names=_WORKLOADS)
    for name in _WORKLOADS:
        trace = traces[name]
        for combining in (False, True):
            cells: list[object] = [name, combining]
            for depth in _DEPTHS:
                result = run_one(trace, machine(
                    "1P", write_buffer_depth=depth,
                    combine_stores=combining and depth > 0))
                cells.append(round(result.ipc, 3))
            table.add_row(*cells)
    table.add_note("depth 0: no write buffer — stores claim a port at "
                   "commit and stall it when none is free")
    return table
