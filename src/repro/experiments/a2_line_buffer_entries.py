"""A2 — ablation: line buffer capacity.

One entry (the paper's proposal) already captures spatial reuse within
the most recent line; this sweep measures what 2, 4 or 8 entries add,
and reports the line-buffer service fraction alongside IPC.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import MEMORY_INTENSIVE

_ENTRIES = (1, 2, 4, 8)


def plan(scale: str = "small") -> list[SimJob]:
    machines = {count: machine("1P+LB", line_buffer_entries=count)
                for count in _ENTRIES}
    return [SimJob((name, count), TraceSpec.workload(name, scale),
                   machines[count])
            for name in MEMORY_INTENSIVE for count in _ENTRIES]


def tabulate(scale: str, results: dict) -> Table:
    columns = ["workload"]
    for count in _ENTRIES:
        columns += [f"ipc_e{count}", f"lbfrac_e{count}"]
    table = Table(
        title=f"A2: line buffer entries ({scale})",
        columns=columns,
    )
    for name in MEMORY_INTENSIVE:
        cells: list[object] = [name]
        for count in _ENTRIES:
            result = results[(name, count)]
            stats = result.stats
            loads = stats["lsq.lb_loads"] + stats["lsq.port_loads"] + \
                stats["lsq.sq_forwards"] + stats["lsq.wb_forwards"]
            fraction = stats["lsq.lb_loads"] / loads if loads else 0.0
            cells += [round(result.ipc, 3), round(fraction, 3)]
        table.add_row(*cells)
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
