"""A2 — ablation: line buffer capacity.

One entry (the paper's proposal) already captures spatial reuse within
the most recent line; this sweep measures what 2, 4 or 8 entries add,
and reports the line-buffer service fraction alongside IPC.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .runner import MEMORY_INTENSIVE, run_one, suite_traces

_ENTRIES = (1, 2, 4, 8)


def run(scale: str = "small") -> Table:
    columns = ["workload"]
    for count in _ENTRIES:
        columns += [f"ipc_e{count}", f"lbfrac_e{count}"]
    table = Table(
        title=f"A2: line buffer entries ({scale})",
        columns=columns,
    )
    traces = suite_traces(scale, names=MEMORY_INTENSIVE)
    for name in MEMORY_INTENSIVE:
        cells: list[object] = [name]
        for count in _ENTRIES:
            result = run_one(traces[name],
                             machine("1P+LB", line_buffer_entries=count))
            stats = result.stats
            loads = stats["lsq.lb_loads"] + stats["lsq.port_loads"] + \
                stats["lsq.sq_forwards"] + stats["lsq.wb_forwards"]
            fraction = stats["lsq.lb_loads"] / loads if loads else 0.0
            cells += [round(result.ipc, 3), round(fraction, 3)]
        table.add_row(*cells)
    return table
