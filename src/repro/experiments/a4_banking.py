"""A4 — extension: banked caches vs buffering techniques vs true ports.

Line-interleaved banking (two address paths into N single-ported
banks) was the era's other cheap alternative to a true dual-ported
array.  This experiment positions it against the paper's single-port
techniques and the true dual port: banking approaches dual-port
performance as conflicts thin out with more banks, but unlike the
techniques it still pays one array access per load.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT, EXTENDED_CONFIG_NAMES
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import MEMORY_INTENSIVE, config_machines

_CONFIGS = ("1P", *EXTENDED_CONFIG_NAMES, BEST_SINGLE_PORT, DUAL_PORT)


def plan(scale: str = "small") -> list[SimJob]:
    machines = config_machines(_CONFIGS)
    return [SimJob((name, config), TraceSpec.workload(name, scale),
                   machines[config])
            for name in MEMORY_INTENSIVE for config in _CONFIGS]


def tabulate(scale: str, results: dict) -> Table:
    columns = ["workload"] + [f"ipc_{name}" for name in _CONFIGS] + \
        ["conflicts_4B"]
    table = Table(
        title=f"A4: banked caches vs the paper's techniques ({scale})",
        columns=columns,
    )
    for name in MEMORY_INTENSIVE:
        conflicts = results[(name, "2R-4B")].stats["dcache.bank_conflicts"]
        table.add_row(name,
                      *(round(results[(name, c)].ipc, 3) for c in _CONFIGS),
                      int(conflicts))
    table.add_note("2R-NB = two address paths into N single-ported "
                   "line-interleaved banks; conflicts_4B counts same-bank "
                   "rejections in the 4-bank configuration")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
