"""A4 — extension: banked caches vs buffering techniques vs true ports.

Line-interleaved banking (two address paths into N single-ported
banks) was the era's other cheap alternative to a true dual-ported
array.  This experiment positions it against the paper's single-port
techniques and the true dual port: banking approaches dual-port
performance as conflicts thin out with more banks, but unlike the
techniques it still pays one array access per load.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT, EXTENDED_CONFIG_NAMES
from ..stats.report import Table
from .runner import MEMORY_INTENSIVE, run_configs, suite_traces

_CONFIGS = ("1P", *EXTENDED_CONFIG_NAMES, BEST_SINGLE_PORT, DUAL_PORT)


def run(scale: str = "small") -> Table:
    columns = ["workload"] + [f"ipc_{name}" for name in _CONFIGS] + \
        ["conflicts_4B"]
    table = Table(
        title=f"A4: banked caches vs the paper's techniques ({scale})",
        columns=columns,
    )
    traces = suite_traces(scale, names=MEMORY_INTENSIVE)
    for name in MEMORY_INTENSIVE:
        results = run_configs(traces[name], _CONFIGS)
        conflicts = results["2R-4B"].stats["dcache.bank_conflicts"]
        table.add_row(name,
                      *(round(results[c].ipc, 3) for c in _CONFIGS),
                      int(conflicts))
    table.add_note("2R-NB = two address paths into N single-ported "
                   "line-interleaved banks; conflicts_4B counts same-bank "
                   "rejections in the 4-bank configuration")
    return table
