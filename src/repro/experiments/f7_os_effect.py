"""F7 — the effect of including the operating system.

The paper's evaluation pointedly uses "realistic applications that
include the operating system".  This experiment quantifies why that
matters for port studies across three OS-heavy streams — the
multiprogrammed workload mix plus two scenario-corpus entries (the
interrupt-driven ``iostorm`` and the syscall-dense ``syspipe``) — each
traced *with* kernel activity and in the user-only view of the same
execution (kernel records filtered out — the classic user-only-trace
methodology), for OS-activity share, branch behaviour, and the
port-technique benefit.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import config_machines

_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT)
_VIEWS = (("with-kernel", False), ("user-only", True))

#: The OS-activity streams: the workload mix plus the corpus's
#: interrupt-heavy and syscall-dense scenarios.
STREAMS = ("os-mix", "iostorm", "syspipe")

#: Experiment scales are tiny/small/full; scenarios call their largest
#: scale "medium".
_SCENARIO_SCALE = {"tiny": "tiny", "small": "small", "full": "medium"}


def _spec(stream: str, scale: str, user_only: bool) -> TraceSpec:
    if stream == "os-mix":
        return TraceSpec.os_mix(scale, user_only=user_only)
    return TraceSpec.scenario(stream, _SCENARIO_SCALE[scale],
                              user_only=user_only)


def plan(scale: str = "small") -> list[SimJob]:
    machines = config_machines(_CONFIGS)
    return [SimJob((stream, label, config),
                   _spec(stream, scale, user_only), machines[config])
            for stream in STREAMS
            for label, user_only in _VIEWS
            for config in _CONFIGS]


def _kernel_fraction(stream: str, scale: str) -> float:
    """OS-activity share of the full (with-kernel) stream.  The trace
    was warmed by the engine, so this is an in-memory cache hit."""
    trace = _spec(stream, scale, user_only=False).build()
    return sum(1 for record in trace if record.kernel) / len(trace)


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"F7: OS inclusion vs user-only tracing ({scale})",
        columns=["stream", "trace", "instructions", "kernel_frac",
                 "bpred_acc", "ipc_1P", "ipc_tech", "ipc_2P", "1P/2P",
                 "tech/2P"],
    )
    for stream in STREAMS:
        kernel_frac = _kernel_fraction(stream, scale)
        for label, user_only in _VIEWS:
            reference = results[(stream, label, DUAL_PORT)]
            stats = reference.stats
            branches = stats["bpred.branches"]
            accuracy = stats["bpred.correct"] / branches if branches \
                else 1.0
            base = reference.ipc
            single = results[(stream, label, "1P")].ipc
            tech = results[(stream, label, BEST_SINGLE_PORT)].ipc
            table.add_row(
                stream,
                label,
                reference.instructions,
                round(0.0 if user_only else kernel_frac, 3),
                round(accuracy, 3),
                round(single, 3),
                round(tech, 3),
                round(base, 3),
                round(single / base, 3),
                round(tech / base, 3),
            )
    table.add_note("user-only = kernel records filtered from the same "
                   "execution (the methodology the paper improves on)")
    table.add_note("kernel_frac = OS-activity share of the full "
                   "stream; iostorm/syspipe are scenario-corpus "
                   "entries (interrupt-heavy / syscall-dense)")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
