"""F7 — the effect of including the operating system.

The paper's evaluation pointedly uses "realistic applications that
include the operating system".  This experiment quantifies why that
matters for port studies: it compares the multiprogrammed mix traced
*with* kernel activity against the user-only view of the same
execution (kernel records filtered out — the classic user-only-trace
methodology), for branch behaviour and for the port-technique benefit.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT
from ..stats.report import Table
from ..workloads.suite import build_os_mix_trace
from .runner import run_configs

_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT)


def run(scale: str = "small") -> Table:
    table = Table(
        title=f"F7: OS inclusion vs user-only tracing ({scale})",
        columns=["trace", "instructions", "bpred_acc", "ipc_1P",
                 "ipc_tech", "ipc_2P", "1P/2P", "tech/2P"],
    )
    full = build_os_mix_trace(scale)
    user_only = [record for record in full if not record.kernel]
    for label, trace in (("with-kernel", full), ("user-only", user_only)):
        results = run_configs(trace, _CONFIGS)
        stats = results[DUAL_PORT].stats
        branches = stats["bpred.branches"]
        accuracy = stats["bpred.correct"] / branches if branches else 1.0
        base = results[DUAL_PORT].ipc
        table.add_row(
            label,
            len(trace),
            round(accuracy, 3),
            round(results["1P"].ipc, 3),
            round(results[BEST_SINGLE_PORT].ipc, 3),
            round(base, 3),
            round(results["1P"].ipc / base, 3),
            round(results[BEST_SINGLE_PORT].ipc / base, 3),
        )
    table.add_note("user-only = kernel records filtered from the same "
                   "execution (the methodology the paper improves on)")
    return table
