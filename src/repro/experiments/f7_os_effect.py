"""F7 — the effect of including the operating system.

The paper's evaluation pointedly uses "realistic applications that
include the operating system".  This experiment quantifies why that
matters for port studies: it compares the multiprogrammed mix traced
*with* kernel activity against the user-only view of the same
execution (kernel records filtered out — the classic user-only-trace
methodology), for branch behaviour and for the port-technique benefit.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import config_machines

_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT)
_VIEWS = (("with-kernel", False), ("user-only", True))


def plan(scale: str = "small") -> list[SimJob]:
    machines = config_machines(_CONFIGS)
    return [SimJob((label, config), TraceSpec.os_mix(scale, user_only),
                   machines[config])
            for label, user_only in _VIEWS for config in _CONFIGS]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"F7: OS inclusion vs user-only tracing ({scale})",
        columns=["trace", "instructions", "bpred_acc", "ipc_1P",
                 "ipc_tech", "ipc_2P", "1P/2P", "tech/2P"],
    )
    for label, _user_only in _VIEWS:
        reference = results[(label, DUAL_PORT)]
        stats = reference.stats
        branches = stats["bpred.branches"]
        accuracy = stats["bpred.correct"] / branches if branches else 1.0
        base = reference.ipc
        table.add_row(
            label,
            reference.instructions,
            round(accuracy, 3),
            round(results[(label, "1P")].ipc, 3),
            round(results[(label, BEST_SINGLE_PORT)].ipc, 3),
            round(base, 3),
            round(results[(label, "1P")].ipc / base, 3),
            round(results[(label, BEST_SINGLE_PORT)].ipc / base, 3),
        )
    table.add_note("user-only = kernel records filtered from the same "
                   "execution (the methodology the paper improves on)")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
