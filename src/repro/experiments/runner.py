"""Shared infrastructure for the experiment harness.

Each experiment module in this package regenerates one table or figure
of the evaluation (see ``DESIGN.md``'s experiment index) and exposes::

    run(scale="small") -> repro.stats.report.Table

Traces are produced once per (workload, scale) by the workload suite's
cache, so a grid of machine configurations only pays for functional
simulation once.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager

from ..core.config import MachineConfig
from ..core.pipeline import CoreResult, OoOCore
from ..obs.report import build_run_report
from ..presets import machine as preset_machine
from ..trace.record import TraceRecord
from ..workloads.suite import SUITE_NAMES, build_os_mix_trace, build_trace

#: Workload row order used by most experiments (suite + the OS mix).
ROW_NAMES = SUITE_NAMES + ("os-mix",)

#: The memory-intensive subset where port bandwidth is first-order.
MEMORY_INTENSIVE = ("linked", "stream", "memops", "os-mix")


def suite_traces(scale: str = "small",
                 names: Sequence[str] = ROW_NAMES,
                 ) -> dict[str, list[TraceRecord]]:
    """Build (or fetch cached) traces for the requested workloads."""
    traces: dict[str, list[TraceRecord]] = {}
    for name in names:
        if name == "os-mix":
            traces[name] = build_os_mix_trace(scale)
        else:
            traces[name] = build_trace(name, scale)
    return traces


#: When non-None (inside :func:`capture_reports`), every simulation run
#: through this module appends its machine-readable run report here.
_report_sink: list[dict] | None = None


@contextmanager
def capture_reports() -> Iterator[list[dict]]:
    """Collect a run report for every :func:`run_one` in the block.

    Used by ``repro experiment --json`` and the benchmark harness to
    persist perf trajectories without changing experiment signatures.
    """
    global _report_sink
    previous = _report_sink
    _report_sink = sink = []
    try:
        yield sink
    finally:
        _report_sink = previous


def run_one(trace: Sequence[TraceRecord],
            machine: MachineConfig) -> CoreResult:
    """Simulate one trace on one machine."""
    start = time.perf_counter()
    result = OoOCore(machine).run(trace)
    if _report_sink is not None:
        _report_sink.append(build_run_report(
            result, machine, wall_time=time.perf_counter() - start))
    return result


def run_configs(trace: Sequence[TraceRecord],
                config_names: Iterable[str],
                issue_width: int = 4,
                **dcache_overrides: object) -> dict[str, CoreResult]:
    """Simulate one trace across several preset configurations."""
    return {name: run_one(trace, preset_machine(name, issue_width,
                                                **dcache_overrides))
            for name in config_names}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0
