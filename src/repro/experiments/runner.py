"""Shared infrastructure for the experiment harness.

Each experiment module in this package regenerates one table or figure
of the evaluation (see ``DESIGN.md``'s experiment index) and exposes::

    plan(scale="small") -> list[repro.experiments.engine.SimJob]
    tabulate(scale, results) -> repro.stats.report.Table
    run(scale="small", engine=None) -> repro.stats.report.Table

``run`` is ``tabulate`` over ``engine.execute(plan(...))`` — the
engine fans the simulation grid across worker processes (see
:mod:`repro.experiments.engine`) while ``tabulate`` stays a pure
function of the results, so parallel runs are byte-identical to serial
ones.  Traces are produced once per (workload, scale) by the workload
suite's two-tier cache, so a grid of machine configurations only pays
for functional simulation once — or never, when the disk tier is warm.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator, Mapping, Sequence
from contextlib import contextmanager
from contextvars import ContextVar

from ..core.config import MachineConfig
from ..core.pipeline import CoreResult, OoOCore
from ..obs.report import build_run_report
from ..presets import DUAL_PORT, STRONG_DUAL_PORT
from ..presets import machine as preset_machine
from ..trace.record import TraceRecord
from ..workloads.suite import SUITE_NAMES, build_os_mix_trace, build_trace

#: Workload row order used by most experiments (suite + the OS mix).
ROW_NAMES = SUITE_NAMES + ("os-mix",)

#: The memory-intensive subset where port bandwidth is first-order.
MEMORY_INTENSIVE = ("linked", "stream", "memops", "os-mix")

#: Configurations that serve as *references* in relative-performance
#: tables; sweep overrides never apply to them unless explicitly
#: requested (see :func:`config_machines`).
REFERENCE_CONFIGS = frozenset({DUAL_PORT, STRONG_DUAL_PORT})


def suite_traces(scale: str = "small",
                 names: Sequence[str] = ROW_NAMES,
                 ) -> dict[str, list[TraceRecord]]:
    """Build (or fetch cached) traces for the requested workloads."""
    traces: dict[str, list[TraceRecord]] = {}
    for name in names:
        if name == "os-mix":
            traces[name] = build_os_mix_trace(scale)
        else:
            traces[name] = build_trace(name, scale)
    return traces


#: When a :func:`capture_reports` block is active in this context,
#: every simulation run through this module appends its machine-readable
#: run report to the block's sink.  A :class:`~contextvars.ContextVar`
#: (not a module global) so concurrent captures — worker threads, the
#: parallel engine's merge barrier — cannot corrupt each other.
_report_sink: ContextVar[list[dict] | None] = ContextVar(
    "repro_report_sink", default=None)


@contextmanager
def capture_reports() -> Iterator[list[dict]]:
    """Collect a run report for every :func:`run_one` in the block.

    Used by ``repro experiment --json`` and the benchmark harness to
    persist perf trajectories without changing experiment signatures.
    The parallel engine appends its workers' reports to the active sink
    at the merge barrier, in deterministic job order.
    """
    sink: list[dict] = []
    token = _report_sink.set(sink)
    try:
        yield sink
    finally:
        _report_sink.reset(token)


def current_report_sink() -> list[dict] | None:
    """The active capture sink, or None outside a capture block."""
    return _report_sink.get()


def run_one(trace: Sequence[TraceRecord],
            machine: MachineConfig,
            metrics_interval: int | None = None) -> CoreResult:
    """Simulate one trace on one machine.

    ``metrics_interval`` turns on interval telemetry (see
    :mod:`repro.obs.metrics`); the captured run report then carries the
    per-interval series under its ``metrics`` key.
    """
    start = time.perf_counter()
    result = OoOCore(machine, metrics_interval=metrics_interval).run(trace)
    sink = _report_sink.get()
    if sink is not None:
        sink.append(build_run_report(
            result, machine, wall_time=time.perf_counter() - start))
    return result


def config_machines(config_names: Iterable[str],
                    issue_width: int = 4,
                    dcache_overrides: Mapping[str, object] | None = None,
                    override_scope: Iterable[str] | None = None,
                    ) -> dict[str, MachineConfig]:
    """Build the machines for a preset-configuration grid.

    ``dcache_overrides`` apply only to the configurations named in
    ``override_scope``; the default scope is every requested
    configuration *except* the ``2P``/``2P+SC`` references, so a sweep
    can never silently distort the baseline it is measured against.
    Pass an explicit scope to override a reference on purpose.
    """
    names = list(config_names)
    overrides = dict(dcache_overrides or {})
    if override_scope is None:
        scope = set(names) - REFERENCE_CONFIGS
    else:
        scope = set(override_scope)
        unknown = scope - set(names)
        if unknown:
            raise ValueError(
                f"override_scope names configs not in the grid: "
                f"{sorted(unknown)}")
    return {name: preset_machine(
                name, issue_width,
                **(overrides if overrides and name in scope else {}))
            for name in names}


def run_configs(trace: Sequence[TraceRecord],
                config_names: Iterable[str],
                issue_width: int = 4,
                dcache_overrides: Mapping[str, object] | None = None,
                override_scope: Iterable[str] | None = None,
                ) -> dict[str, CoreResult]:
    """Simulate one trace across several preset configurations.

    Override scoping follows :func:`config_machines`: reference
    configurations are never modified unless explicitly listed.
    """
    machines = config_machines(config_names, issue_width,
                               dcache_overrides, override_scope)
    return {name: run_one(trace, mach) for name, mach in machines.items()}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.  Raises :class:`ValueError` for empty input —
    no experiment legitimately averages zero rows, so an empty sequence
    means a workload row was dropped and must not be masked as 0.0."""
    values = list(values)
    if not values:
        raise ValueError("mean() of an empty sequence — an experiment "
                         "row went missing")
    return sum(values) / len(values)
