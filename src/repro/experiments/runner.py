"""Shared infrastructure for the experiment harness.

Each experiment module in this package regenerates one table or figure
of the evaluation (see ``DESIGN.md``'s experiment index) and exposes::

    run(scale="small") -> repro.stats.report.Table

Traces are produced once per (workload, scale) by the workload suite's
cache, so a grid of machine configurations only pays for functional
simulation once.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..core.config import MachineConfig
from ..core.pipeline import CoreResult, OoOCore
from ..presets import machine as preset_machine
from ..trace.record import TraceRecord
from ..workloads.suite import SUITE_NAMES, build_os_mix_trace, build_trace

#: Workload row order used by most experiments (suite + the OS mix).
ROW_NAMES = SUITE_NAMES + ("os-mix",)

#: The memory-intensive subset where port bandwidth is first-order.
MEMORY_INTENSIVE = ("linked", "stream", "memops", "os-mix")


def suite_traces(scale: str = "small",
                 names: Sequence[str] = ROW_NAMES,
                 ) -> dict[str, list[TraceRecord]]:
    """Build (or fetch cached) traces for the requested workloads."""
    traces: dict[str, list[TraceRecord]] = {}
    for name in names:
        if name == "os-mix":
            traces[name] = build_os_mix_trace(scale)
        else:
            traces[name] = build_trace(name, scale)
    return traces


def run_one(trace: Sequence[TraceRecord],
            machine: MachineConfig) -> CoreResult:
    """Simulate one trace on one machine."""
    return OoOCore(machine).run(trace)


def run_configs(trace: Sequence[TraceRecord],
                config_names: Iterable[str],
                issue_width: int = 4,
                **dcache_overrides: object) -> dict[str, CoreResult]:
    """Simulate one trace across several preset configurations."""
    return {name: run_one(trace, preset_machine(name, issue_width,
                                                **dcache_overrides))
            for name in config_names}


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input)."""
    return sum(values) / len(values) if values else 0.0
