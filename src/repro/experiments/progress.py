"""Live fleet progress for the parallel experiment engine.

One single-line TTY display, repainted in place (``\\r``) as per-job
started/finished/failed events arrive from the worker fleet: jobs
done/total, how many are in flight, an ETA extrapolated from the
throughput so far, the aggregate simulation rate (kilo-instructions
simulated per host second, summed over finished jobs), and the trace
cache hit ratio for this run.

The display is inert unless the output stream is a TTY (or ``force``
is set, which tests and ``--progress`` on a pipe use); either way a
one-line summary is printed when the run closes, so a CI log still
records the fleet outcome.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from ..workloads import suite

__all__ = ["ProgressDisplay"]


def _format_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


class ProgressDisplay:
    """Accumulates fleet events and repaints one status line."""

    def __init__(self, total: int, stream: TextIO | None = None,
                 force: bool = False, clock=time.monotonic) -> None:
        self.total = total
        self.done = 0
        self.failed = 0
        self.running = 0
        self.instructions = 0
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._start = clock()
        self._cache_before = suite.trace_cache_stats()
        self._live = force or bool(getattr(self._stream, "isatty",
                                           lambda: False)())
        self._width = 0

    # ------------------------------------------------------------------
    # Event sinks (called by the engine, directly or off the queue)
    # ------------------------------------------------------------------
    def job_started(self, key: str) -> None:
        self.running += 1
        self._paint()

    def job_finished(self, key: str, wall_s: float,
                     instructions: int) -> None:
        self.running = max(0, self.running - 1)
        self.done += 1
        self.instructions += instructions
        self._paint()

    def job_failed(self, key: str) -> None:
        self.running = max(0, self.running - 1)
        self.done += 1
        self.failed += 1
        self._paint()

    # ------------------------------------------------------------------
    def _cache_ratio(self) -> float | None:
        now = suite.trace_cache_stats()
        hits = (now["memory_hits"] - self._cache_before["memory_hits"]
                + now["disk_hits"] - self._cache_before["disk_hits"])
        lookups = hits + now["builds"] - self._cache_before["builds"]
        return hits / lookups if lookups else None

    def status_line(self) -> str:
        elapsed = max(self._clock() - self._start, 1e-9)
        parts = [f"jobs {self.done}/{self.total}"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.running:
            parts.append(f"{self.running} running")
        if 0 < self.done < self.total:
            remaining = (self.total - self.done) * elapsed / self.done
            parts.append(f"ETA {_format_eta(remaining)}")
        if self.instructions:
            parts.append(f"{self.instructions / 1000 / elapsed:.0f} kIPS")
        ratio = self._cache_ratio()
        if ratio is not None:
            parts.append(f"cache {ratio:.0%}")
        return "[engine] " + "  ".join(parts)

    def _paint(self) -> None:
        if not self._live:
            return
        line = self.status_line()
        pad = max(0, self._width - len(line))
        self._stream.write("\r" + line + " " * pad)
        self._stream.flush()
        self._width = len(line)

    def close(self) -> None:
        """Final summary line (always printed, newline-terminated)."""
        line = self.status_line()
        elapsed = self._clock() - self._start
        summary = f"{line}  in {elapsed:.1f}s"
        if self._live:
            pad = max(0, self._width - len(summary))
            self._stream.write("\r" + summary + " " * pad + "\n")
        else:
            self._stream.write(summary + "\n")
        self._stream.flush()
