"""Process-parallel grid execution for the experiment harness.

An experiment is a grid of independent timing simulations — (workload,
scale, machine configuration) cells — followed by a pure tabulation
step.  This module runs the grid:

* :class:`TraceSpec` names a trace without materialising it, so a job
  can cross a process boundary as a small picklable description; each
  worker rebuilds the trace through the workload suite's two-tier
  cache (memory, then the persistent disk tier).
* :class:`SimJob` pairs a :class:`TraceSpec` with a complete
  :class:`~repro.core.config.MachineConfig` and a hashable result key.
* :class:`Engine` executes a job list — inline for ``jobs=1``, across
  a ``multiprocessing`` pool otherwise — and merges results in
  **insertion order**, so the result dict (and any captured run
  reports) is identical whatever the completion order or worker
  count.  Simulated cycles, counters, and rendered tables are
  byte-identical between ``jobs=1`` and ``jobs=N``.

Every distinct trace is warmed once in the parent before the fan-out:
forked workers inherit the in-memory cache, spawned workers load the
disk tier, and no worker ever repeats a functional simulation.

Fleet observability (all opt-in, all free when off):

* ``collect_spans=True`` records host-time spans — the parent's trace
  warm-up, each worker's per-job lifecycle, and the timing core's
  pipeline chunks — against one shared epoch; after ``execute`` the
  merged, Perfetto-loadable event stream is on ``Engine.span_events``.
* ``progress=True`` (or a stream) drives a live single-line display
  from per-job started/finished/failed events the workers push
  through a queue (see :mod:`repro.experiments.progress`).
* ``Engine.last_summary`` carries the post-run fleet summary —
  per-worker utilisation, queue wait, the slowest jobs, and any
  failures — which ``repro experiment --json`` embeds in the
  manifest's ``engine`` block.

A job that raises inside a worker no longer surfaces as a bare
multiprocessing traceback: the engine wraps it in
:class:`EngineJobError` carrying the job key, configuration name,
trace identity and generator seed, and records it in the run summary.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections.abc import Sequence
from dataclasses import dataclass
from queue import Empty

from ..core.config import MachineConfig
from ..core.pipeline import CoreResult, OoOCore
from ..obs import spans as obs_spans
from ..obs.report import build_run_report
from ..obs.spans import SpanRecorder, merge_events
from ..trace.record import TraceRecord
from ..trace.synthetic import SyntheticConfig, generate
from ..workloads import suite
from .progress import ProgressDisplay
from .runner import current_report_sink

__all__ = ["Engine", "EngineJobError", "SimJob", "TraceSpec", "execute"]


@dataclass(frozen=True)
class TraceSpec:
    """A picklable description of a trace (not the trace itself)."""

    kind: str                            # workload | os-mix | os-mix-user
    name: str | None = None              # ... | scenario[-user] | synthetic
    scale: str | None = None
    synthetic: SyntheticConfig | None = None
    scenario_seed: int | None = None

    @staticmethod
    def workload(name: str, scale: str) -> "TraceSpec":
        """A suite workload by name; ``"os-mix"`` selects the mix."""
        if name == "os-mix":
            return TraceSpec("os-mix", name, scale)
        return TraceSpec("workload", name, scale)

    @staticmethod
    def os_mix(scale: str, user_only: bool = False) -> "TraceSpec":
        """The multiprogrammed mix; ``user_only`` filters out kernel
        records (the classic user-only-trace methodology)."""
        kind = "os-mix-user" if user_only else "os-mix"
        return TraceSpec(kind, "os-mix", scale)

    @staticmethod
    def scenario(name: str, scale: str, seed: int | None = None,
                 user_only: bool = False) -> "TraceSpec":
        """A scenario-corpus entry (:mod:`repro.scenarios`) at *scale*;
        ``seed=None`` uses the scenario's default seed.  ``user_only``
        filters out kernel records, like :meth:`os_mix`."""
        kind = "scenario-user" if user_only else "scenario"
        return TraceSpec(kind, name, scale, scenario_seed=seed)

    @staticmethod
    def from_synthetic(config: SyntheticConfig) -> "TraceSpec":
        return TraceSpec("synthetic", "synthetic", None, config)

    @property
    def seed(self) -> int | None:
        """The generator seed, for synthetic and scenario traces."""
        if self.synthetic is not None:
            return self.synthetic.seed
        return self.scenario_seed

    def report_identity(self) -> dict[str, object]:
        """Workload identity stamped into run reports, which is what
        the results ledger hashes into ``trace_digest`` — the user-only
        mix is a different trace than the full mix, so it gets a
        distinct workload name."""
        if self.kind == "workload":
            return {"workload": self.name, "scale": self.scale,
                    "seed": None}
        if self.kind in ("os-mix", "os-mix-user"):
            return {"workload": self.kind, "scale": self.scale,
                    "seed": None}
        if self.kind in ("scenario", "scenario-user"):
            name = self.name if self.kind == "scenario" \
                else f"{self.name}-user"
            return {"workload": name, "scale": self.scale,
                    "seed": self.scenario_seed}
        if self.kind == "synthetic":
            return {"workload": "synthetic", "scale": None,
                    "seed": self.seed}
        return {"workload": None, "scale": self.scale,
                "seed": self.seed}

    def describe(self) -> str:
        """Compact human identity (failure reports, summaries)."""
        label = f"{self.kind}:{self.name}" if self.name else self.kind
        if self.scale:
            label += f"@{self.scale}"
        if self.seed is not None:
            label += f" seed={self.seed}"
        return label

    def build(self) -> list[TraceRecord]:
        """Materialise the trace through the suite's two-tier cache."""
        if self.kind == "workload":
            return suite.build_trace(self.name, self.scale)
        if self.kind == "os-mix":
            return suite.build_os_mix_trace(self.scale)
        if self.kind == "os-mix-user":
            return [record
                    for record in suite.build_os_mix_trace(self.scale)
                    if not record.kernel]
        if self.kind == "scenario":
            return suite.build_scenario_trace(self.name, self.scale,
                                              seed=self.scenario_seed)
        if self.kind == "scenario-user":
            return [record for record in
                    suite.build_scenario_trace(self.name, self.scale,
                                               seed=self.scenario_seed)
                    if not record.kernel]
        if self.kind == "synthetic":
            config = self.synthetic
            return suite.cached_trace(
                f"synthetic-seed{config.seed}",
                suite.content_digest(repr(config)),
                lambda: generate(config))
        raise ValueError(f"unknown trace kind {self.kind!r}")


@dataclass(frozen=True)
class SimJob:
    """One grid cell: simulate *trace* on *machine*, file the result
    under *key* (any hashable, unique within one ``execute`` call)."""

    key: object
    trace: TraceSpec
    machine: MachineConfig


class EngineJobError(RuntimeError):
    """A grid job failed; the message carries the job's identity —
    key, configuration name, trace (and seed) — plus the original
    traceback, instead of a bare multiprocessing dump.  ``failures``
    holds one context dict per failed job."""

    def __init__(self, failures: list[dict]) -> None:
        first = failures[0]
        seed = first.get("seed")
        lines = [
            f"{len(failures)} engine job(s) failed; first: "
            f"job {first['key']} (config {first['config']}, "
            f"trace {first['trace']}"
            + (f", seed {seed}" if seed is not None else "")
            + f") raised {first['error']}"]
        if first.get("traceback"):
            lines.append("worker traceback:")
            lines.append(first["traceback"].rstrip())
        super().__init__("\n".join(lines))
        self.failures = failures


def _default_jobs() -> int:
    """Worker count when none is given: ``REPRO_JOBS`` or 1."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _job_context(job: SimJob) -> dict[str, object]:
    return {"key": str(job.key), "config": job.machine.name,
            "trace": job.trace.describe(), "seed": job.trace.seed}


def _run_job_outcome(job: SimJob, metrics_interval: int | None,
                     recorder: SpanRecorder | None,
                     ledger_path: str | None = None) -> dict:
    """Simulate one job, catching any failure into the outcome."""
    outcome: dict = {"pid": os.getpid(), "started": time.time()}
    depth = recorder.depth if recorder is not None else 0
    try:
        if recorder is not None:
            recorder.begin("job", "engine", key=str(job.key),
                           config=job.machine.name)
        trace = job.trace.build()
        start = time.perf_counter()
        result = OoOCore(job.machine, metrics_interval=metrics_interval,
                         spans=recorder).run(trace)
        wall = time.perf_counter() - start
        if recorder is not None:
            recorder.end(instructions=result.instructions,
                         cycles=result.cycles)
        report = build_run_report(result, job.machine, wall_time=wall,
                                  **job.trace.report_identity())
        if ledger_path is not None:
            # Every worker ingests its own reports; the ledger's
            # UNIQUE-digest constraint and sqlite's busy timeout make
            # concurrent ingest safe.  An ingest failure fails the job
            # loudly (with full context) rather than dropping history.
            from ..obs.ledger import Ledger
            with Ledger(ledger_path) as ledger:
                ledger.ingest(report, source="engine")
        outcome.update(ok=True, result=result, wall=wall, report=report)
    except Exception as exc:
        if recorder is not None:
            while recorder.depth > depth:
                recorder.end()
        outcome.update(ok=False, context=_job_context(job),
                       error={"type": type(exc).__name__,
                              "message": str(exc),
                              "traceback": traceback.format_exc()})
    outcome["finished"] = time.time()
    return outcome


# Per-worker-process state, installed by the pool initializer.
_worker_state: dict = {"queue": None, "epoch": None, "ledger": None}


def _init_worker(cache_dir: object, progress_queue, epoch_us,
                 ledger_path: str | None = None) -> None:
    suite.set_trace_cache_dir(cache_dir)
    _worker_state["queue"] = progress_queue
    _worker_state["epoch"] = epoch_us
    _worker_state["ledger"] = ledger_path


def _run_job(item: tuple[SimJob, int | None]) -> dict:
    job, metrics_interval = item
    queue = _worker_state["queue"]
    key = str(job.key)
    if queue is not None:
        queue.put(("started", key))
    recorder = None
    if _worker_state["epoch"] is not None:
        recorder = SpanRecorder(f"engine worker {os.getpid()}",
                                epoch_us=_worker_state["epoch"])
    with obs_spans.activate(recorder):
        outcome = _run_job_outcome(job, metrics_interval, recorder,
                                   _worker_state["ledger"])
    if recorder is not None:
        outcome["spans"] = recorder.events()
    if queue is not None:
        if outcome["ok"]:
            queue.put(("finished", key, outcome["wall"],
                       outcome["result"].instructions))
        else:
            queue.put(("failed", key))
    return outcome


def _feed_display(display: ProgressDisplay, event: tuple) -> None:
    kind = event[0]
    if kind == "started":
        display.job_started(event[1])
    elif kind == "finished":
        display.job_finished(event[1], event[2], event[3])
    elif kind == "failed":
        display.job_failed(event[1])


class Engine:
    """Executes experiment grids, optionally across worker processes.

    ``jobs`` defaults to the ``REPRO_JOBS`` environment variable (or
    1).  ``trace_cache`` redirects the persistent trace cache for this
    process and every worker — a directory path, or ``"off"``/``None``
    semantics per :func:`repro.workloads.set_trace_cache_dir`; leaving
    it unset keeps the current (default) cache directory.
    ``metrics_interval`` turns on per-job interval telemetry: every
    simulation in the grid samples :mod:`repro.obs.metrics` series at
    that cycle interval and the captured run reports carry them, in
    the same deterministic job order, whatever the worker count.

    ``ledger`` names a results-ledger database
    (:class:`repro.obs.ledger.Ledger`): every successful job's run
    report is ingested from the worker that simulated it, so a
    multi-process grid doubles as a concurrent-ingest exercise.

    ``progress`` turns on the live fleet display (``True`` writes to
    stderr; a stream object redirects it).  ``collect_spans`` records
    a host-time span timeline across the parent and every worker;
    after ``execute`` the merged event stream is on ``span_events``
    (export with :func:`repro.obs.spans.write_chrome_trace`).  Each
    ``execute`` also leaves a fleet summary on ``last_summary``.
    """

    def __init__(self, jobs: int | None = None,
                 trace_cache: str | os.PathLike | None = None,
                 metrics_interval: int | None = None,
                 progress: object = False,
                 collect_spans: bool = False,
                 ledger: str | os.PathLike | None = None) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _default_jobs()
        self.metrics_interval = metrics_interval
        # Results-ledger path; every successful job's run report is
        # ingested by the worker that produced it.  None costs one
        # ``is None`` check per job.
        self.ledger = os.fspath(ledger) if ledger is not None else None
        self.progress = progress
        self.collect_spans = collect_spans
        self.span_events: list[dict] | None = None
        self.last_summary: dict | None = None
        # One recorder and epoch for the engine's lifetime, so several
        # execute() calls (e.g. ``repro experiment all --spans``) land
        # on a single coherent timeline.
        self._recorder: SpanRecorder | None = None
        self._epoch: int | None = None
        self._worker_events: list[list[dict]] = []
        if collect_spans:
            self._epoch = obs_spans.timestamp_us()
            self._recorder = SpanRecorder("engine", epoch_us=self._epoch)
        if trace_cache is not None:
            suite.set_trace_cache_dir(trace_cache)

    # ------------------------------------------------------------------
    def _make_display(self, total: int) -> ProgressDisplay | None:
        if not self.progress:
            return None
        if hasattr(self.progress, "write"):
            return ProgressDisplay(total, stream=self.progress,
                                   force=True)
        return ProgressDisplay(total)

    def execute(self, sim_jobs: Sequence[SimJob],
                ) -> dict[object, CoreResult]:
        """Run every job; returns ``{job.key: CoreResult}`` in job
        order.  Captured run reports (see
        :func:`repro.experiments.runner.capture_reports`) are appended
        to the active sink in the same order.  Raises
        :class:`EngineJobError` if any job failed (after every job has
        run and ``last_summary`` has recorded the failures)."""
        jobs = list(sim_jobs)
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            raise ValueError("SimJob keys must be unique within a grid")
        recorder = self._recorder
        epoch = self._epoch
        display = self._make_display(len(jobs))
        fanout_start = time.time()
        # Warm every distinct trace once, in the parent: forked workers
        # inherit the in-memory tier, spawned workers read the disk
        # tier, and tabulate() helpers get cache hits.
        with obs_spans.activate(recorder):
            specs = dict.fromkeys(job.trace for job in jobs)
            if recorder is not None:
                recorder.begin("engine.warm", "engine",
                               traces=len(specs))
            for spec in specs:
                try:
                    spec.build()
                except Exception:
                    # Warm-up is an optimisation only; the owning job
                    # will hit the same error and report it with
                    # full context (key, config, trace, seed).
                    pass
            if recorder is not None:
                recorder.end()
        if self.jobs <= 1 or len(jobs) <= 1:
            outcomes = self._execute_inline(jobs, recorder, display)
        else:
            outcomes = self._execute_pool(jobs, epoch, display)
        elapsed = time.time() - fanout_start
        if display is not None:
            display.close()
        sink = current_report_sink()
        results: dict[object, CoreResult] = {}
        failures: list[dict] = []
        for job, outcome in zip(jobs, outcomes):
            if outcome["ok"]:
                results[job.key] = outcome["result"]
                if sink is not None:
                    sink.append(outcome["report"])
            else:
                failures.append({**outcome["context"],
                                 "error": f"{outcome['error']['type']}: "
                                          f"{outcome['error']['message']}",
                                 "traceback":
                                     outcome["error"]["traceback"]})
        self.last_summary = self._build_summary(jobs, outcomes,
                                                fanout_start, elapsed,
                                                failures)
        if self.collect_spans:
            self._worker_events.extend(
                outcome["spans"] for outcome in outcomes
                if outcome.get("spans"))
            self.span_events = merge_events(recorder.events(),
                                            *self._worker_events)
        if failures:
            raise EngineJobError(failures)
        return results

    def _execute_inline(self, jobs: list[SimJob],
                        recorder: SpanRecorder | None,
                        display: ProgressDisplay | None) -> list[dict]:
        outcomes = []
        with obs_spans.activate(recorder):
            for job in jobs:
                if display is not None:
                    display.job_started(str(job.key))
                outcome = _run_job_outcome(job, self.metrics_interval,
                                           recorder, self.ledger)
                outcomes.append(outcome)
                if display is None:
                    continue
                if outcome["ok"]:
                    display.job_finished(str(job.key), outcome["wall"],
                                         outcome["result"].instructions)
                else:
                    display.job_failed(str(job.key))
        return outcomes

    def _execute_pool(self, jobs: list[SimJob], epoch: int | None,
                      display: ProgressDisplay | None) -> list[dict]:
        workers = min(self.jobs, len(jobs))
        queue = multiprocessing.Queue() if display is not None else None
        items = [(job, self.metrics_interval) for job in jobs]
        with multiprocessing.Pool(
                processes=workers, initializer=_init_worker,
                initargs=(suite.trace_cache_dir(), queue, epoch,
                          self.ledger)) as pool:
            # map() preserves submission order — the merge in execute()
            # is deterministic no matter which worker finishes first.
            if display is None:
                return pool.map(_run_job, items, chunksize=1)
            pending = pool.map_async(_run_job, items, chunksize=1)
            while True:
                try:
                    _feed_display(display, queue.get(timeout=0.05))
                except Empty:
                    if pending.ready():
                        break
            while True:
                try:
                    _feed_display(display, queue.get_nowait())
                except Empty:
                    break
            return pending.get()

    @staticmethod
    def _build_summary(jobs: list[SimJob], outcomes: list[dict],
                       fanout_start: float, elapsed: float,
                       failures: list[dict]) -> dict:
        """The post-run ``engine`` summary: per-worker utilisation,
        queue wait, slowest jobs, failures.  Host-time content — the
        manifest's ``engine`` subtree is ignored by ``repro compare``
        by default, like ``host``."""
        workers: dict[int, dict] = {}
        waits = []
        timed = []
        for job, outcome in zip(jobs, outcomes):
            worker = workers.setdefault(
                outcome["pid"], {"pid": outcome["pid"], "jobs": 0,
                                 "busy_s": 0.0})
            worker["jobs"] += 1
            waits.append(max(0.0, outcome["started"] - fanout_start))
            busy = outcome["finished"] - outcome["started"]
            worker["busy_s"] += busy
            if outcome["ok"]:
                timed.append({"key": str(job.key),
                              "wall_s": outcome["wall"]})
        for worker in workers.values():
            worker["utilization"] = (worker["busy_s"] / elapsed
                                     if elapsed > 0 else None)
        timed.sort(key=lambda entry: -entry["wall_s"])
        return {
            "elapsed_s": elapsed,
            "jobs": {"total": len(jobs),
                     "ok": len(jobs) - len(failures),
                     "failed": len(failures)},
            "workers": sorted(workers.values(),
                              key=lambda worker: worker["pid"]),
            "queue_wait_s": ({"mean": sum(waits) / len(waits),
                              "max": max(waits)} if waits else None),
            "slowest": timed[:5],
            "failed": [{key: value for key, value in failure.items()
                        if key != "traceback"} for failure in failures],
        }


def execute(sim_jobs: Sequence[SimJob],
            engine: Engine | None = None) -> dict[object, CoreResult]:
    """Run a job list on *engine* (or a fresh default one)."""
    return (engine if engine is not None else Engine()).execute(sim_jobs)
