"""Process-parallel grid execution for the experiment harness.

An experiment is a grid of independent timing simulations — (workload,
scale, machine configuration) cells — followed by a pure tabulation
step.  This module runs the grid:

* :class:`TraceSpec` names a trace without materialising it, so a job
  can cross a process boundary as a small picklable description; each
  worker rebuilds the trace through the workload suite's two-tier
  cache (memory, then the persistent disk tier).
* :class:`SimJob` pairs a :class:`TraceSpec` with a complete
  :class:`~repro.core.config.MachineConfig` and a hashable result key.
* :class:`Engine` executes a job list — inline for ``jobs=1``, across
  a ``multiprocessing`` pool otherwise — and merges results in
  **insertion order**, so the result dict (and any captured run
  reports) is identical whatever the completion order or worker
  count.  Simulated cycles, counters, and rendered tables are
  byte-identical between ``jobs=1`` and ``jobs=N``.

Every distinct trace is warmed once in the parent before the fan-out:
forked workers inherit the in-memory cache, spawned workers load the
disk tier, and no worker ever repeats a functional simulation.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Sequence
from dataclasses import dataclass

from ..core.config import MachineConfig
from ..core.pipeline import CoreResult, OoOCore
from ..obs.report import build_run_report
from ..trace.record import TraceRecord
from ..trace.synthetic import SyntheticConfig, generate
from ..workloads import suite
from .runner import current_report_sink, run_one

__all__ = ["Engine", "SimJob", "TraceSpec", "execute"]


@dataclass(frozen=True)
class TraceSpec:
    """A picklable description of a trace (not the trace itself)."""

    kind: str                            # workload | os-mix | os-mix-user
    name: str | None = None              # ... | synthetic
    scale: str | None = None
    synthetic: SyntheticConfig | None = None

    @staticmethod
    def workload(name: str, scale: str) -> "TraceSpec":
        """A suite workload by name; ``"os-mix"`` selects the mix."""
        if name == "os-mix":
            return TraceSpec("os-mix", name, scale)
        return TraceSpec("workload", name, scale)

    @staticmethod
    def os_mix(scale: str, user_only: bool = False) -> "TraceSpec":
        """The multiprogrammed mix; ``user_only`` filters out kernel
        records (the classic user-only-trace methodology)."""
        kind = "os-mix-user" if user_only else "os-mix"
        return TraceSpec(kind, "os-mix", scale)

    @staticmethod
    def from_synthetic(config: SyntheticConfig) -> "TraceSpec":
        return TraceSpec("synthetic", "synthetic", None, config)

    def build(self) -> list[TraceRecord]:
        """Materialise the trace through the suite's two-tier cache."""
        if self.kind == "workload":
            return suite.build_trace(self.name, self.scale)
        if self.kind == "os-mix":
            return suite.build_os_mix_trace(self.scale)
        if self.kind == "os-mix-user":
            return [record
                    for record in suite.build_os_mix_trace(self.scale)
                    if not record.kernel]
        if self.kind == "synthetic":
            config = self.synthetic
            return suite.cached_trace(
                f"synthetic-seed{config.seed}",
                suite.content_digest(repr(config)),
                lambda: generate(config))
        raise ValueError(f"unknown trace kind {self.kind!r}")


@dataclass(frozen=True)
class SimJob:
    """One grid cell: simulate *trace* on *machine*, file the result
    under *key* (any hashable, unique within one ``execute`` call)."""

    key: object
    trace: TraceSpec
    machine: MachineConfig


def _default_jobs() -> int:
    """Worker count when none is given: ``REPRO_JOBS`` or 1."""
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def _init_worker(cache_dir: object) -> None:
    suite.set_trace_cache_dir(cache_dir)


def _run_job(item: tuple[SimJob, int | None]) -> tuple[CoreResult, dict]:
    job, metrics_interval = item
    trace = job.trace.build()
    start = time.perf_counter()
    result = OoOCore(job.machine,
                     metrics_interval=metrics_interval).run(trace)
    report = build_run_report(
        result, job.machine, wall_time=time.perf_counter() - start)
    return result, report


class Engine:
    """Executes experiment grids, optionally across worker processes.

    ``jobs`` defaults to the ``REPRO_JOBS`` environment variable (or
    1).  ``trace_cache`` redirects the persistent trace cache for this
    process and every worker — a directory path, or ``"off"``/``None``
    semantics per :func:`repro.workloads.set_trace_cache_dir`; leaving
    it unset keeps the current (default) cache directory.
    ``metrics_interval`` turns on per-job interval telemetry: every
    simulation in the grid samples :mod:`repro.obs.metrics` series at
    that cycle interval and the captured run reports carry them, in
    the same deterministic job order, whatever the worker count.
    """

    def __init__(self, jobs: int | None = None,
                 trace_cache: str | os.PathLike | None = None,
                 metrics_interval: int | None = None) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _default_jobs()
        self.metrics_interval = metrics_interval
        if trace_cache is not None:
            suite.set_trace_cache_dir(trace_cache)

    def execute(self, sim_jobs: Sequence[SimJob],
                ) -> dict[object, CoreResult]:
        """Run every job; returns ``{job.key: CoreResult}`` in job
        order.  Captured run reports (see
        :func:`repro.experiments.runner.capture_reports`) are appended
        to the active sink in the same order."""
        jobs = list(sim_jobs)
        keys = [job.key for job in jobs]
        if len(set(keys)) != len(keys):
            raise ValueError("SimJob keys must be unique within a grid")
        # Warm every distinct trace once, in the parent: forked workers
        # inherit the in-memory tier, spawned workers read the disk
        # tier, and tabulate() helpers get cache hits.
        for spec in dict.fromkeys(job.trace for job in jobs):
            spec.build()
        if self.jobs <= 1 or len(jobs) <= 1:
            return {job.key: run_one(job.trace.build(), job.machine,
                                     self.metrics_interval)
                    for job in jobs}
        sink = current_report_sink()
        workers = min(self.jobs, len(jobs))
        with multiprocessing.Pool(
                processes=workers, initializer=_init_worker,
                initargs=(suite.trace_cache_dir(),)) as pool:
            # map() preserves submission order — the merge below is
            # deterministic no matter which worker finishes first.
            outcomes = pool.map(
                _run_job,
                [(job, self.metrics_interval) for job in jobs],
                chunksize=1)
        results: dict[object, CoreResult] = {}
        for job, (result, report) in zip(jobs, outcomes):
            results[job.key] = result
            if sink is not None:
                sink.append(report)
        return results


def execute(sim_jobs: Sequence[SimJob],
            engine: Engine | None = None) -> dict[object, CoreResult]:
    """Run a job list on *engine* (or a fresh default one)."""
    return (engine if engine is not None else Engine()).execute(sim_jobs)
