"""D1 — load service latency distribution per configuration.

Beyond average IPC: how each port configuration reshapes the *latency
distribution* a load sees between address-ready and data-ready.  Port
queueing fattens the tail on the plain single port; the line buffer
and combining restore the 1–2 cycle common case without adding ports.
"""

from __future__ import annotations

from ..stats.histogram import Histogram
from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import MEMORY_INTENSIVE

_CONFIGS = ("1P", "1P+LB", "1P-wide+LB+SC", "2P")


def plan(scale: str = "small") -> list[SimJob]:
    machines = {config: machine(config) for config in _CONFIGS}
    return [SimJob((config, name), TraceSpec.workload(name, scale),
                   machines[config])
            for config in _CONFIGS for name in MEMORY_INTENSIVE]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"D1: load service latency distribution ({scale})",
        columns=["config", "mean", "p50", "p90", "p99", "frac<=2cyc"],
    )
    for config_name in _CONFIGS:
        merged = Histogram(config_name)
        for name in MEMORY_INTENSIVE:
            result = results[(config_name, name)]
            assert result.load_latency is not None
            merged.merge(result.load_latency)
        table.add_row(
            config_name,
            round(merged.mean, 2),
            merged.percentile(0.5),
            merged.percentile(0.9),
            merged.percentile(0.99),
            round(merged.fraction_at_most(2), 3),
        )
    table.add_note(f"latency = address-ready to data-ready cycles, pooled "
                   f"over {MEMORY_INTENSIVE}")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
