"""B1 — extension: branch predictors on user vs full-system streams.

A companion study in the spirit of the ISCA'96 session: the same
machine with a per-branch 2-bit table vs gshare, on the user-only view
and on the kernel-inclusive trace.  Kernel interleaving perturbs global
history and aliases tables, so the gshare advantage shrinks (or
reverses) once the OS is included — the effect the user-only
methodology hides.
"""

from __future__ import annotations

from dataclasses import replace

from ..presets import DUAL_PORT, machine
from ..stats.report import Table
from ..workloads.suite import build_os_mix_trace
from .runner import run_one


def _with_predictor(kind: str):
    base = machine(DUAL_PORT)
    return replace(base, core=replace(
        base.core, bpred=replace(base.core.bpred, kind=kind)))


def run(scale: str = "small") -> Table:
    table = Table(
        title=f"B1: predictor accuracy, user-only vs full-system ({scale})",
        columns=["trace", "twobit_acc", "gshare_acc", "twobit_ipc",
                 "gshare_ipc"],
    )
    full = build_os_mix_trace(scale)
    user_only = [record for record in full if not record.kernel]
    for label, trace in (("with-kernel", full), ("user-only", user_only)):
        row: list[object] = [label]
        ipcs = []
        for kind in ("twobit", "gshare"):
            result = run_one(trace, _with_predictor(kind))
            stats = result.stats
            branches = stats["bpred.branches"]
            row.append(round(stats["bpred.correct"] / branches
                             if branches else 1.0, 4))
            ipcs.append(round(result.ipc, 3))
        row += ipcs
        table.add_row(*row)
    return table
