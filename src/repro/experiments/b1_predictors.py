"""B1 — extension: branch predictors on user vs full-system streams.

A companion study in the spirit of the ISCA'96 session: the same
machine with a per-branch 2-bit table vs gshare, on the user-only view
and on the kernel-inclusive trace.  Kernel interleaving perturbs global
history and aliases tables, so the gshare advantage shrinks (or
reverses) once the OS is included — the effect the user-only
methodology hides.
"""

from __future__ import annotations

from dataclasses import replace

from ..presets import DUAL_PORT, machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute

_KINDS = ("twobit", "gshare")
_VIEWS = (("with-kernel", False), ("user-only", True))


def _with_predictor(kind: str):
    base = machine(DUAL_PORT)
    return replace(base, core=replace(
        base.core, bpred=replace(base.core.bpred, kind=kind)))


def plan(scale: str = "small") -> list[SimJob]:
    machines = {kind: _with_predictor(kind) for kind in _KINDS}
    return [SimJob((label, kind), TraceSpec.os_mix(scale, user_only),
                   machines[kind])
            for label, user_only in _VIEWS for kind in _KINDS]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"B1: predictor accuracy, user-only vs full-system ({scale})",
        columns=["trace", "twobit_acc", "gshare_acc", "twobit_ipc",
                 "gshare_ipc"],
    )
    for label, _user_only in _VIEWS:
        row: list[object] = [label]
        ipcs = []
        for kind in _KINDS:
            result = results[(label, kind)]
            stats = result.stats
            branches = stats["bpred.branches"]
            row.append(round(stats["bpred.correct"] / branches
                             if branches else 1.0, 4))
            ipcs.append(round(result.ipc, 3))
        row += ipcs
        table.add_row(*row)
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
