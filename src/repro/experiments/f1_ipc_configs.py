"""F1 — IPC of every port configuration, per workload.

The evaluation's main figure: one IPC bar per (workload, configuration)
over the full suite plus the multiprogrammed OS mix.
"""

from __future__ import annotations

from ..presets import CONFIG_NAMES
from ..stats.report import Table
from .runner import ROW_NAMES, run_configs, suite_traces


def run(scale: str = "small") -> Table:
    table = Table(
        title=f"F1: IPC by port configuration ({scale})",
        columns=["workload", *CONFIG_NAMES],
    )
    traces = suite_traces(scale)
    for name in ROW_NAMES:
        results = run_configs(traces[name], CONFIG_NAMES)
        table.add_row(name, *(round(results[c].ipc, 3)
                              for c in CONFIG_NAMES))
    return table
