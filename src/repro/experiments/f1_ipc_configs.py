"""F1 — IPC of every port configuration, per workload.

The evaluation's main figure: one IPC bar per (workload, configuration)
over the full suite plus the multiprogrammed OS mix.
"""

from __future__ import annotations

from ..presets import CONFIG_NAMES
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import ROW_NAMES, config_machines


def plan(scale: str = "small") -> list[SimJob]:
    machines = config_machines(CONFIG_NAMES)
    return [SimJob((name, config), TraceSpec.workload(name, scale),
                   machines[config])
            for name in ROW_NAMES for config in CONFIG_NAMES]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"F1: IPC by port configuration ({scale})",
        columns=["workload", *CONFIG_NAMES],
    )
    for name in ROW_NAMES:
        table.add_row(name, *(round(results[(name, config)].ipc, 3)
                              for config in CONFIG_NAMES))
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
