"""A3 — ablation: where the techniques stop working.

Synthetic streams sweeping spatial locality from 0 (random dwords) to 1
(pure streaming).  The line buffer and wide-port combining exploit
spatial locality; at the random end the single port must pay for every
access and the gap to the dual-ported cache cannot be closed.
"""

from __future__ import annotations

from ..presets import BEST_SINGLE_PORT, DUAL_PORT
from ..stats.report import Table
from ..trace.synthetic import SyntheticConfig
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import config_machines

_LOCALITIES = (0.0, 0.25, 0.5, 0.75, 0.9, 1.0)
_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT)


_SCALE_PARAMS = {
    # (instructions, working set): the working set shrinks with the
    # instruction budget so cold misses amortise at every scale.
    "tiny": (12_000, 4 * 1024),
    "small": (30_000, 16 * 1024),
    "full": (100_000, 16 * 1024),
}


def plan(scale: str = "small", instructions: int | None = None,
         seed: int = 11) -> list[SimJob]:
    default_instructions, working_set = _SCALE_PARAMS[scale]
    if instructions is None:
        instructions = default_instructions
    machines = config_machines(_CONFIGS)
    jobs = []
    for locality in _LOCALITIES:
        spec = TraceSpec.from_synthetic(SyntheticConfig(
            instructions=instructions,
            seed=seed,
            load_fraction=0.35,
            store_fraction=0.15,
            spatial_locality=locality,
            working_set=working_set,
        ))
        jobs += [SimJob((locality, config), spec, machines[config])
                 for config in _CONFIGS]
    return jobs


def tabulate(scale: str, results: dict) -> Table:
    _, working_set = _SCALE_PARAMS[scale]
    table = Table(
        title=f"A3: synthetic spatial-locality sweep ({scale})",
        columns=["locality", "ipc_1P", "ipc_tech", "ipc_2P", "1P/2P",
                 "tech/2P"],
    )
    for locality in _LOCALITIES:
        base = results[(locality, DUAL_PORT)].ipc
        table.add_row(
            locality,
            round(results[(locality, "1P")].ipc, 3),
            round(results[(locality, BEST_SINGLE_PORT)].ipc, 3),
            round(base, 3),
            round(results[(locality, "1P")].ipc / base, 3),
            round(results[(locality, BEST_SINGLE_PORT)].ipc / base, 3),
        )
    table.add_note(f"load 35% / store 15% of instructions; "
                   f"{working_set // 1024} KiB working set (L1-resident) "
                   "so port bandwidth is the constraint")
    return table


def run(scale: str = "small", instructions: int | None = None,
        seed: int = 11, engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale, instructions, seed), engine))
