"""T1 — workload characteristics table.

The standard "benchmark description" table: dynamic instruction count,
memory/branch densities, kernel fraction, and two behavioural columns
measured on the dual-ported reference machine (branch prediction
accuracy and L1 D-cache load miss rate).
"""

from __future__ import annotations

from ..presets import DUAL_PORT, machine
from ..stats.report import Table
from ..workloads.suite import trace_summary
from .runner import ROW_NAMES, run_one, suite_traces


def run(scale: str = "small") -> Table:
    table = Table(
        title=f"T1: workload characteristics ({scale})",
        columns=["workload", "instructions", "%load", "%store", "%branch",
                 "%kernel", "bpred_acc", "dmiss_rate"],
    )
    traces = suite_traces(scale)
    for name in ROW_NAMES:
        trace = traces[name]
        summary = trace_summary(trace)
        result = run_one(trace, machine(DUAL_PORT))
        stats = result.stats
        branches = stats["bpred.branches"]
        accuracy = stats["bpred.correct"] / branches if branches else 1.0
        port_loads = (stats["dcache.load_hits"] + stats["dcache.load_misses"]
                      + stats["dcache.load_secondary_misses"])
        miss_rate = stats["dcache.load_misses"] / port_loads \
            if port_loads else 0.0
        table.add_row(
            name,
            int(summary["instructions"]),
            round(100 * summary["load_fraction"], 1),
            round(100 * summary["store_fraction"], 1),
            round(100 * summary["branch_fraction"], 1),
            round(100 * summary["kernel_fraction"], 1),
            round(accuracy, 3),
            round(miss_rate, 3),
        )
    table.add_note("bpred_acc and dmiss_rate measured on the dual-ported "
                   "reference (2P)")
    return table
