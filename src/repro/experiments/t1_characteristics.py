"""T1 — workload characteristics table.

The standard "benchmark description" table: dynamic instruction count,
memory/branch densities, kernel fraction, and two behavioural columns
measured on the dual-ported reference machine (branch prediction
accuracy and L1 D-cache load miss rate).
"""

from __future__ import annotations

from ..presets import DUAL_PORT, machine
from ..stats.report import Table
from ..workloads.suite import trace_summary
from .engine import Engine, SimJob, TraceSpec, execute
from .runner import ROW_NAMES, suite_traces


def plan(scale: str = "small") -> list[SimJob]:
    reference = machine(DUAL_PORT)
    return [SimJob(name, TraceSpec.workload(name, scale), reference)
            for name in ROW_NAMES]


def tabulate(scale: str, results: dict) -> Table:
    table = Table(
        title=f"T1: workload characteristics ({scale})",
        columns=["workload", "instructions", "%load", "%store", "%branch",
                 "%kernel", "bpred_acc", "dmiss_rate"],
    )
    traces = suite_traces(scale)
    for name in ROW_NAMES:
        summary = trace_summary(traces[name])
        stats = results[name].stats
        branches = stats["bpred.branches"]
        accuracy = stats["bpred.correct"] / branches if branches else 1.0
        port_loads = (stats["dcache.load_hits"] + stats["dcache.load_misses"]
                      + stats["dcache.load_secondary_misses"])
        miss_rate = stats["dcache.load_misses"] / port_loads \
            if port_loads else 0.0
        table.add_row(
            name,
            int(summary["instructions"]),
            round(100 * summary["load_fraction"], 1),
            round(100 * summary["store_fraction"], 1),
            round(100 * summary["branch_fraction"], 1),
            round(100 * summary["kernel_fraction"], 1),
            round(accuracy, 3),
            round(miss_rate, 3),
        )
    table.add_note("bpred_acc and dmiss_rate measured on the dual-ported "
                   "reference (2P)")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
