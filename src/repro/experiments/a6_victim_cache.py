"""A6 — extension: victim cache, and how it composes with the techniques.

A small fully-associative victim cache (Jouppi 1990) attacks conflict
misses; the paper's techniques attack port bandwidth.  This ablation
shows the two are orthogonal: the victim cache helps exactly where
conflict misses exist (compress's dictionary, the OS mix), and its
benefit is preserved — not cannibalised — under the all-techniques
single port.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .engine import Engine, SimJob, TraceSpec, execute

_WORKLOADS = ("compress", "qsort", "stream", "os-mix")
_CONFIGS = ("1P", "1P-wide+LB+SC")
_ENTRIES = 8


def plan(scale: str = "small") -> list[SimJob]:
    machines = {(config, vc): machine(config, victim_entries=_ENTRIES)
                if vc else machine(config)
                for config in _CONFIGS for vc in (False, True)}
    return [SimJob((name, config, vc), TraceSpec.workload(name, scale),
                   machines[(config, vc)])
            for name in _WORKLOADS
            for config in _CONFIGS for vc in (False, True)]


def tabulate(scale: str, results: dict) -> Table:
    columns = ["workload"]
    for config in _CONFIGS:
        columns += [config, f"{config}+VC"]
    columns += ["vc_hits"]
    table = Table(
        title=f"A6: victim cache ({_ENTRIES} entries) composition ({scale})",
        columns=columns,
    )
    for name in _WORKLOADS:
        cells: list[object] = [name]
        hits = 0
        for config in _CONFIGS:
            base = results[(name, config, False)]
            with_vc = results[(name, config, True)]
            cells += [round(base.ipc, 3), round(with_vc.ipc, 3)]
            hits = int(with_vc.stats["victim.hits"])
        cells.append(hits)
        table.add_row(*cells)
    table.add_note("+VC = victim cache enabled; vc_hits from the "
                   "techniques configuration")
    return table


def run(scale: str = "small", engine: Engine | None = None) -> Table:
    return tabulate(scale, execute(plan(scale), engine))
