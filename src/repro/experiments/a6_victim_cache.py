"""A6 — extension: victim cache, and how it composes with the techniques.

A small fully-associative victim cache (Jouppi 1990) attacks conflict
misses; the paper's techniques attack port bandwidth.  This ablation
shows the two are orthogonal: the victim cache helps exactly where
conflict misses exist (compress's dictionary, the OS mix), and its
benefit is preserved — not cannibalised — under the all-techniques
single port.
"""

from __future__ import annotations

from ..presets import machine
from ..stats.report import Table
from .runner import run_one, suite_traces

_WORKLOADS = ("compress", "qsort", "stream", "os-mix")
_CONFIGS = ("1P", "1P-wide+LB+SC")
_ENTRIES = 8


def run(scale: str = "small") -> Table:
    columns = ["workload"]
    for config in _CONFIGS:
        columns += [config, f"{config}+VC"]
    columns += ["vc_hits"]
    table = Table(
        title=f"A6: victim cache ({_ENTRIES} entries) composition ({scale})",
        columns=columns,
    )
    traces = suite_traces(scale, names=_WORKLOADS)
    for name in _WORKLOADS:
        trace = traces[name]
        cells: list[object] = [name]
        hits = 0
        for config in _CONFIGS:
            base = run_one(trace, machine(config))
            with_vc = run_one(trace, machine(config,
                                             victim_entries=_ENTRIES))
            cells += [round(base.ipc, 3), round(with_vc.ipc, 3)]
            hits = int(with_vc.stats["victim.hits"])
        cells.append(hits)
        table.add_row(*cells)
    table.add_note("+VC = victim cache enabled; vc_hits from the "
                   "techniques configuration")
    return table
