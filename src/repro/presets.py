"""The paper's machine configurations.

Six D-cache port configurations over one fixed 4-issue dynamic
superscalar core (see ``DESIGN.md``).  The naming follows the paper's
experiment matrix:

========================  ====================================================
``1P``                    single 64-bit port, plain write buffer (baseline)
``1P+LB``                 + line buffer ("load all" extra buffering)
``1P-wide``               single 128-bit port with LSQ access combining
``1P-wide+LB``            wide port and line buffer together
``1P-wide+LB+SC``         + store combining (all techniques; the headline)
``2P``                    true dual-ported 64-bit cache (expensive reference)
``2P+SC``                 dual-ported + store combining (strong reference)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import replace

from .core.config import BranchPredictorConfig, CoreConfig, MachineConfig
from .mem.config import (
    CacheGeometry,
    DCacheConfig,
    ICacheConfig,
    LineBufferFill,
    LineBufferOnStore,
    MemSystemConfig,
    NextLevelConfig,
)

#: Narrow (64-bit) and wide (128-bit) port widths, in bytes.
NARROW_PORT = 8
WIDE_PORT = 16

#: Canonical configuration names, in presentation order.
CONFIG_NAMES = ("1P", "1P+LB", "1P-wide", "1P-wide+LB", "1P-wide+LB+SC",
                "2P", "2P+SC")

#: The configuration the paper's 91% headline refers to.
BEST_SINGLE_PORT = "1P-wide+LB+SC"
DUAL_PORT = "2P"
#: Dual port with the same coalescing write buffer as the techniques
#: config — the conservative reference point.
STRONG_DUAL_PORT = "2P+SC"


def default_core(issue_width: int = 4) -> CoreConfig:
    """The fixed 4-issue core used across configurations."""
    width = issue_width
    return CoreConfig(
        fetch_width=width,
        dispatch_width=width,
        issue_width=width,
        commit_width=width,
        rob_size=16 * width,
        iq_size=8 * width,
        lq_size=4 * width,
        sq_size=4 * width,
        bpred=BranchPredictorConfig(kind="twobit"),
    )


def _dcache(ports: int, port_width: int, line_buffer: bool,
            combine_loads: bool, combine_stores: bool,
            write_buffer_depth: int = 8,
            line_buffer_entries: int = 1) -> DCacheConfig:
    return DCacheConfig(
        geometry=CacheGeometry(size=32 * 1024, line_size=32, assoc=2),
        ports=ports,
        port_width=port_width,
        combine_loads=combine_loads,
        line_buffer_entries=line_buffer_entries if line_buffer else 0,
        line_buffer_fill=(LineBufferFill.ON_ACCESS if line_buffer
                          else LineBufferFill.NONE),
        line_buffer_on_store=LineBufferOnStore.UPDATE,
        write_buffer_depth=write_buffer_depth,
        combine_stores=combine_stores,
    )


_DCACHE_RECIPES: dict[str, DCacheConfig] = {
    "1P": _dcache(1, NARROW_PORT, line_buffer=False, combine_loads=False,
                  combine_stores=False),
    "1P+LB": _dcache(1, NARROW_PORT, line_buffer=True, combine_loads=False,
                     combine_stores=False),
    "1P-wide": _dcache(1, WIDE_PORT, line_buffer=False, combine_loads=True,
                       combine_stores=False),
    "1P-wide+LB": _dcache(1, WIDE_PORT, line_buffer=True, combine_loads=True,
                          combine_stores=False),
    "1P-wide+LB+SC": _dcache(1, WIDE_PORT, line_buffer=True,
                             combine_loads=True, combine_stores=True),
    "2P": _dcache(2, NARROW_PORT, line_buffer=False, combine_loads=False,
                  combine_stores=False),
    "2P+SC": _dcache(2, NARROW_PORT, line_buffer=False, combine_loads=False,
                     combine_stores=True),
}

# Extended (beyond the paper's matrix): line-interleaved banking, the
# era's other cheap pseudo-dual-porting alternative.  Two address paths
# into N single-ported banks; same-bank pairs conflict.
_DCACHE_RECIPES["2R-2B"] = replace(
    _DCACHE_RECIPES["2P"], ports=2, banks=2)
_DCACHE_RECIPES["2R-4B"] = replace(
    _DCACHE_RECIPES["2P"], ports=2, banks=4)
_DCACHE_RECIPES["2R-8B"] = replace(
    _DCACHE_RECIPES["2P"], ports=2, banks=8)

#: Extra configurations used by the banking ablation (A4).
EXTENDED_CONFIG_NAMES = ("2R-2B", "2R-4B", "2R-8B")


def mem_system(config_name: str) -> MemSystemConfig:
    """Memory system for one named port configuration."""
    try:
        dcache = _DCACHE_RECIPES[config_name]
    except KeyError:
        raise ValueError(
            f"unknown configuration {config_name!r}; "
            f"choose from {CONFIG_NAMES}") from None
    return MemSystemConfig(
        dcache=dcache,
        icache=ICacheConfig(
            geometry=CacheGeometry(size=32 * 1024, line_size=32, assoc=2),
            fetch_bytes=16),
        next_level=NextLevelConfig(),
    )


def machine(config_name: str, issue_width: int = 4,
            **dcache_overrides: object) -> MachineConfig:
    """Build a complete machine for one named port configuration.

    ``dcache_overrides`` are applied with :func:`dataclasses.replace` on
    the D-cache config — handy for sweeps (write buffer depth, line
    buffer entries, MSHRs, ...).
    """
    mem = mem_system(config_name)
    if dcache_overrides:
        mem = replace(mem, dcache=replace(mem.dcache, **dcache_overrides))
    return MachineConfig(name=config_name, core=default_core(issue_width),
                         mem=mem)


def paper_machines(issue_width: int = 4) -> dict[str, MachineConfig]:
    """All six configurations, keyed by name, in presentation order."""
    return {name: machine(name, issue_width) for name in CONFIG_NAMES}
