"""``proctree`` — a fork/exec-style process tree over shared mailboxes.

A parent process (slot 0) repeatedly farms work descriptors out to a
set of worker children through per-child mailbox words, then collects
their results — the mini-OS equivalent of a fork/join process tree.
There is no memory protection between process windows, so the mailboxes
and result slots simply live in the parent's data segment and the
children address them absolutely; every wait is a ``sys_yield`` spin,
so the scenario is dense in scheduler round-trips and full context
save/restore bursts.

The parent is the only console writer (it prints the final checksum as
four hex digits), so the console contract is exact.
"""

from __future__ import annotations

from ..kernel import layout
from .base import (
    LCG_INC,
    LCG_MUL,
    MASK64,
    ExpectedResults,
    MemRegion,
    derive_seed,
    lcg,
)

NAME = "proctree"
DESCRIPTION = "fork/join process tree over shared-memory mailboxes"
TAGS = ("os-heavy", "syscall-dense", "multi-process")
DEFAULT_SEED = 1009

SCALES = {
    "tiny": {"children": 3, "rounds": 2, "task_len": 24,
             "timer": 250, "max_instructions": 400_000},
    "small": {"children": 5, "rounds": 6, "task_len": 160,
              "timer": 900, "max_instructions": 2_000_000},
    "medium": {"children": 7, "rounds": 16, "task_len": 420,
               "timer": 2500, "max_instructions": 10_000_000},
}

#: Parent data layout (offsets from the slot-0 data base).
_OUT_OFF = 0
_RESULTS_OFF = 8


def _mailbox_off(children: int) -> int:
    return _RESULTS_OFF + 8 * children


def _lcg_asm(x: str, tmp: str) -> str:
    return (f"    li   {tmp}, {LCG_MUL}\n"
            f"    mul  {x}, {x}, {tmp}\n"
            f"    addi {x}, {x}, {LCG_INC}")


def _task_value(x: int) -> int:
    """The task descriptor derived from one LCG draw: nonzero and
    never the stop sentinel (1)."""
    return (x & 0x3FFF_FFFF) | 2


def _parent_source(seed: int, children: int, rounds: int) -> str:
    return f"""
.equ SYS_EXIT, 1
.equ SYS_WRITE, 2
.equ SYS_YIELD, 4
.data
out:     .space 8
results: .space {8 * children}
mailbox: .space {8 * children}
iobuf:   .space 8
.text
main:
    li   s5, {derive_seed(seed, 0)}   # task LCG state
    li   s6, {rounds}
    li   s4, 0                 # checksum accumulator
round:
    # -- post one task per child ---------------------------------------
    la   s0, mailbox
    li   s1, {children}
task_loop:
{_lcg_asm('s5', 't5')}
    li   t5, 0x3fffffff
    and  t6, s5, t5
    ori  t6, t6, 2
    sd   t6, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, task_loop
    # -- collect every child's result (yield while pending) -----------
    la   s0, results
    li   s1, {children}
collect_loop:
wait_result:
    ld   t1, 0(s0)
    bnez t1, got_result
    li   a7, SYS_YIELD
    syscall 0
    j    wait_result
got_result:
    add  s4, s4, t1
    sd   zero, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, collect_loop
    subi s6, s6, 1
    bnez s6, round
    # -- tell every child to stop (sentinel task = 1) -------------------
    la   s0, mailbox
    li   s1, {children}
    li   t1, 1
stop_loop:
    sd   t1, 0(s0)
    addi s0, s0, 8
    subi s1, s1, 1
    bnez s1, stop_loop
    # -- publish the checksum and print it as four hex digits ----------
    la   t0, out
    sd   s4, 0(t0)
    li   t5, 0xffff
    and  s4, s4, t5
    la   t0, iobuf
    li   t1, 12
hexloop:
    srl  t2, s4, t1
    andi t2, t2, 15
    slti t3, t2, 10
    bnez t3, hexdigit
    addi t2, t2, 39            # 'a' - '0' - 10
hexdigit:
    addi t2, t2, 48
    sb   t2, 0(t0)
    addi t0, t0, 1
    subi t1, t1, 4
    bgez t1, hexloop
    li   t2, 10
    sb   t2, 0(t0)
    la   a0, iobuf
    li   a1, 5
    li   a7, SYS_WRITE
    syscall 0
    mv   a0, s4
    li   a7, SYS_EXIT
    syscall 0
"""


def _child_source(index: int, children: int, task_len: int) -> str:
    parent_data = layout.user_data_base(0)
    mailbox = parent_data + _mailbox_off(children) + 8 * index
    result = parent_data + _RESULTS_OFF + 8 * index
    return f"""
.equ SYS_EXIT, 1
.equ SYS_YIELD, 4
.equ MAILBOX, {mailbox}
.equ RESULT, {result}
.text
main:
    li   s2, 0                 # per-child accumulator
    li   s7, MAILBOX
    li   s8, RESULT
poll:
    ld   t1, 0(s7)
    bnez t1, have_task
    li   a7, SYS_YIELD
    syscall 0
    j    poll
have_task:
    li   t2, 1
    beq  t1, t2, finish
    sd   zero, 0(s7)           # take the task
    mv   t3, t1                # chain LCG from the descriptor
    li   t4, {task_len}
    li   t6, 0
chain:
{_lcg_asm('t3', 't5')}
    add  t6, t6, t3
    subi t4, t4, 1
    bnez t4, chain
    ori  t6, t6, 1             # results are never zero
    add  s2, s2, t6
    sd   t6, 0(s8)
    j    poll
finish:
    li   t5, 0xffff
    and  a0, s2, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def programs(seed: int, children: int, rounds: int, task_len: int,
             timer: int, max_instructions: int) -> list[tuple[str, str]]:
    out = [("proctree-parent", _parent_source(seed, children, rounds))]
    for index in range(children):
        out.append((f"proctree-child{index}",
                    _child_source(index, children, task_len)))
    return out


def expected(seed: int, children: int, rounds: int, task_len: int,
             timer: int, max_instructions: int) -> ExpectedResults:
    """Pure-Python reference model of the whole tree."""
    x = derive_seed(seed, 0)
    child_acc = [0] * children
    parent_acc = 0
    for _ in range(rounds):
        for child in range(children):
            x = lcg(x)
            task = _task_value(x)
            chain, r = task, 0
            for _ in range(task_len):
                chain = lcg(chain)
                r = (r + chain) & MASK64
            r |= 1
            child_acc[child] = (child_acc[child] + r) & MASK64
            parent_acc = (parent_acc + r) & MASK64
    exit_codes = [parent_acc & 0xFFFF] + \
        [acc & 0xFFFF for acc in child_acc]
    console = f"{parent_acc & 0xFFFF:04x}\n".encode()
    parent_data = layout.user_data_base(0)
    state = (parent_acc.to_bytes(8, "little")          # out
             + b"\x00" * (8 * children)                # results, drained
             + (1).to_bytes(8, "little") * children)   # mailboxes: stop
    regions = (MemRegion.of("parent-state", parent_data, state),)
    return ExpectedResults.exact_console(exit_codes, regions, console)
