"""Corpus-wide co-execution verification.

For every scenario × scale cell this harness runs three independent
checks and folds them into one pass/fail table:

1. **contract** — the functional run must satisfy the scenario's
   expected-results contract (per-process exit codes, memory-region
   digests, console bytes), all predicted by the pure-Python reference
   model without executing the ISA.
2. **golden+invariants** (per machine config) — the timing core replays
   the trace with a :class:`~repro.validate.SystemGoldenChecker` +
   :class:`~repro.validate.InvariantChecker` suite attached; zero
   violations are tolerated, and the golden model's architectural end
   digests must equal the functional run's.
3. **fastpath** (per machine config) — the fast cycle loop must produce
   a byte-identical :class:`~repro.core.pipeline.CoreResult` view
   (cycles, stats, stall ledger, load-latency histogram, digests) to
   the instrumented reference loop.

``repro corpus verify`` drives :func:`verify_corpus`; CI's
``corpus-smoke`` job runs it at tiny scale under ``REPRO_VALIDATE=1``.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import pipeline
from ..core.pipeline import OoOCore
from ..presets import machine
from ..stats.report import Table
from ..validate import (
    InvariantChecker,
    SystemGoldenChecker,
    ValidationSuite,
)
from . import SCENARIO_NAMES, SCENARIOS
from .runtime import check_contract, run_scenario

#: Machine configurations every corpus cell is verified on: the paper's
#: single-port baseline, the dual-port upper bound, and the best
#: single-port technique stack.
CORPUS_CONFIGS = ("1P", "2P", "1P-wide+LB+SC")


def result_view(result) -> dict:
    """Everything :class:`CoreResult` exposes, flattened to comparable
    plain values — the byte-identity contract of the fast-path
    differential (shared with ``tests/test_fastpath_diff.py``)."""
    return {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "stats": result.stats.as_dict(),
        "ledger": result.ledger.as_dict(),
        "load_latency": result.load_latency.as_dict(),
        "digests": result.digests,
    }


def _fastpath_differential(config_name: str, trace) -> str | None:
    """Reference loop vs fast loop on identical machines; returns a
    failure detail or None.  Forces the implicit REPRO_VALIDATE checker
    off for the pair (both loops must run bare), restoring it after."""
    saved = pipeline._ENV_VALIDATE
    pipeline._ENV_VALIDATE = False
    try:
        slow_core = OoOCore(machine(config_name), fastpath=False)
        slow = slow_core.run(trace)
        fast_core = OoOCore(machine(config_name), fastpath=True)
        fast = fast_core.run(trace)
        if not fast_core.used_fastpath:
            return "fast core did not take the fast path"
        slow_view, fast_view = result_view(slow), result_view(fast)
        if fast_view != slow_view:
            diffs = [key for key in slow_view
                     if slow_view[key] != fast_view[key]]
            return f"fast path diverges from reference in {diffs}"
        return None
    finally:
        pipeline._ENV_VALIDATE = saved


def verify_scenario(name: str, scale: str, seed: int | None = None,
                    configs: Sequence[str] = CORPUS_CONFIGS,
                    ) -> list[dict]:
    """Run all checks for one scenario × scale cell.

    Returns one row dict per check: ``{"scenario", "scale", "seed",
    "check", "config", "status", "detail"}`` with status ``"pass"`` or
    ``"FAIL"``.
    """
    spec = SCENARIOS[name]
    rows: list[dict] = []

    def row(check: str, config: str, detail: str | None) -> None:
        rows.append({"scenario": name, "scale": scale, "seed": used_seed,
                     "check": check, "config": config,
                     "status": "FAIL" if detail else "pass",
                     "detail": detail or ""})

    used_seed = spec.default_seed if seed is None else int(seed)
    try:
        build, run = run_scenario(spec, scale, seed=seed,
                                  collect_trace=True, check=False)
    except Exception as exc:
        row("contract", "-", f"{type(exc).__name__}: {exc}")
        return rows
    problems = check_contract(build, run)
    row("contract", "-", "; ".join(problems) or None)
    if problems:
        # A trace that violates its own contract is not a valid input
        # for the timing checks; report the cell and stop here.
        return rows
    trace = run.result.trace

    for config in configs:
        golden = SystemGoldenChecker(build.programs,
                                     timer_interval=build.timer_interval,
                                     trace=trace)
        suite = ValidationSuite([golden, InvariantChecker()])
        detail: str | None = None
        try:
            OoOCore(machine(config), validator=suite).run(trace)
        except Exception as exc:
            detail = f"{type(exc).__name__}: {exc}"
        if detail is None and not suite.ok:
            first = suite.all_violations[0]
            detail = (f"{len(suite.all_violations)} violation(s); "
                      f"first: {first}")
        if detail is None and golden.digests() != run.digests:
            detail = "golden digests diverge from the functional run"
        row("golden+invariants", config, detail)

    for config in configs:
        try:
            detail = _fastpath_differential(config, trace)
        except Exception as exc:
            detail = f"{type(exc).__name__}: {exc}"
        row("fastpath", config, detail)
    return rows


def verify_corpus(scale: str = "tiny",
                  names: Sequence[str] | None = None,
                  seed: int | None = None,
                  configs: Sequence[str] = CORPUS_CONFIGS,
                  progress=None) -> tuple[Table, bool]:
    """Verify every scenario (or *names*) at *scale*.

    Returns the pass/fail table and an overall ok flag.  *progress*
    (a callable taking one string) gets a line per scenario as cells
    complete.
    """
    table = Table(
        title=f"Scenario corpus verification ({scale})",
        columns=["scenario", "scale", "seed", "check", "config",
                 "status", "detail"],
    )
    ok = True
    for name in (names if names is not None else SCENARIO_NAMES):
        rows = verify_scenario(name, scale, seed=seed, configs=configs)
        failed = sum(1 for r in rows if r["status"] != "pass")
        ok = ok and not failed
        for r in rows:
            table.add_row(r["scenario"], r["scale"], r["seed"],
                          r["check"], r["config"], r["status"],
                          r["detail"])
        if progress is not None:
            verdict = f"{failed} FAILED" if failed else "ok"
            progress(f"{name:>10s} @ {scale}: {len(rows)} checks, "
                     f"{verdict}")
    checks = len(table.rows)
    failed_total = sum(1 for status in table.column("status")
                       if status != "pass")
    table.add_note(f"{checks} checks, {checks - failed_total} passed, "
                   f"{failed_total} failed; configs: "
                   + ", ".join(configs))
    table.add_note("checks: contract (functional run vs reference "
                   "model), golden+invariants (lock-step replay + "
                   "microarchitectural invariants), fastpath "
                   "(byte-identical fast loop)")
    return table, ok
