"""``iostorm`` — an interrupt-driven console I/O storm.

Every process alternates a short compute burst with a ``sys_write`` of
a fixed-byte chunk, under an aggressively short timer interval — the
trace is saturated with trap entries, context save/restore bursts, and
the kernel's byte-by-byte console copy loop.  Each write is atomic
(the kernel runs with interrupts disabled) but the chunk *order* is
schedule-dependent, so the console contract is a byte histogram: each
process writes a byte value unique to it.
"""

from __future__ import annotations

from ..kernel import layout
from .base import (
    LCG_INC,
    LCG_MUL,
    MASK64,
    ExpectedResults,
    MemRegion,
    derive_seed,
    lcg,
)

NAME = "iostorm"
DESCRIPTION = "interrupt-heavy console write storm (kernel copy loop)"
TAGS = ("os-heavy", "interrupt-heavy", "io", "multi-process")
DEFAULT_SEED = 2003

SCALES = {
    "tiny": {"procs": 3, "writes": 5, "chunk": 20, "compute": 30,
             "timer": 300, "max_instructions": 400_000},
    "small": {"procs": 4, "writes": 16, "chunk": 80, "compute": 100,
              "timer": 450, "max_instructions": 2_500_000},
    "medium": {"procs": 6, "writes": 40, "chunk": 160, "compute": 260,
               "timer": 800, "max_instructions": 12_000_000},
}


def _byte_for(slot: int) -> int:
    return 0x61 + slot  # 'a', 'b', ...


def _proc_source(seed: int, slot: int, writes: int, chunk: int,
                 compute: int) -> str:
    return f"""
.equ SYS_EXIT, 1
.equ SYS_WRITE, 2
.data
out: .space 8
buf: .space {chunk}
.text
main:
    la   t0, buf               # fill the chunk with this process's byte
    li   t1, {chunk}
    li   t2, {_byte_for(slot)}
fill:
    sb   t2, 0(t0)
    addi t0, t0, 1
    subi t1, t1, 1
    bnez t1, fill
    li   s4, {derive_seed(seed, slot)}
    li   s5, 0                 # accumulator
    li   s6, {writes}
wloop:
    li   t4, {compute}
burst:
    li   t5, {LCG_MUL}
    mul  s4, s4, t5
    addi s4, s4, {LCG_INC}
    add  s5, s5, s4
    subi t4, t4, 1
    bnez t4, burst
    la   a0, buf
    li   a1, {chunk}
    li   a7, SYS_WRITE
    syscall 0
    subi s6, s6, 1
    bnez s6, wloop
    la   t0, out
    sd   s5, 0(t0)
    li   t5, 0xffff
    and  a0, s5, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def programs(seed: int, procs: int, writes: int, chunk: int, compute: int,
             timer: int, max_instructions: int) -> list[tuple[str, str]]:
    return [(f"iostorm-p{slot}",
             _proc_source(seed, slot, writes, chunk, compute))
            for slot in range(procs)]


def expected(seed: int, procs: int, writes: int, chunk: int, compute: int,
             timer: int, max_instructions: int) -> ExpectedResults:
    exit_codes = []
    regions = []
    counts: dict[int, int] = {}
    for slot in range(procs):
        x = derive_seed(seed, slot)
        acc = 0
        for _ in range(writes * compute):
            x = lcg(x)
            acc = (acc + x) & MASK64
        exit_codes.append(acc & 0xFFFF)
        counts[_byte_for(slot)] = writes * chunk
        data = acc.to_bytes(8, "little") + bytes([_byte_for(slot)]) * chunk
        regions.append(MemRegion.of(f"p{slot}-state",
                                    layout.user_data_base(slot), data))
    return ExpectedResults.counted_console(exit_codes, regions, counts)
