"""``repro.scenarios`` — the OS-activity scenario corpus.

Seeded, parameterized generators of OS-heavy multi-process workloads
(process trees, I/O storms, syscall pipelines, bulk-copy storms,
locality mixes), each shipping a machine-checkable expected-results
contract computed by a pure-Python reference model.  See
``docs/WORKLOADS.md`` for the catalogue and
:mod:`repro.scenarios.verify` for the corpus-wide co-execution
harness.
"""

from __future__ import annotations

from . import copystorm, iostorm, locality, proctree, syspipe
from .base import ExpectedResults, MemRegion, ScenarioSpec
from .runtime import (
    ScenarioBuild,
    ScenarioRun,
    check_contract,
    materialize,
    run_build,
    run_scenario,
)

_MODULES = (proctree, iostorm, syspipe, copystorm, locality)


def _build_registry() -> dict[str, ScenarioSpec]:
    registry: dict[str, ScenarioSpec] = {}
    for module in _MODULES:
        registry[module.NAME] = ScenarioSpec(
            name=module.NAME,
            description=module.DESCRIPTION,
            tags=tuple(module.TAGS),
            default_seed=module.DEFAULT_SEED,
            programs=module.programs,
            expected=module.expected,
            scales={scale: dict(params)
                    for scale, params in module.SCALES.items()},
        )
    return registry


#: All registered scenario families, keyed by name.
SCENARIOS: dict[str, ScenarioSpec] = _build_registry()

#: Presentation order for tables and the corpus CLI.
SCENARIO_NAMES = tuple(SCENARIOS)

#: Scales every scenario declares, smallest first.
SCENARIO_SCALES = ("tiny", "small", "medium")

__all__ = [
    "SCENARIOS",
    "SCENARIO_NAMES",
    "SCENARIO_SCALES",
    "ExpectedResults",
    "MemRegion",
    "ScenarioBuild",
    "ScenarioRun",
    "ScenarioSpec",
    "check_contract",
    "materialize",
    "run_build",
    "run_scenario",
]
