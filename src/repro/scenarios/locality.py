"""``locality`` — seeded synthetic mixes with locality knobs.

Each process walks a private table with a seed-derived profile —
stride, working-set size — accumulating loads and writing a running
checksum back at a shifted index, with a periodic ``sys_yield`` so the
mix multiprograms under the scheduler.  The knobs span the locality
spectrum the paper's techniques are sensitive to: small working sets
that live in the line buffer, large strides that defeat it.
"""

from __future__ import annotations

from ..kernel import layout
from .base import (
    LCG_INC,
    LCG_MUL,
    MASK64,
    ExpectedResults,
    MemRegion,
    derive_seed,
    lcg,
)

NAME = "locality"
DESCRIPTION = "strided walkers with seed-derived locality profiles"
TAGS = ("os-heavy", "synthetic", "locality", "multi-process")
DEFAULT_SEED = 5003

SCALES = {
    "tiny": {"procs": 3, "iters": 220, "wbase": 512, "yield_every": 40,
             "timer": 350, "max_instructions": 400_000},
    "small": {"procs": 4, "iters": 1800, "wbase": 2048, "yield_every": 150,
              "timer": 1500, "max_instructions": 2_500_000},
    "medium": {"procs": 6, "iters": 8000, "wbase": 4096, "yield_every": 400,
               "timer": 4000, "max_instructions": 15_000_000},
}

_OUT_OFF = 0
_TABLE_OFF = 8


def _profile(seed: int, slot: int, wbase: int) -> tuple[int, int]:
    """(stride, working-set bytes) for one process, seed-derived."""
    x = derive_seed(seed, slot, salt=2)
    stride = 8 << (x % 4)              # 8 / 16 / 32 / 64
    wsize = wbase << ((x >> 7) % 2)    # wbase or 2*wbase
    return stride, wsize


def _proc_source(seed: int, slot: int, iters: int, wbase: int,
                 yield_every: int) -> str:
    stride, wsize = _profile(seed, slot, wbase)
    return f"""
.equ SYS_EXIT, 1
.equ SYS_YIELD, 4
.data
out:   .space 8
table: .space {wsize}
.text
main:
    # -- fill the table with LCG dwords --------------------------------
    li   s4, {derive_seed(seed, slot)}
    la   s7, table
    mv   t0, s7
    li   t1, {wsize // 8}
fill:
    li   t5, {LCG_MUL}
    mul  s4, s4, t5
    addi s4, s4, {LCG_INC}
    sd   s4, 0(t0)
    addi t0, t0, 8
    subi t1, t1, 1
    bnez t1, fill
    li   s4, 0                 # walk offset
    li   s5, 0                 # accumulator
    li   s6, {iters}
    li   s8, {wsize - 1}
    li   s3, {yield_every}
walk:
    and  t1, s4, s8
    add  t1, t1, s7
    ld   t2, 0(t1)
    add  s5, s5, t2
    li   t3, {wsize // 2}
    add  t3, s4, t3
    and  t3, t3, s8
    add  t3, t3, s7
    sd   s5, 0(t3)
    addi s4, s4, {stride}
    subi s3, s3, 1
    bnez s3, no_yield
    li   s3, {yield_every}
    li   a7, SYS_YIELD
    syscall 0
no_yield:
    subi s6, s6, 1
    bnez s6, walk
    la   t0, out
    sd   s5, 0(t0)
    li   t5, 0xffff
    and  a0, s5, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def programs(seed: int, procs: int, iters: int, wbase: int,
             yield_every: int, timer: int,
             max_instructions: int) -> list[tuple[str, str]]:
    if wbase & (wbase - 1) or wbase < 128:
        raise ValueError("wbase must be a power of two >= 128")
    return [(f"locality-p{slot}",
             _proc_source(seed, slot, iters, wbase, yield_every))
            for slot in range(procs)]


def expected(seed: int, procs: int, iters: int, wbase: int,
             yield_every: int, timer: int,
             max_instructions: int) -> ExpectedResults:
    exit_codes = []
    regions = []
    for slot in range(procs):
        stride, wsize = _profile(seed, slot, wbase)
        x = derive_seed(seed, slot)
        table = []
        for _ in range(wsize // 8):
            x = lcg(x)
            table.append(x)
        offset = 0
        acc = 0
        mask = wsize - 1
        for _ in range(iters):
            acc = (acc + table[(offset & mask) // 8]) & MASK64
            table[((offset + wsize // 2) & mask) // 8] = acc
            offset += stride
        exit_codes.append(acc & 0xFFFF)
        data = acc.to_bytes(8, "little") + b"".join(
            value.to_bytes(8, "little") for value in table)
        regions.append(MemRegion.of(f"p{slot}-state",
                                    layout.user_data_base(slot), data))
    return ExpectedResults(tuple(exit_codes), tuple(regions))
