"""Building, running, and contract-checking scenario systems.

This module turns a :class:`~repro.scenarios.base.ScenarioSpec` into a
bootable mini-OS system, runs it on the functional interpreter, and
checks the run against the scenario's expected-results contract.  It
deliberately does **not** import the workload suite — trace caching for
scenarios lives in :func:`repro.workloads.suite.build_scenario_trace`,
which layers the two-tier cache on top of :func:`run_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..func.exceptions import SimError
from ..func.interp import Interpreter
from ..isa import Program
from ..kernel import assemble_user, build_system
from ..kernel.image import System, SystemRunResult
from ..kernel.layout import PCB_EXIT, PCB_SIZE
from ..trace.record import TraceRecord
from .base import ExpectedResults, ScenarioSpec, sha256_bytes


@dataclass(frozen=True)
class ScenarioBuild:
    """A fully materialised scenario: programs + contract."""

    name: str
    scale: str
    seed: int
    params: dict
    labels: tuple[str, ...]
    sources: tuple[str, ...]
    programs: tuple[Program, ...]
    expected: ExpectedResults

    @property
    def timer_interval(self) -> int:
        return int(self.params["timer"])

    @property
    def max_instructions(self) -> int:
        return int(self.params["max_instructions"])


@dataclass
class ScenarioRun:
    """Outcome of one functional scenario run."""

    result: SystemRunResult
    system: System
    #: Architectural end-state digests of the functional run — the
    #: values a lock-step golden replay of the trace must reproduce.
    digests: dict[str, str]


def materialize(spec: ScenarioSpec, scale: str, seed: int | None = None,
                overrides: dict | None = None) -> ScenarioBuild:
    """Generate and assemble a scenario's programs and contract."""
    seed = spec.default_seed if seed is None else int(seed)
    params = spec.params(scale)
    if overrides:
        unknown = set(overrides) - set(params)
        if unknown:
            raise ValueError(f"scenario {spec.name!r} has no parameter(s) "
                             f"{sorted(unknown)}")
        params.update(overrides)
    generated = spec.programs(seed=seed, **params)
    labels = tuple(label for label, _ in generated)
    sources = tuple(source for _, source in generated)
    programs = tuple(
        assemble_user(source, slot=slot, source_name=f"<{label}>")
        for slot, (label, source) in enumerate(generated))
    expected = spec.expected(seed=seed, **params)
    if len(expected.exit_codes) != len(programs):
        raise SimError(
            f"scenario {spec.name!r}: reference model predicts "
            f"{len(expected.exit_codes)} exit codes for {len(programs)} "
            f"processes")
    return ScenarioBuild(name=spec.name, scale=scale, seed=seed,
                         params=params, labels=labels, sources=sources,
                         programs=programs, expected=expected)


def run_build(build: ScenarioBuild,
              collect_trace: bool = False) -> ScenarioRun:
    """Boot and run a materialised scenario on the functional
    interpreter; returns the run plus the live :class:`System` (for
    memory-region checks) and the end-state digests."""
    system = build_system(list(build.programs), build.timer_interval)
    trace: list[TraceRecord] = []
    sink = trace.append if collect_trace else None
    interp = Interpreter(system.memory, entry=system.entry,
                         trap_vector=system.trap_vector, trace_sink=sink)
    exit_code = interp.run(build.max_instructions)
    table = system.kernel.symbols["proctable"]
    exit_codes = [
        int(system.memory.load(table + slot * PCB_SIZE + PCB_EXIT, 8))
        for slot in range(len(build.programs))
    ]
    result = SystemRunResult(
        exit_code=exit_code,
        console=system.console.text(),
        retired=interp.retired,
        kernel_retired=interp.kernel_retired,
        loads=interp.loads,
        stores=interp.stores,
        traps_taken=interp.traps_taken,
        timer_interrupts=interp.timer_interrupts,
        trace=trace,
        process_exit_codes=exit_codes,
    )
    digests = {"registers": interp.state.digest(),
               "memory": system.memory.content_digest()}
    return ScenarioRun(result=result, system=system, digests=digests)


def check_contract(build: ScenarioBuild, run: ScenarioRun) -> list[str]:
    """Compare a functional run against the scenario contract.

    Returns a list of human-readable violations (empty == pass).
    """
    expected = build.expected
    problems: list[str] = []
    actual_exits = tuple(run.result.process_exit_codes)
    if actual_exits != expected.exit_codes:
        problems.append(
            f"exit codes {list(actual_exits)} != expected "
            f"{list(expected.exit_codes)}")
    console = bytes(run.system.console.output)
    if expected.console_sha256 is not None:
        if len(console) != expected.console_length:
            problems.append(
                f"console length {len(console)} != expected "
                f"{expected.console_length}")
        elif sha256_bytes(console) != expected.console_sha256:
            problems.append("console bytes diverge from the reference "
                            "(length matches, content does not)")
    if expected.console_counts is not None:
        counts: dict[int, int] = {}
        for value in console:
            counts[value] = counts.get(value, 0) + 1
        if counts != expected.console_counts:
            problems.append(
                f"console byte histogram {_fmt_counts(counts)} != "
                f"expected {_fmt_counts(expected.console_counts)}")
    for region in expected.regions:
        data = run.system.memory.read_bytes(region.address, region.length)
        if sha256_bytes(data) != region.sha256:
            problems.append(
                f"memory region {region.name!r} "
                f"({region.address:#x}+{region.length}B) diverges from "
                f"the reference model")
    return problems


def _fmt_counts(counts: dict[int, int]) -> str:
    items = sorted(counts.items())
    body = ", ".join(f"{value:#04x}*{count}" for value, count in items[:8])
    if len(items) > 8:
        body += f", ... ({len(items)} byte values)"
    return "{" + body + "}"


def run_scenario(spec: ScenarioSpec, scale: str, seed: int | None = None,
                 overrides: dict | None = None,
                 collect_trace: bool = False,
                 check: bool = True) -> tuple[ScenarioBuild, ScenarioRun]:
    """Materialise, run, and (by default) contract-check a scenario.

    Raises :class:`SimError` on contract violations when *check* is
    set — a scenario whose reference model disagrees with its own
    execution must never produce a trace.
    """
    build = materialize(spec, scale, seed, overrides)
    run = run_build(build, collect_trace=collect_trace)
    if check:
        problems = check_contract(build, run)
        if problems:
            raise SimError(
                f"scenario {spec.name!r} ({scale}, seed {build.seed}) "
                f"violated its contract: " + "; ".join(problems))
    return build, run
