"""``copystorm`` — kernel-style bulk-copy / copy-on-write storms.

Every process ping-pongs a buffer between two halves of its data
window: copy (dword loop), then mutate a few pseudo-random bytes —
the copy-on-write pattern where a page is duplicated and then lightly
dirtied — and repeat.  Process 0 additionally ``sys_write``s a slice
of the fresh copy every round, driving the kernel's byte-copy console
path; it is the only console writer, so the console contract is exact
(raw bytes, not text).  Exit codes and memory regions pin the final
buffer contents.
"""

from __future__ import annotations

from ..kernel import layout
from .base import (
    LCG_INC,
    LCG_MUL,
    MASK64,
    ExpectedResults,
    MemRegion,
    derive_seed,
    lcg,
)

NAME = "copystorm"
DESCRIPTION = "bulk memcpy + copy-on-write dirtying storm"
TAGS = ("os-heavy", "store-heavy", "copy", "multi-process")
DEFAULT_SEED = 4001

SCALES = {
    "tiny": {"procs": 2, "bytes": 256, "rounds": 4, "mutates": 6,
             "slice": 32, "timer": 400, "max_instructions": 500_000},
    "small": {"procs": 3, "bytes": 1024, "rounds": 10, "mutates": 12,
              "slice": 64, "timer": 1500, "max_instructions": 3_000_000},
    "medium": {"procs": 4, "bytes": 4096, "rounds": 20, "mutates": 24,
               "slice": 128, "timer": 4000, "max_instructions": 20_000_000},
}

_OUT_OFF = 0
_BUF_A_OFF = 8


def _buf_b_off(nbytes: int) -> int:
    return _BUF_A_OFF + nbytes


def _proc_source(seed: int, slot: int, nbytes: int, rounds: int,
                 mutates: int, slice_len: int) -> str:
    write_block = ""
    if slot == 0:
        write_block = f"""
    mv   a0, s1                # slice of the fresh copy
    li   a1, {slice_len}
    li   a7, SYS_WRITE
    syscall 0"""
    return f"""
.equ SYS_EXIT, 1
.equ SYS_WRITE, 2
.data
out:   .space 8
buf_a: .space {nbytes}
buf_b: .space {nbytes}
.text
main:
    # -- fill buf_a with LCG dwords ------------------------------------
    li   s4, {derive_seed(seed, slot)}
    la   t0, buf_a
    li   t1, {nbytes // 8}
fill:
    li   t5, {LCG_MUL}
    mul  s4, s4, t5
    addi s4, s4, {LCG_INC}
    sd   s4, 0(t0)
    addi t0, t0, 8
    subi t1, t1, 1
    bnez t1, fill
    la   s0, buf_a             # current source
    la   s1, buf_b             # current destination
    li   s6, {rounds}
round:
    # -- bulk copy source -> destination (dword loop) ------------------
    mv   t1, s0
    mv   t2, s1
    li   t3, {nbytes // 8}
copy:
    ld   t4, 0(t1)
    sd   t4, 0(t2)
    addi t1, t1, 8
    addi t2, t2, 8
    subi t3, t3, 1
    bnez t3, copy
    # -- dirty a few pseudo-random bytes of the copy -------------------
    li   t3, {mutates}
mutate:
    li   t5, {LCG_MUL}
    mul  s4, s4, t5
    addi s4, s4, {LCG_INC}
    srli t4, s4, 13
    andi t4, t4, {nbytes - 1}
    add  t4, t4, s1
    lbu  t5, 0(t4)
    xori t5, t5, 0x5a
    sb   t5, 0(t4)
    subi t3, t3, 1
    bnez t3, mutate{write_block}
    # -- ping-pong: the dirtied copy becomes the next source -----------
    mv   t1, s0
    mv   s0, s1
    mv   s1, t1
    subi s6, s6, 1
    bnez s6, round
    # -- checksum the final buffer -------------------------------------
    li   s5, 0
    mv   t1, s0
    li   t3, {nbytes // 8}
sum:
    ld   t4, 0(t1)
    add  s5, s5, t4
    addi t1, t1, 8
    subi t3, t3, 1
    bnez t3, sum
    la   t0, out
    sd   s5, 0(t0)
    li   t5, 0xffff
    and  a0, s5, t5
    li   a7, SYS_EXIT
    syscall 0
"""


def programs(seed: int, procs: int, bytes: int, rounds: int, mutates: int,
             slice: int, timer: int,
             max_instructions: int) -> list[tuple[str, str]]:
    nbytes = bytes
    if nbytes & (nbytes - 1) or nbytes < 64:
        raise ValueError("bytes must be a power of two >= 64")
    return [(f"copystorm-p{slot}",
             _proc_source(seed, slot, nbytes, rounds, mutates, slice))
            for slot in range(procs)]


def _reference_proc(seed: int, slot: int, nbytes: int, rounds: int,
                    mutates: int, slice_len: int,
                    ) -> tuple[bytes, bytes, int, bytes]:
    """Mirror one process: returns (buf_a, buf_b, checksum, console)."""
    x = derive_seed(seed, slot)
    buf_a = bytearray()
    for _ in range(nbytes // 8):
        x = lcg(x)
        buf_a += x.to_bytes(8, "little")
    buf_b = bytearray(nbytes)
    src, dst = buf_a, buf_b
    console = bytearray()
    for _ in range(rounds):
        dst[:] = src
        for _ in range(mutates):
            x = lcg(x)
            index = (x >> 13) & (nbytes - 1)
            dst[index] ^= 0x5A
        if slot == 0:
            console += dst[:slice_len]
        src, dst = dst, src
    checksum = 0
    for offset in range(0, nbytes, 8):
        checksum = (checksum
                    + int.from_bytes(src[offset:offset + 8], "little")) \
            & MASK64
    return bytes(buf_a), bytes(buf_b), checksum, bytes(console)


def expected(seed: int, procs: int, bytes: int, rounds: int, mutates: int,
             slice: int, timer: int,
             max_instructions: int) -> ExpectedResults:
    nbytes = bytes
    exit_codes = []
    regions = []
    console = b""
    for slot in range(procs):
        buf_a, buf_b, checksum, chunk = _reference_proc(
            seed, slot, nbytes, rounds, mutates, slice)
        if slot == 0:
            console = chunk
        exit_codes.append(checksum & 0xFFFF)
        data = checksum.to_bytes(8, "little") + buf_a + buf_b
        regions.append(MemRegion.of(f"p{slot}-state",
                                    layout.user_data_base(slot), data))
    return ExpectedResults.exact_console(exit_codes, regions, console)
