"""Scenario contracts: seeded OS-heavy workloads with expected results.

A *scenario* is a seeded, parameterized generator of a multi-process
workload that runs under the mini-OS (:mod:`repro.kernel`).  Unlike the
single-program workloads in :mod:`repro.workloads`, a scenario composes
several generated programs — process trees, I/O storms, syscall
pipelines — and ships a machine-checkable **expected-results contract**
computed by a pure-Python reference model that never touches the
functional interpreter:

* the per-process exit codes,
* the exact console byte stream (or, for scenarios where several
  processes interleave atomic writes, a byte histogram — each
  ``sys_write`` is atomic because the kernel runs with interrupts
  disabled, but the chunk *order* depends on scheduling),
* named memory regions with the SHA-256 of their expected end-of-run
  bytes.

The contract is what lets :mod:`repro.scenarios.verify` co-execute the
timing core against the reference: a timing run that commits the golden
retirement stream must land on exactly these registers and bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

#: 64-bit wrap-around mask shared by the asm generators and their
#: Python reference models.
MASK64 = (1 << 64) - 1

#: The LCG used by every scenario generator (fits in 35 bits so ``li``
#: stays cheap; same constants as java.util.Random's multiplier).
LCG_MUL = 25214903917
LCG_INC = 11


def lcg(x: int) -> int:
    """One step of the shared generator LCG (64-bit wrap)."""
    return (x * LCG_MUL + LCG_INC) & MASK64


def derive_seed(seed: int, slot: int, salt: int = 0) -> int:
    """A per-process 30-bit seed derived from the scenario seed.

    Kept below 31 bits so ``li`` needs no long-constant expansion and
    the assembly generators can embed it as an immediate.
    """
    x = (seed * 2654435761 + slot * 40503 + salt * 7919 + 1) & MASK64
    x = lcg(lcg(x))
    return (x >> 17) & 0x3FFF_FFFF or 1


def sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class MemRegion:
    """Expected end-of-run contents of one physical memory range."""

    name: str
    address: int
    length: int
    sha256: str

    @staticmethod
    def of(name: str, address: int, data: bytes) -> "MemRegion":
        return MemRegion(name, address, len(data), sha256_bytes(data))


@dataclass(frozen=True)
class ExpectedResults:
    """The machine-checkable contract a scenario run must satisfy.

    ``console_sha256``/``console_length`` pin the exact console byte
    stream; ``console_counts`` instead pins the per-byte histogram for
    scenarios whose atomic write chunks interleave in schedule order.
    Exactly one of the two console forms is set (or neither, for
    silent scenarios).
    """

    exit_codes: tuple[int, ...]
    regions: tuple[MemRegion, ...] = ()
    console_sha256: str | None = None
    console_length: int | None = None
    console_counts: dict[int, int] | None = None

    @staticmethod
    def exact_console(exit_codes, regions, console: bytes,
                      ) -> "ExpectedResults":
        return ExpectedResults(tuple(exit_codes), tuple(regions),
                               console_sha256=sha256_bytes(console),
                               console_length=len(console))

    @staticmethod
    def counted_console(exit_codes, regions, counts: dict[int, int],
                        ) -> "ExpectedResults":
        return ExpectedResults(tuple(exit_codes), tuple(regions),
                               console_counts=dict(counts))

    def digest(self) -> str:
        """A stable digest of the whole contract (for reports)."""
        hasher = hashlib.sha256()
        hasher.update(repr(self.exit_codes).encode())
        for region in self.regions:
            hasher.update(
                f"{region.name}@{region.address:#x}+{region.length}:"
                f"{region.sha256}".encode())
        hasher.update(repr(self.console_sha256).encode())
        hasher.update(repr(self.console_length).encode())
        if self.console_counts is not None:
            hasher.update(repr(sorted(self.console_counts.items())).encode())
        return hasher.hexdigest()[:12]


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario family.

    ``programs(seed=..., **params)`` returns ``[(label, source), ...]``
    — one generated assembly program per process slot, in slot order.
    ``expected(seed=..., **params)`` returns the
    :class:`ExpectedResults` contract from the pure-Python reference
    model.  Every scale's params include ``timer`` (the preemption
    interval) and ``max_instructions`` (the functional run budget).
    """

    name: str
    description: str
    tags: tuple[str, ...]
    default_seed: int
    programs: Callable[..., list[tuple[str, str]]]
    expected: Callable[..., ExpectedResults]
    #: Parameter presets, smallest first: tiny / small / medium.
    scales: dict[str, dict[str, int]] = field(default_factory=dict)

    def params(self, scale: str) -> dict[str, int]:
        try:
            return dict(self.scales[scale])
        except KeyError:
            raise ValueError(
                f"scenario {self.name!r} has no scale {scale!r}; "
                f"choose from {sorted(self.scales)}") from None
