"""``syspipe`` — a syscall-dense producer/consumer pipeline.

Processes form a chain: stage 0 generates values, every middle stage
transforms them, the final stage folds them into a checksum.  Stages
hand values through single-producer/single-consumer ring buffers in
the upstream stage's data window (head written only by the producer,
tail only by the consumer), and every full/empty wait is a
``sys_yield`` — with small rings the trace is dominated by syscall
traps and scheduler round-trips, the paper's "syscall-dense pipeline"
stream.  A zero value is the end-of-stream sentinel; every stage
forwards it before exiting with its own running checksum.
"""

from __future__ import annotations

from ..kernel import layout
from .base import (
    LCG_INC,
    LCG_MUL,
    MASK64,
    ExpectedResults,
    MemRegion,
    derive_seed,
    lcg,
)

NAME = "syspipe"
DESCRIPTION = "producer/consumer ring pipeline (syscall-dense)"
TAGS = ("os-heavy", "syscall-dense", "pipeline", "multi-process")
DEFAULT_SEED = 3001

SCALES = {
    "tiny": {"stages": 3, "items": 30, "ring": 4,
             "timer": 300, "max_instructions": 500_000},
    "small": {"stages": 4, "items": 180, "ring": 8,
              "timer": 1200, "max_instructions": 3_000_000},
    "medium": {"stages": 5, "items": 700, "ring": 8,
               "timer": 3000, "max_instructions": 15_000_000},
}

#: Per-stage data layout: checksum, then the ring this stage produces.
_OUT_OFF = 0
_HEAD_OFF = 8
_TAIL_OFF = 16
_RING_OFF = 24


def _stage_const(seed: int, stage: int) -> int:
    return derive_seed(seed, stage, salt=1) & 0xFFFF


def _transform(value: int, const: int) -> int:
    return (((value ^ (value >> 9)) + const) & 0x3FFF_FFFF) | 1


def _push_block(prefix: str, ring: int) -> str:
    """Push t2 into the ring addressed by s7/s8/s3 (head/tail/base)."""
    return f"""
{prefix}_wait:
    ld   t3, 0(s7)
    ld   t4, 0(s8)
    sub  t5, t3, t4
    li   t6, {ring}
    blt  t5, t6, {prefix}_ok
    li   a7, SYS_YIELD
    syscall 0
    j    {prefix}_wait
{prefix}_ok:
    andi t4, t3, {ring - 1}
    slli t4, t4, 3
    add  t4, t4, s3
    sd   t2, 0(t4)
    addi t3, t3, 1
    sd   t3, 0(s7)"""


def _pop_block(ring: int) -> str:
    """Pop the ring addressed by s4/s5/s6 (head/tail/base) into t2."""
    return f"""
pop_wait:
    ld   t3, 0(s4)
    ld   t4, 0(s5)
    bne  t3, t4, pop_ok
    li   a7, SYS_YIELD
    syscall 0
    j    pop_wait
pop_ok:
    andi t5, t4, {ring - 1}
    slli t5, t5, 3
    add  t5, t5, s6
    ld   t2, 0(t5)
    addi t4, t4, 1
    sd   t4, 0(s5)"""


_EXIT_BLOCK = """
    la   t0, out
    sd   s2, 0(t0)
    li   t5, 0xffff
    and  a0, s2, t5
    li   a7, SYS_EXIT
    syscall 0"""


def _in_equs(slot: int) -> str:
    base = layout.user_data_base(slot - 1)
    return (f".equ HEAD_IN, {base + _HEAD_OFF}\n"
            f".equ TAIL_IN, {base + _TAIL_OFF}\n"
            f".equ RING_IN, {base + _RING_OFF}")


def _out_equs(slot: int) -> str:
    base = layout.user_data_base(slot)
    return (f".equ HEAD_OUT, {base + _HEAD_OFF}\n"
            f".equ TAIL_OUT, {base + _TAIL_OFF}\n"
            f".equ RING_OUT, {base + _RING_OFF}")


_DATA = f"""
.data
out:  .space 8
head: .space 8
tail: .space 8
"""


def _producer_source(seed: int, items: int, ring: int) -> str:
    return f"""
.equ SYS_EXIT, 1
.equ SYS_YIELD, 4
{_out_equs(0)}
{_DATA}ringbuf: .space {8 * ring}
.text
main:
    li   s4, {derive_seed(seed, 0)}
    li   s2, 0
    li   s0, {items}
    li   s7, HEAD_OUT
    li   s8, TAIL_OUT
    li   s3, RING_OUT
prod_loop:
    beqz s0, send_stop
    li   t5, {LCG_MUL}
    mul  s4, s4, t5
    addi s4, s4, {LCG_INC}
    li   t5, 0x3fffffff
    and  t2, s4, t5
    ori  t2, t2, 1
    li   t5, 31
    mul  s2, s2, t5
    add  s2, s2, t2
{_push_block('push', ring)}
    subi s0, s0, 1
    j    prod_loop
send_stop:
    li   t2, 0
{_push_block('stop', ring)}
{_EXIT_BLOCK}
"""


def _middle_source(seed: int, slot: int, ring: int) -> str:
    return f"""
.equ SYS_EXIT, 1
.equ SYS_YIELD, 4
{_in_equs(slot)}
{_out_equs(slot)}
{_DATA}ringbuf: .space {8 * ring}
.text
main:
    li   s2, 0
    li   s4, HEAD_IN
    li   s5, TAIL_IN
    li   s6, RING_IN
    li   s7, HEAD_OUT
    li   s8, TAIL_OUT
    li   s3, RING_OUT
loop:
{_pop_block(ring)}
    beqz t2, forward_stop
    srli t5, t2, 9
    xor  t2, t2, t5
    li   t5, {_stage_const(seed, slot)}
    add  t2, t2, t5
    li   t5, 0x3fffffff
    and  t2, t2, t5
    ori  t2, t2, 1
    li   t5, 31
    mul  s2, s2, t5
    add  s2, s2, t2
{_push_block('push', ring)}
    j    loop
forward_stop:
{_push_block('stop', ring)}
{_EXIT_BLOCK}
"""


def _consumer_source(slot: int, ring: int) -> str:
    return f"""
.equ SYS_EXIT, 1
.equ SYS_YIELD, 4
{_in_equs(slot)}
{_DATA}
.text
main:
    li   s2, 0
    li   s4, HEAD_IN
    li   s5, TAIL_IN
    li   s6, RING_IN
loop:
{_pop_block(ring)}
    beqz t2, done
    li   t5, 31
    mul  s2, s2, t5
    add  s2, s2, t2
    j    loop
done:
{_EXIT_BLOCK}
"""


def programs(seed: int, stages: int, items: int, ring: int,
             timer: int, max_instructions: int) -> list[tuple[str, str]]:
    if stages < 2:
        raise ValueError("syspipe needs at least two stages")
    if ring & (ring - 1):
        raise ValueError("ring capacity must be a power of two")
    out = [("syspipe-prod", _producer_source(seed, items, ring))]
    for slot in range(1, stages - 1):
        out.append((f"syspipe-xform{slot}",
                    _middle_source(seed, slot, ring)))
    out.append(("syspipe-sink", _consumer_source(stages - 1, ring)))
    return out


def expected(seed: int, stages: int, items: int, ring: int,
             timer: int, max_instructions: int) -> ExpectedResults:
    def fold(values) -> int:
        acc = 0
        for value in values:
            acc = (acc * 31 + value) & MASK64
        return acc

    x = derive_seed(seed, 0)
    stream = []
    for _ in range(items):
        x = lcg(x)
        stream.append((x & 0x3FFF_FFFF) | 1)
    accs = [fold(stream)]
    for slot in range(1, stages - 1):
        const = _stage_const(seed, slot)
        stream = [_transform(value, const) for value in stream]
        accs.append(fold(stream))
    accs.append(fold(stream))  # the sink folds the final stream
    regions = []
    for slot, acc in enumerate(accs):
        produced = items + 1 if slot < stages - 1 else 0
        state = (acc.to_bytes(8, "little")
                 + produced.to_bytes(8, "little")     # head
                 + produced.to_bytes(8, "little"))    # tail (drained)
        regions.append(MemRegion.of(f"stage{slot}-state",
                                    layout.user_data_base(slot), state))
    exit_codes = [acc & 0xFFFF for acc in accs]
    return ExpectedResults(tuple(exit_codes), tuple(regions))
