"""Dynamic instruction trace records.

The functional simulator emits one :class:`TraceRecord` per retired
instruction; the timing core consumes them.  Records are deliberately
plain and slotted — a simulation produces hundreds of thousands of
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import Instruction, OpClass


@dataclass(slots=True)
class TraceRecord:
    """One retired instruction on the correct path."""

    pc: int
    opclass: OpClass
    dest: int | None = None              # unified register index or None
    sources: tuple[int, ...] = ()
    mem_addr: int = 0                    # effective address (mem ops only)
    mem_size: int = 0                    # access size in bytes; 0 = not mem
    is_load: bool = False
    is_store: bool = False
    is_control: bool = False
    taken: bool = False                  # control: was the transfer taken
    next_pc: int = 0                     # address of the next retired instr
    kernel: bool = False                 # executed in kernel mode
    instr: Instruction | None = None     # optional back-reference
    # Timing hints persisted by ``trace.io`` so that instruction-less
    # (deserialised) records drive the timing core exactly like the
    # original instruction-bearing ones.  The defaults mean "unknown":
    # the core falls back to its heuristics, which is the historical
    # behaviour for synthetic traces.
    serializes: bool = False             # SYSCALL/ERET pipeline flush
    decode_redirect: bool = False        # J/JAL: target known at decode
    store_addr_count: int = -1           # sources[:n] address, rest data

    @property
    def is_mem(self) -> bool:
        return self.mem_size > 0

    @property
    def line_address(self) -> int:
        """Effective address, for logging."""
        return self.mem_addr
