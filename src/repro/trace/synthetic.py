"""Parameterised synthetic reference streams.

Where the assembly workloads give realism, the synthetic generator
gives *controlled sweeps*: memory density, load/store split, and —
crucially for the locality-sweep ablation (A3) — spatial locality.
Generated streams are valid timing-core inputs: plausible register
dependences, loop-shaped control flow with real taken/not-taken
behaviour, and effective addresses drawn from a tunable access model.

The instruction stream walks a loop body of ``code_footprint``
instructions: the last slot is an always-taken back edge, and interior
branches jump backwards short distances — so the pc stream looks like
compiled loop code, stays predictable, and never produces the
trap-style redirects the timing core reserves for the OS.

Determinism: every stream is fully determined by its
:class:`SyntheticConfig` (including the seed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..isa import INSTRUCTION_BYTES, OpClass
from .record import TraceRecord

#: Synthetic code lives here (distinct from real workload text).
TEXT_BASE = 0x0001_0000
#: Synthetic data region base.
DATA_BASE = 0x0100_0000


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic stream generator."""

    instructions: int = 20_000
    seed: int = 1
    #: Fraction of instructions that are loads / stores.
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    #: Fraction that are conditional branches (rest become ALU ops).
    branch_fraction: float = 0.10
    #: Probability an interior branch is taken.  The default is low so
    #: branches are well-predicted and the stream isolates port effects;
    #: raise it to study mispredict-dominated streams.
    taken_fraction: float = 0.05
    #: Probability a memory access continues sequentially from the
    #: previous one (next 8-byte word) instead of jumping to a random
    #: spot in the working set.  1.0 = streaming, 0.0 = random.
    spatial_locality: float = 0.7
    #: Working set size in bytes.  The default fits in the L1 so the
    #: stream stresses port *bandwidth* rather than miss latency.
    working_set: int = 16 * 1024
    #: Loop body length in instructions; small values give an
    #: icache-resident, well-predicted instruction stream.
    code_footprint: int = 256

    def __post_init__(self) -> None:
        fractions = (self.load_fraction, self.store_fraction,
                     self.branch_fraction)
        if any(f < 0 for f in fractions) or sum(fractions) > 1.0:
            raise ValueError("instruction-mix fractions must be >= 0 and "
                             "sum to at most 1")
        if not 0.0 <= self.spatial_locality <= 1.0:
            raise ValueError("spatial_locality must be within [0, 1]")
        if self.instructions < 1:
            raise ValueError("need at least one instruction")
        if self.working_set < 64:
            raise ValueError("working set too small")
        if self.code_footprint < 8:
            raise ValueError("code footprint too small")


def _pc_of(index: int) -> int:
    return TEXT_BASE + index * INSTRUCTION_BYTES


def generate(config: SyntheticConfig) -> list[TraceRecord]:
    """Generate a synthetic dynamic trace."""
    rng = random.Random(config.seed)
    records: list[TraceRecord] = []
    # Registers 5..27 form a rotating pool of producers; this yields a
    # dependence density similar to compiled code without modelling an
    # actual program.
    pool = list(range(5, 28))
    last_addr = DATA_BASE
    footprint = config.code_footprint
    last_slot = footprint - 1
    working_set = config.working_set & ~7
    load_hi = config.load_fraction
    store_hi = load_hi + config.store_fraction
    branch_hi = store_hi + config.branch_fraction
    index = 0
    for i in range(config.instructions):
        pc = _pc_of(index)
        dest = pool[i % len(pool)]
        src_a = pool[(i * 7 + 3) % len(pool)]
        src_b = pool[(i * 5 + 11) % len(pool)]
        if index == last_slot:
            # Loop back edge: always taken, to the top of the body.
            index = 0
            records.append(TraceRecord(
                pc=pc, opclass=OpClass.BRANCH, sources=(src_a,),
                is_control=True, taken=True, next_pc=_pc_of(index)))
            continue
        draw = rng.random()
        if draw < store_hi:
            if rng.random() < config.spatial_locality:
                offset = (last_addr - DATA_BASE + 8) % working_set
            else:
                offset = rng.randrange(working_set) & ~7
            addr = DATA_BASE + offset
            last_addr = addr
            is_load = draw < load_hi
            records.append(TraceRecord(
                pc=pc,
                opclass=OpClass.LOAD if is_load else OpClass.STORE,
                dest=dest if is_load else None,
                sources=(src_a,),
                mem_addr=addr,
                mem_size=8,
                is_load=is_load,
                is_store=not is_load,
                next_pc=_pc_of(index + 1),
            ))
            index += 1
        elif draw < branch_hi:
            taken = rng.random() < config.taken_fraction
            if taken:
                target_index = max(0, index - 4 - (i % 12))
            else:
                target_index = index + 1
            records.append(TraceRecord(
                pc=pc,
                opclass=OpClass.BRANCH,
                sources=(src_a, src_b),
                is_control=True,
                taken=taken,
                next_pc=_pc_of(target_index),
            ))
            index = target_index
        else:
            records.append(TraceRecord(
                pc=pc,
                opclass=OpClass.ALU,
                dest=dest,
                sources=(src_a, src_b),
                next_pc=_pc_of(index + 1),
            ))
            index += 1
    return records
