"""Trace serialisation: save and load dynamic traces as ``.npz`` files.

Functional simulation is the slow half of a study; persisting traces
lets a parameter sweep rerun the timing core alone.  The format is a
columnar numpy archive — compact and fast to load.  Instruction
back-references are not persisted: reloaded traces drive the timing
core through the instruction-less code paths (positional store-operand
split, redirect-based serialisation detection).
"""

from __future__ import annotations

import os

import numpy as np

from ..isa import OpClass
from .record import TraceRecord

_OPCLASS_IDS = {opclass: idx for idx, opclass in enumerate(OpClass)}
_OPCLASS_FROM_ID = {idx: opclass for opclass, idx in _OPCLASS_IDS.items()}

_NO_DEST = 255
_MAX_SOURCES = 2

FORMAT_VERSION = 1


def save_trace(path: str | os.PathLike, trace: list[TraceRecord]) -> None:
    """Write *trace* to *path* (``.npz``)."""
    n = len(trace)
    pc = np.empty(n, dtype=np.uint64)
    opclass = np.empty(n, dtype=np.uint8)
    dest = np.empty(n, dtype=np.uint8)
    src = np.zeros((n, _MAX_SOURCES), dtype=np.uint8)
    nsrc = np.empty(n, dtype=np.uint8)
    mem_addr = np.empty(n, dtype=np.uint64)
    mem_size = np.empty(n, dtype=np.uint8)
    flags = np.empty(n, dtype=np.uint8)
    next_pc = np.empty(n, dtype=np.uint64)
    for i, record in enumerate(trace):
        pc[i] = record.pc
        opclass[i] = _OPCLASS_IDS[record.opclass]
        dest[i] = _NO_DEST if record.dest is None else record.dest
        sources = record.sources[:_MAX_SOURCES]
        nsrc[i] = len(sources)
        for j, reg in enumerate(sources):
            src[i, j] = reg
        mem_addr[i] = record.mem_addr
        mem_size[i] = record.mem_size
        flags[i] = (record.is_load | (record.is_store << 1)
                    | (record.is_control << 2) | (record.taken << 3)
                    | (record.kernel << 4))
        next_pc[i] = record.next_pc
    np.savez_compressed(
        path, version=np.array([FORMAT_VERSION]), pc=pc, opclass=opclass,
        dest=dest, src=src, nsrc=nsrc, mem_addr=mem_addr, mem_size=mem_size,
        flags=flags, next_pc=next_pc)


def load_trace(path: str | os.PathLike) -> list[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        version = int(archive["version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        pc = archive["pc"]
        opclass = archive["opclass"]
        dest = archive["dest"]
        src = archive["src"]
        nsrc = archive["nsrc"]
        mem_addr = archive["mem_addr"]
        mem_size = archive["mem_size"]
        flags = archive["flags"]
        next_pc = archive["next_pc"]
    trace: list[TraceRecord] = []
    for i in range(len(pc)):
        flag = int(flags[i])
        trace.append(TraceRecord(
            pc=int(pc[i]),
            opclass=_OPCLASS_FROM_ID[int(opclass[i])],
            dest=None if dest[i] == _NO_DEST else int(dest[i]),
            sources=tuple(int(src[i, j]) for j in range(int(nsrc[i]))),
            mem_addr=int(mem_addr[i]),
            mem_size=int(mem_size[i]),
            is_load=bool(flag & 1),
            is_store=bool(flag & 2),
            is_control=bool(flag & 4),
            taken=bool(flag & 8),
            kernel=bool(flag & 16),
            next_pc=int(next_pc[i]),
        ))
    return trace
