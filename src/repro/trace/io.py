"""Trace serialisation: save and load dynamic traces as ``.npz`` files.

Functional simulation is the slow half of a study; persisting traces
lets a parameter sweep rerun the timing core alone.  The format is a
columnar numpy archive — compact and fast to load.  Instruction
back-references are not persisted; instead, format v2 persists the
three *timing hints* the core would otherwise derive from them (the
store address/data operand split, SYSCALL/ERET serialisation, and
J/JAL decode redirects), so a reloaded trace times **identically** to
the fresh instruction-bearing one.  Bump :data:`FORMAT_VERSION` on any
change that can alter timing — the on-disk trace cache keys on it.
"""

from __future__ import annotations

import os

import numpy as np

from ..isa import Bank, OpClass, Opcode
from .record import TraceRecord

_OPCLASS_IDS = {opclass: idx for idx, opclass in enumerate(OpClass)}
_OPCLASS_FROM_ID = {idx: opclass for opclass, idx in _OPCLASS_IDS.items()}

_NO_DEST = 255
_MAX_SOURCES = 2
#: ``store_addr_count`` sentinel for "unknown" (use the positional
#: heuristic, as for synthetic traces).
_NO_SPLIT = 255

#: v2: store operand split + serialise/decode-redirect flag bits.
FORMAT_VERSION = 2

_SERIALIZING_OPCODES = (Opcode.SYSCALL, Opcode.ERET)
_DECODE_REDIRECT_OPCODES = (Opcode.J, Opcode.JAL)


def _store_operands(record: TraceRecord) -> tuple[tuple[int, ...], int]:
    """The (sources, addr_count) pair that reproduces the dependence
    wiring the timing core derives from the instruction back-reference
    (see ``OoOCore._wire_dependences``)."""
    instr = record.instr
    if instr is None:
        # Already instruction-less: keep whatever split the record
        # carries (round-trips loaded traces, leaves synthetic ones on
        # the positional heuristic).
        count = record.store_addr_count
        return record.sources[:_MAX_SOURCES], \
            count if count >= 0 else _NO_SPLIT
    regs: list[int] = []
    count = 0
    if instr.rs1 != 0:
        regs.append(instr.rs1)
        count = 1
    if not (instr.info.rs2_bank is Bank.INT and instr.rs2 == 0):
        regs.append(instr.rs2)
    return tuple(regs), count


def _hint_flags(record: TraceRecord) -> int:
    """Flag bits 5/6: the serialisation/decode-redirect timing hints."""
    instr = record.instr
    if instr is None:
        serializes = record.serializes
        redirect = record.decode_redirect
    else:
        serializes = instr.opcode in _SERIALIZING_OPCODES
        redirect = instr.opcode in _DECODE_REDIRECT_OPCODES
    return (serializes << 5) | (redirect << 6)


def save_trace(path: str | os.PathLike, trace: list[TraceRecord]) -> None:
    """Write *trace* to *path* (``.npz``)."""
    n = len(trace)
    pc = np.empty(n, dtype=np.uint64)
    opclass = np.empty(n, dtype=np.uint8)
    dest = np.empty(n, dtype=np.uint8)
    src = np.zeros((n, _MAX_SOURCES), dtype=np.uint8)
    nsrc = np.empty(n, dtype=np.uint8)
    naddr = np.empty(n, dtype=np.uint8)
    mem_addr = np.empty(n, dtype=np.uint64)
    mem_size = np.empty(n, dtype=np.uint8)
    flags = np.empty(n, dtype=np.uint8)
    next_pc = np.empty(n, dtype=np.uint64)
    for i, record in enumerate(trace):
        pc[i] = record.pc
        opclass[i] = _OPCLASS_IDS[record.opclass]
        dest[i] = _NO_DEST if record.dest is None else record.dest
        if record.is_store:
            sources, addr_count = _store_operands(record)
        else:
            sources, addr_count = record.sources[:_MAX_SOURCES], _NO_SPLIT
        nsrc[i] = len(sources)
        naddr[i] = addr_count
        for j, reg in enumerate(sources):
            src[i, j] = reg
        mem_addr[i] = record.mem_addr
        mem_size[i] = record.mem_size
        flags[i] = (record.is_load | (record.is_store << 1)
                    | (record.is_control << 2) | (record.taken << 3)
                    | (record.kernel << 4) | _hint_flags(record))
        next_pc[i] = record.next_pc
    np.savez_compressed(
        path, version=np.array([FORMAT_VERSION]), pc=pc, opclass=opclass,
        dest=dest, src=src, nsrc=nsrc, naddr=naddr, mem_addr=mem_addr,
        mem_size=mem_size, flags=flags, next_pc=next_pc)


def save_trace_atomic(path: str | os.PathLike,
                      trace: list[TraceRecord]) -> None:
    """Write *trace* to *path* via a same-directory temp file and an
    atomic rename — concurrent writers (parallel experiment workers,
    racing processes) can never expose a torn file."""
    path = os.fspath(path)
    tmp = f"{path}.tmp-{os.getpid()}.npz"
    try:
        save_trace(tmp, trace)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def load_trace(path: str | os.PathLike) -> list[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        version = int(archive["version"][0])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        pc = archive["pc"]
        opclass = archive["opclass"]
        dest = archive["dest"]
        src = archive["src"]
        nsrc = archive["nsrc"]
        naddr = archive["naddr"]
        mem_addr = archive["mem_addr"]
        mem_size = archive["mem_size"]
        flags = archive["flags"]
        next_pc = archive["next_pc"]
    trace: list[TraceRecord] = []
    for i in range(len(pc)):
        flag = int(flags[i])
        addr_count = int(naddr[i])
        trace.append(TraceRecord(
            pc=int(pc[i]),
            opclass=_OPCLASS_FROM_ID[int(opclass[i])],
            dest=None if dest[i] == _NO_DEST else int(dest[i]),
            sources=tuple(int(src[i, j]) for j in range(int(nsrc[i]))),
            mem_addr=int(mem_addr[i]),
            mem_size=int(mem_size[i]),
            is_load=bool(flag & 1),
            is_store=bool(flag & 2),
            is_control=bool(flag & 4),
            taken=bool(flag & 8),
            kernel=bool(flag & 16),
            next_pc=int(next_pc[i]),
            serializes=bool(flag & 32),
            decode_redirect=bool(flag & 64),
            store_addr_count=-1 if addr_count == _NO_SPLIT else addr_count,
        ))
    return trace
