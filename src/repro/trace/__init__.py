"""Dynamic instruction traces: records, generators, serialisation."""

from .io import load_trace, save_trace, save_trace_atomic
from .record import TraceRecord
from .synthetic import DATA_BASE, TEXT_BASE, SyntheticConfig, generate

__all__ = [
    "load_trace",
    "save_trace",
    "save_trace_atomic",
    "TraceRecord",
    "DATA_BASE",
    "TEXT_BASE",
    "SyntheticConfig",
    "generate",
]
