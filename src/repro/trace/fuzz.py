"""Seeded random-program differential fuzzing.

Generates well-formed assembly programs over the whole ISA (integer
ALU, multiply/divide, loads/stores of every size, floating point,
forward branches, bounded loops, direct/indirect jumps, safe host
syscalls), then pushes each program through the full stack —
assembler → functional interpreter → timing core — with the
:mod:`repro.validate` checkers attached, across a matrix of machine
configurations.  Any divergence, invariant violation, commit-count
mismatch or digest mismatch is a failure.

Programs are built from **units**: self-contained blocks of lines that
can be removed independently (labels are unique per unit, registers are
drawn from disjoint pools so loop counters are never clobbered).  That
structure is what makes failing programs shrinkable: a greedy
delta-debugging pass removes unit chunks while the failure reproduces,
then reduces loop trip counts, yielding a minimal reproducer that is
saved as a ``.repro`` JSON artifact (replayable with
``repro fuzz --replay``).

Generation is fully deterministic in the seed: programs always
terminate (loops have fixed trip counts, branches only jump forward)
and never trap (all arithmetic is defined, memory accesses are aligned
inside a private scratch buffer).
"""

from __future__ import annotations

import json
import re
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from random import Random

from ..asm import AsmError, assemble
from ..func.exceptions import SimError
from ..func.run import run_bare

#: Schema tag of the ``.repro`` reproducer artifacts.
ARTIFACT_SCHEMA = "repro.fuzz/1"

#: The default configuration matrix: single-ported baseline, the
#: dual-ported reference, and the full single-port technique stack.
DEFAULT_CONFIGS = ("1P", "2P", "1P-wide+LB+SC")

_BUF_BYTES = 512  # private scratch buffer every memory unit targets

# Disjoint register pools: scratch values, loop counters, the buffer
# base.  a0/a7 belong to the syscall ABI, ra to jal, sp to the runner.
_INT_POOL = ("t0", "t1", "t2", "t3", "t4", "t5", "t6",
             "s2", "s3", "s4", "s5", "a1", "a2", "a3", "a4", "a5")
_CTR_POOL = ("s8", "s9", "s10", "s11")
_FP_POOL = tuple(f"f{index}" for index in range(8))
_BASE = "s0"

_ALU_RR = ("add", "sub", "and", "or", "xor", "nor", "sll", "srl", "sra",
           "slt", "sltu", "mul", "mulh", "div", "rem")
_ALU_RI = ("addi", "andi", "ori", "xori", "slti", "sltiu")
_ALU_SHIFT_I = ("slli", "srli", "srai")
_LOADS = ("lb", "lbu", "lh", "lhu", "lw", "lwu", "ld")
_STORES = ("sb", "sh", "sw", "sd")
_MEM_SIZE = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4,
             "ld": 8, "sb": 1, "sh": 2, "sw": 4, "sd": 8,
             "fld": 8, "fsd": 8}
_FP_RRR = ("fadd", "fsub", "fmul", "fdiv")
_FP_CMP = ("feq", "flt", "fle")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")
_SAFE_SYSCALLS = (4, 5, 6)  # yield, getpid, time

#: A unit is a list of assembly lines removable as a block.
Unit = list[str]


@dataclass
class FuzzConfig:
    """One fuzzing campaign."""

    seed: int = 1
    count: int = 20
    configs: tuple[str, ...] = DEFAULT_CONFIGS
    units: int = 24
    max_instructions: int = 200_000
    shrink: bool = True


@dataclass
class FuzzFailure:
    """One failing program, with its shrunk reproducer when available."""

    seed: int
    failures: list[str]
    source: str
    shrunk_source: str | None = None


@dataclass
class FuzzReport:
    """Outcome of :func:`run_fuzz`."""

    config: FuzzConfig
    programs: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
class _UnitGenerator:
    def __init__(self, rng: Random) -> None:
        self.rng = rng
        self._labels = 0

    def _label(self) -> str:
        self._labels += 1
        return f"L{self._labels}"

    def _int_reg(self) -> str:
        return self.rng.choice(_INT_POOL)

    def _fp_reg(self) -> str:
        return self.rng.choice(_FP_POOL)

    def _offset(self, size: int) -> int:
        return self.rng.randrange(0, _BUF_BYTES // size) * size

    # -- straight-line lines (safe inside any unit) ---------------------
    def _alu_line(self) -> str:
        rng = self.rng
        kind = rng.randrange(3)
        rd = self._int_reg()
        if kind == 0:
            op = rng.choice(_ALU_RR)
            return f"    {op} {rd}, {self._int_reg()}, {self._int_reg()}"
        if kind == 1:
            op = rng.choice(_ALU_RI)
            return f"    {op} {rd}, {self._int_reg()}, " \
                   f"{rng.randint(-1024, 1023)}"
        op = rng.choice(_ALU_SHIFT_I)
        return f"    {op} {rd}, {self._int_reg()}, {rng.randrange(64)}"

    def _load_line(self) -> str:
        op = self.rng.choice(_LOADS)
        return f"    {op} {self._int_reg()}, " \
               f"{self._offset(_MEM_SIZE[op])}({_BASE})"

    def _store_line(self) -> str:
        op = self.rng.choice(_STORES)
        return f"    {op} {self._int_reg()}, " \
               f"{self._offset(_MEM_SIZE[op])}({_BASE})"

    def _fp_line(self) -> str:
        rng = self.rng
        kind = rng.randrange(6)
        if kind == 0:
            return f"    fld {self._fp_reg()}, {self._offset(8)}({_BASE})"
        if kind == 1:
            return f"    fsd {self._fp_reg()}, {self._offset(8)}({_BASE})"
        if kind == 2:
            op = rng.choice(_FP_RRR)
            return f"    {op} {self._fp_reg()}, {self._fp_reg()}, " \
                   f"{self._fp_reg()}"
        if kind == 3:
            op = rng.choice(_FP_CMP)
            return f"    {op} {self._int_reg()}, {self._fp_reg()}, " \
                   f"{self._fp_reg()}"
        if kind == 4:
            return f"    fcvt.d.l {self._fp_reg()}, {self._int_reg()}"
        return f"    fcvt.l.d {self._int_reg()}, {self._fp_reg()}"

    def _straightline(self) -> str:
        pick = self.rng.randrange(5)
        if pick < 2:
            return self._alu_line()
        if pick == 2:
            return self._load_line()
        if pick == 3:
            return self._store_line()
        return self._fp_line()

    # -- units ----------------------------------------------------------
    def unit_alu(self) -> Unit:
        return [self._alu_line() for _ in range(self.rng.randint(1, 3))]

    def unit_load(self) -> Unit:
        return [self._load_line() for _ in range(self.rng.randint(1, 2))]

    def unit_store(self) -> Unit:
        return [self._store_line() for _ in range(self.rng.randint(1, 2))]

    def unit_fp(self) -> Unit:
        return [self._fp_line() for _ in range(self.rng.randint(1, 2))]

    def unit_branch(self) -> Unit:
        label = self._label()
        op = self.rng.choice(_BRANCHES)
        lines = [f"    {op} {self._int_reg()}, {self._int_reg()}, {label}"]
        lines += [self._straightline()
                  for _ in range(self.rng.randint(0, 2))]
        lines.append(f"{label}:")
        return lines

    def unit_loop(self) -> Unit:
        label = self._label()
        counter = self.rng.choice(_CTR_POOL)
        lines = [f"    li {counter}, {self.rng.randint(1, 6)}",
                 f"{label}:"]
        lines += [self._straightline()
                  for _ in range(self.rng.randint(1, 3))]
        lines += [f"    subi {counter}, {counter}, 1",
                  f"    bnez {counter}, {label}"]
        return lines

    def unit_jump(self) -> Unit:
        label = self._label()
        kind = self.rng.randrange(3)
        if kind == 0:
            lines = [f"    j {label}"]
        elif kind == 1:
            lines = [f"    jal {label}"]
        else:
            scratch = self._int_reg()
            lines = [f"    la {scratch}, {label}", f"    jr {scratch}"]
        # dead code between the jump and its target (never executed,
        # still fetched by the functional loader).
        lines += [self._alu_line()
                  for _ in range(self.rng.randint(0, 2))]
        lines.append(f"{label}:")
        return lines

    def unit_syscall(self) -> Unit:
        return [f"    li a7, {self.rng.choice(_SAFE_SYSCALLS)}",
                "    syscall 0"]

    def unit_seed_int(self) -> Unit:
        return [f"    li {self._int_reg()}, "
                f"{self.rng.randint(-(1 << 14), (1 << 14) - 1)}"]

    def unit_seed_fp(self) -> Unit:
        scratch = self._int_reg()
        return [f"    li {scratch}, {self.rng.randint(-512, 511)}",
                f"    fcvt.d.l {self._fp_reg()}, {scratch}"]


_UNIT_WEIGHTS = (
    ("unit_alu", 26),
    ("unit_load", 20),
    ("unit_store", 14),
    ("unit_fp", 12),
    ("unit_branch", 12),
    ("unit_loop", 8),
    ("unit_jump", 5),
    ("unit_syscall", 3),
)


def generate_units(seed: int, units: int = 24) -> list[Unit]:
    """Deterministically generate the body units for one program."""
    rng = Random(seed)
    generator = _UnitGenerator(rng)
    body: list[Unit] = []
    for _ in range(rng.randint(3, 6)):
        body.append(generator.unit_seed_int())
    for _ in range(rng.randint(0, 2)):
        body.append(generator.unit_seed_fp())
    names = [name for name, weight in _UNIT_WEIGHTS]
    weights = [weight for name, weight in _UNIT_WEIGHTS]
    for _ in range(units):
        name = rng.choices(names, weights=weights)[0]
        body.append(getattr(generator, name)())
    return body


def render_program(units: Sequence[Unit]) -> str:
    """Wrap body units in the fixed prologue/epilogue."""
    lines = [
        ".equ SYS_EXIT, 1",
        "",
        ".data",
        f"buf: .space {_BUF_BYTES}",
        "",
        ".text",
        "main:",
        f"    la {_BASE}, buf",
    ]
    for unit in units:
        lines.extend(unit)
    lines += ["    li a0, 0", "    li a7, SYS_EXIT", "    syscall 0", ""]
    return "\n".join(lines)


def generate_program(seed: int, units: int = 24) -> str:
    """One complete random program (deterministic in *seed*)."""
    return render_program(generate_units(seed, units))


# ----------------------------------------------------------------------
# Checking
# ----------------------------------------------------------------------
def check_program(source: str,
                  configs: Sequence[str] = DEFAULT_CONFIGS,
                  max_instructions: int = 200_000) -> list[str]:
    """Run *source* through every config with full validation.

    Returns a list of failure descriptions (empty = the program agrees
    with the golden model and breaks no invariant anywhere).
    """
    from ..core.pipeline import OoOCore
    from ..presets import machine
    from ..validate import GoldenChecker, InvariantChecker, ValidationSuite

    try:
        program = assemble(source)
    except AsmError as exc:
        return [f"assemble: {exc}"]
    try:
        func = run_bare(program, max_instructions=max_instructions,
                        collect_trace=True, compute_digests=True)
    except SimError as exc:
        return [f"functional: {exc}"]
    if not func.trace:
        return ["functional: empty trace"]
    failures: list[str] = []
    for name in configs:
        suite = ValidationSuite([
            GoldenChecker(program, trace=func.trace),
            InvariantChecker(),
        ])
        try:
            result = OoOCore(machine(name), validator=suite).run(func.trace)
        except SimError as exc:
            failures.append(f"{name}: timing core error: {exc}")
            continue
        violations = suite.all_violations
        failures.extend(f"{name}: {violation}"
                        for violation in violations[:5])
        if len(violations) > 5:
            failures.append(f"{name}: ... {len(violations) - 5} more "
                            f"violations")
        if not violations and result.digests != func.digests:
            failures.append(
                f"{name}: end-state digest mismatch (functional "
                f"{func.digests}, timing {result.digests})")
    return failures


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_units(units: Sequence[Unit],
                 failing: Callable[[str], bool]) -> list[Unit]:
    """Greedy ddmin over units: drop the largest chunks that keep the
    program failing, then reduce loop trip counts."""
    remaining = [list(unit) for unit in units]
    chunk = max(1, len(remaining) // 2)
    while chunk >= 1:
        index = 0
        while index < len(remaining):
            candidate = remaining[:index] + remaining[index + chunk:]
            if candidate and failing(render_program(candidate)):
                remaining = candidate
            else:
                index += chunk
        chunk //= 2
    return _reduce_loops(remaining, failing)


_LOOP_HEAD = re.compile(r"\s*li (s8|s9|s10|s11), (\d+)$")


def _reduce_loops(units: list[Unit],
                  failing: Callable[[str], bool]) -> list[Unit]:
    for index, unit in enumerate(units):
        match = _LOOP_HEAD.match(unit[0]) if unit else None
        if match is None or int(match.group(2)) <= 1:
            continue
        reduced = [f"    li {match.group(1)}, 1"] + unit[1:]
        candidate = units[:index] + [reduced] + units[index + 1:]
        if failing(render_program(candidate)):
            units = candidate
    return units


# ----------------------------------------------------------------------
# The campaign driver
# ----------------------------------------------------------------------
def run_fuzz(config: FuzzConfig,
             progress: Callable[[str], None] | None = None) -> FuzzReport:
    """Fuzz ``config.count`` programs from consecutive seeds."""
    report = FuzzReport(config)
    for seed in range(config.seed, config.seed + config.count):
        units = generate_units(seed, config.units)
        source = render_program(units)
        failures = check_program(source, config.configs,
                                 config.max_instructions)
        report.programs += 1
        if not failures:
            if progress is not None:
                progress(f"seed {seed}: ok")
            continue
        failure = FuzzFailure(seed=seed, failures=failures, source=source)
        if config.shrink:
            def failing(candidate: str) -> bool:
                return bool(check_program(candidate, config.configs,
                                          config.max_instructions))
            shrunk = shrink_units(units, failing)
            failure.shrunk_source = render_program(shrunk)
        report.failures.append(failure)
        if progress is not None:
            progress(f"seed {seed}: FAILED ({failures[0]})")
    return report


# ----------------------------------------------------------------------
# Reproducer artifacts
# ----------------------------------------------------------------------
def artifact_payload(failure: FuzzFailure,
                     configs: Sequence[str]) -> dict[str, object]:
    return {
        "schema": ARTIFACT_SCHEMA,
        "seed": failure.seed,
        "configs": list(configs),
        "failures": list(failure.failures),
        "source": failure.source,
        "shrunk_source": failure.shrunk_source,
    }


def save_artifact(path: str, failure: FuzzFailure,
                  configs: Sequence[str]) -> None:
    """Write one failing program as a replayable ``.repro`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact_payload(failure, configs), handle, indent=2)
        handle.write("\n")


def load_artifact(path: str) -> dict[str, object]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or \
            payload.get("schema") != ARTIFACT_SCHEMA:
        raise ValueError(f"{path} is not a {ARTIFACT_SCHEMA} artifact")
    return payload


def replay_artifact(payload: dict[str, object],
                    max_instructions: int = 200_000) -> list[str]:
    """Re-check an artifact's (shrunk, if available) program."""
    source = payload.get("shrunk_source") or payload["source"]
    configs = tuple(payload.get("configs") or DEFAULT_CONFIGS)
    return check_program(str(source), configs, max_instructions)
