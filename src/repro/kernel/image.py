"""Building and running complete systems (kernel + user processes)."""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from ..asm import assemble
from ..func.interp import Interpreter, load_program
from ..func.memory import ConsoleDevice, Memory
from ..func.run import RunResult
from ..isa import Program
from ..trace.record import TraceRecord
from . import layout
from .source import kernel_source


@functools.lru_cache(maxsize=1)
def build_kernel() -> Program:
    """Assemble the mini-OS (cached — the kernel never changes)."""
    return assemble(kernel_source(), text_base=layout.KERNEL_TEXT_BASE,
                    data_base=layout.KERNEL_DATA_BASE, entry="_kstart",
                    source_name="<kernel>")


def assemble_user(source: str, slot: int, entry: str | int | None = None,
                  source_name: str = "<user>") -> Program:
    """Assemble a user program into process slot *slot*'s address window."""
    return assemble(source, text_base=layout.user_text_base(slot),
                    data_base=layout.user_data_base(slot), entry=entry,
                    source_name=source_name)


def _boot_descriptor(programs: list[Program], timer_interval: int) -> bytes:
    blob = bytearray()
    blob += len(programs).to_bytes(8, "little")
    blob += timer_interval.to_bytes(8, "little")
    for slot, program in enumerate(programs):
        blob += program.entry.to_bytes(8, "little")
        blob += layout.user_stack_top(slot).to_bytes(8, "little")
        blob += layout.user_brk(slot).to_bytes(8, "little")
    return bytes(blob)


@dataclass
class System:
    """A composed machine: kernel + user processes, ready to run."""

    memory: Memory
    console: ConsoleDevice
    kernel: Program
    programs: list[Program]
    timer_interval: int

    @property
    def entry(self) -> int:
        return self.kernel.entry

    @property
    def trap_vector(self) -> int:
        return self.kernel.text_base


def build_system(programs: list[Program], timer_interval: int = 20_000) -> System:
    """Compose kernel and user program images into one memory.

    *programs* must already be assembled into distinct process slots
    (use :func:`assemble_user`); at most :data:`layout.MAX_PROCS`.
    """
    if not programs:
        raise ValueError("need at least one user program")
    if len(programs) > layout.MAX_PROCS:
        raise ValueError(f"too many processes (max {layout.MAX_PROCS})")
    seen_bases = {p.text_base for p in programs}
    if len(seen_bases) != len(programs):
        raise ValueError("user programs must occupy distinct slots")
    kernel = build_kernel()
    memory = Memory()
    console = ConsoleDevice()
    memory.add_device(console)
    load_program(memory, kernel)
    for program in programs:
        load_program(memory, program)
    memory.write_bytes(layout.BOOTINFO_ADDR,
                       _boot_descriptor(programs, timer_interval))
    return System(memory=memory, console=console, kernel=kernel,
                  programs=programs, timer_interval=timer_interval)


@dataclass
class SystemRunResult(RunResult):
    """Outcome of a full-system run, with per-process exit codes."""

    process_exit_codes: list[int] = field(default_factory=list)


def run_system(programs: list[Program], timer_interval: int = 20_000,
               max_instructions: int = 20_000_000,
               collect_trace: bool = False) -> SystemRunResult:
    """Boot the mini-OS with *programs* and run to completion."""
    system = build_system(programs, timer_interval)
    trace: list[TraceRecord] = []
    sink = trace.append if collect_trace else None
    interp = Interpreter(system.memory, entry=system.entry,
                         trap_vector=system.trap_vector, trace_sink=sink)
    exit_code = interp.run(max_instructions)
    table = system.kernel.symbols["proctable"]
    exit_codes = [
        int(system.memory.load(table + slot * layout.PCB_SIZE
                               + layout.PCB_EXIT, 8))
        for slot in range(len(programs))
    ]
    return SystemRunResult(
        exit_code=exit_code,
        console=system.console.text(),
        retired=interp.retired,
        kernel_retired=interp.kernel_retired,
        loads=interp.loads,
        stores=interp.stores,
        traps_taken=interp.traps_taken,
        timer_interrupts=interp.timer_interrupts,
        trace=trace,
        process_exit_codes=exit_codes,
    )
