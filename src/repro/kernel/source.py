"""The mini-OS, written in mini-RISC assembly.

The kernel provides the pieces the paper's "realistic applications that
include the operating system" claim needs: a trap/syscall entry path
that saves and restores full register context (a burst of memory
traffic), a timer-interrupt-driven round-robin scheduler, and a console
write path that copies user buffers byte by byte.  All of it executes on
the functional simulator, so kernel instructions and kernel memory
references appear in the dynamic trace exactly like user ones.

The context save/restore sequences are generated programmatically to
keep the PCB slot offsets consistent with :mod:`repro.kernel.layout`.
"""

from __future__ import annotations

from ..isa.registers import reg_name
from . import abi, layout

#: Register save order: every integer register except zero and t0 (t0 is
#: parked in the SCRATCH system register by the trap prologue).
_T0 = 5
_RA = 1
_SAVED_INT_REGS = [i for i in range(1, 32) if i != _T0]
_FP_REGS = list(range(32, 64))


def _save_int_regs() -> str:
    lines = [f"    sd {reg_name(i)}, {layout.pcb_reg_slot(i)}(t0)"
             for i in _SAVED_INT_REGS]
    lines += [
        "    mfsr ra, scratch",
        f"    sd ra, {layout.pcb_reg_slot(_T0)}(t0)",
        "    mfsr ra, epc",
        f"    sd ra, {layout.PCB_PC}(t0)",
    ]
    return "\n".join(lines)


def _restore_int_regs_and_eret() -> str:
    lines = [
        f"    ld ra, {layout.PCB_PC}(t0)",
        "    mtsr epc, ra",
        # Resume with: user mode, interrupts off now, previous-IE set so
        # ERET lands in user mode with interrupts enabled.
        "    li ra, 9",
        "    mtsr status, ra",
    ]
    lines += [f"    ld {reg_name(i)}, {layout.pcb_reg_slot(i)}(t0)"
              for i in _SAVED_INT_REGS]
    lines += [
        f"    ld t0, {layout.pcb_reg_slot(_T0)}(t0)",
        "    eret",
    ]
    return "\n".join(lines)


def _save_fp_regs(base: str) -> str:
    return "\n".join(f"    fsd {reg_name(i)}, {layout.pcb_reg_slot(i)}({base})"
                     for i in _FP_REGS)


def _restore_fp_regs(base: str) -> str:
    return "\n".join(f"    fld {reg_name(i)}, {layout.pcb_reg_slot(i)}({base})"
                     for i in _FP_REGS)


def kernel_source() -> str:
    """Return the complete kernel assembly source."""
    pcb_shift_hi = 9  # PCB_SIZE = 576 = 512 + 64
    pcb_shift_lo = 6
    assert (1 << pcb_shift_hi) + (1 << pcb_shift_lo) == layout.PCB_SIZE
    a0 = layout.pcb_reg_slot(10)
    a1 = layout.pcb_reg_slot(11)
    a7 = layout.pcb_reg_slot(17)
    return f"""
# ---------------------------------------------------------------------
# mini-OS kernel.  The trap vector is the first instruction (_trap).
# ---------------------------------------------------------------------
.equ STATE, {layout.PCB_STATE}
.equ PC, {layout.PCB_PC}
.equ PID, {layout.PCB_PID}
.equ BRK, {layout.PCB_BRK}
.equ EXITC, {layout.PCB_EXIT}
.equ A0SLOT, {a0}
.equ A1SLOT, {a1}
.equ A7SLOT, {a7}
.equ BOOTINFO, {layout.BOOTINFO_ADDR}
.equ CONSOLE, {layout.CONSOLE_ADDR}

.text
_trap:
    mtsr scratch, t0
    mfsr t0, current
{_save_int_regs()}
    mfsr sp, ksp
    mfsr t1, cause
    li   t2, 1                     # TrapCause.SYSCALL
    beq  t1, t2, handle_syscall
    li   t2, 2                     # TrapCause.TIMER
    beq  t1, t2, handle_timer
    j    handle_fault

# -- syscall dispatch (number saved in the a7 slot) ---------------------
handle_syscall:
    ld   t1, A7SLOT(t0)
    li   t2, {abi.SYS_EXIT}
    beq  t1, t2, sys_exit
    li   t2, {abi.SYS_WRITE}
    beq  t1, t2, sys_write
    li   t2, {abi.SYS_BRK}
    beq  t1, t2, sys_brk
    li   t2, {abi.SYS_YIELD}
    beq  t1, t2, sys_yield
    li   t2, {abi.SYS_GETPID}
    beq  t1, t2, sys_getpid
    li   t2, {abi.SYS_TIME}
    beq  t1, t2, sys_time
    j    handle_fault              # unknown syscall kills the process

sys_exit:
    ld   t1, A0SLOT(t0)
    sd   t1, EXITC(t0)
    sd   zero, STATE(t0)
    j    schedule

sys_write:
    ld   t1, A0SLOT(t0)            # user buffer
    ld   t2, A1SLOT(t0)            # length
    la   t3, CONSOLE
    beqz t2, write_done
write_loop:
    lbu  t4, 0(t1)
    sb   t4, 0(t3)
    addi t1, t1, 1
    subi t2, t2, 1
    bnez t2, write_loop
write_done:
    ld   t2, A1SLOT(t0)
    sd   t2, A0SLOT(t0)            # return value = length
    j    resume

sys_brk:
    ld   t1, A0SLOT(t0)
    beqz t1, brk_query
    sd   t1, BRK(t0)
brk_query:
    ld   t1, BRK(t0)
    sd   t1, A0SLOT(t0)
    j    resume

sys_yield:
    sd   zero, A0SLOT(t0)
    j    schedule

sys_getpid:
    ld   t1, PID(t0)
    sd   t1, A0SLOT(t0)
    j    resume

sys_time:
    mfsr t1, cycles
    sd   t1, A0SLOT(t0)
    j    resume

# -- faults (illegal, misaligned, bad address, unknown syscall) -----------
handle_fault:
    mfsr t1, cause
    addi t1, t1, 128               # exit code = 128 + cause
    sd   t1, EXITC(t0)
    sd   zero, STATE(t0)
    j    schedule

# -- round-robin scheduler ------------------------------------------------
# t0 = current PCB (context already saved).  Every dispatch reloads the
# timer, so whoever runs next gets a full quantum — without this, the
# interval keeps accumulating across yield/exit switches and a
# syscall-dense mix can deliver a timer interrupt at the very ERET into
# a process, starving it forever.
handle_timer:
schedule:
    la   t1, kg_timer
    ld   t1, 0(t1)
    mtsr timer, t1                 # fresh quantum for the next process
    la   s0, kg_curidx
    ld   t1, 0(s0)                 # current index
    la   s1, kg_nproc
    ld   t2, 0(s1)                 # process count
    li   t3, 1                     # probe distance
sched_loop:
    bgt  t3, t2, sched_none
    add  t4, t1, t3
    blt  t4, t2, sched_nowrap
    sub  t4, t4, t2
sched_nowrap:
    slli t5, t4, {pcb_shift_hi}
    slli t6, t4, {pcb_shift_lo}
    add  t5, t5, t6
    la   s2, proctable
    add  t5, t5, s2
    ld   s3, STATE(t5)
    bnez s3, sched_found
    addi t3, t3, 1
    j    sched_loop
sched_found:
    sd   t4, 0(s0)                 # kg_curidx = new index
    mtsr current, t5
    beq  t5, t0, resume            # picked ourselves: no FP switch
{_save_fp_regs('t0')}
{_restore_fp_regs('t5')}
    mv   t0, t5
    j    resume
sched_none:
    ld   s3, STATE(t0)             # nobody else runnable
    bnez s3, resume                # current still alive: keep running it
    li   a0, 0                     # every process exited: stop the machine
    halt

# -- resume the process whose PCB is in t0 --------------------------------
resume:
{_restore_int_regs_and_eret()}

# -- boot -------------------------------------------------------------------
_kstart:
    la   sp, kstack_top
    mtsr ksp, sp
    li   t0, BOOTINFO
    ld   t1, {layout.BOOT_NPROC}(t0)
    la   t2, kg_nproc
    sd   t1, 0(t2)
    ld   t3, {layout.BOOT_TIMER}(t0)
    la   t2, kg_timer
    sd   t3, 0(t2)
    li   t4, 0                     # slot index
    la   t5, proctable
    addi t6, t0, {layout.BOOT_PROCS}
boot_loop:
    bge  t4, t1, boot_done
    li   s0, 1
    sd   s0, STATE(t5)
    ld   s0, {layout.BOOT_PROC_ENTRY}(t6)
    sd   s0, PC(t5)
    ld   s0, {layout.BOOT_PROC_SP}(t6)
    sd   s0, {layout.pcb_reg_slot(2)}(t5)
    ld   s0, {layout.BOOT_PROC_BRK}(t6)
    sd   s0, BRK(t5)
    addi s0, t4, 1
    sd   s0, PID(t5)
    addi t4, t4, 1
    addi t5, t5, {layout.PCB_SIZE}
    addi t6, t6, {layout.BOOT_PROC_STRIDE}
    j    boot_loop
boot_done:
    la   t5, proctable
    mtsr current, t5
    la   t2, kg_curidx
    sd   zero, 0(t2)
    mtsr timer, t3
    mv   t0, t5
    j    resume

# ---------------------------------------------------------------------
.data
kg_nproc:  .dword 0
kg_timer:  .dword 0
kg_curidx: .dword 0
.align 64
proctable: .space {layout.MAX_PROCS * layout.PCB_SIZE}
.align 64
kstack:    .space 2048
kstack_top:
"""
