"""Shim: the syscall ABI lives in :mod:`repro.abi` (dependency-free)."""

from ..abi import (  # noqa: F401
    SYS_BRK,
    SYS_EXIT,
    SYS_GETPID,
    SYS_TIME,
    SYS_WRITE,
    SYS_YIELD,
    SYSCALL_NAMES,
)

__all__ = ["SYS_BRK", "SYS_EXIT", "SYS_GETPID", "SYS_TIME", "SYS_WRITE",
           "SYS_YIELD", "SYSCALL_NAMES"]
