"""Physical memory layout of the mini-OS and its processes."""

from __future__ import annotations

from ..func.memory import ConsoleDevice

#: Kernel text starts here; the trap vector IS the first kernel instruction.
KERNEL_TEXT_BASE = 0x2000
#: Kernel data (globals, process table, kernel stack).
KERNEL_DATA_BASE = 0x80000
#: The host writes the boot descriptor here before starting the kernel.
BOOTINFO_ADDR = 0x70000
#: Console MMIO base (must match the functional simulator's device).
CONSOLE_ADDR = ConsoleDevice.DEFAULT_BASE

MAX_PROCS = 8

# ---------------------------------------------------------------------------
# Process control block layout (offsets in bytes).
# ---------------------------------------------------------------------------
PCB_STATE = 0     # 0 = free/dead, 1 = runnable
PCB_PC = 8        # saved program counter
PCB_PID = 16
PCB_BRK = 24
PCB_EXIT = 32     # exit code once dead
PCB_REGS = 40     # slots for architectural registers 1..63 (reg0 skipped)
PCB_SIZE = 576    # 40 + 63*8 = 544, rounded up to a multiple of 64

assert PCB_REGS + 63 * 8 <= PCB_SIZE


def pcb_reg_slot(unified_reg: int) -> int:
    """PCB offset where architectural register *unified_reg* is saved."""
    if not 1 <= unified_reg < 64:
        raise ValueError(f"register {unified_reg} has no save slot")
    return PCB_REGS + (unified_reg - 1) * 8


# ---------------------------------------------------------------------------
# Boot descriptor: nproc, timer interval, then per-process records.
# ---------------------------------------------------------------------------
BOOT_NPROC = 0
BOOT_TIMER = 8
BOOT_PROCS = 16
BOOT_PROC_ENTRY = 0
BOOT_PROC_SP = 8
BOOT_PROC_BRK = 16
BOOT_PROC_STRIDE = 24


# ---------------------------------------------------------------------------
# Per-process user address-space carving (no virtual memory: each process
# owns a disjoint 1 MiB window of the physical map).
# ---------------------------------------------------------------------------
USER_REGION_BASE = 0x40_0000
USER_REGION_SIZE = 0x10_0000


def user_text_base(slot: int) -> int:
    _check_slot(slot)
    return USER_REGION_BASE + slot * USER_REGION_SIZE


def user_data_base(slot: int) -> int:
    return user_text_base(slot) + 0x4_0000


def user_brk(slot: int) -> int:
    return user_text_base(slot) + 0x8_0000


def user_stack_top(slot: int) -> int:
    return user_text_base(slot) + 0xF_0000


def _check_slot(slot: int) -> None:
    if not 0 <= slot < MAX_PROCS:
        raise ValueError(f"process slot {slot} out of range (max {MAX_PROCS})")
