"""The mini operating system: syscall ABI, layout, kernel image, runner."""

from . import abi, layout
from .image import (
    System,
    SystemRunResult,
    assemble_user,
    build_kernel,
    build_system,
    run_system,
)
from .source import kernel_source

__all__ = [
    "abi",
    "layout",
    "System",
    "SystemRunResult",
    "assemble_user",
    "build_kernel",
    "build_system",
    "run_system",
    "kernel_source",
]
