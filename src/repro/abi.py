"""Syscall ABI shared by user programs, the mini-OS and the host.

Calling convention: syscall number in ``a7``, arguments in ``a0``-``a2``,
return value in ``a0``.
"""

from __future__ import annotations

SYS_EXIT = 1      # a0 = exit code
SYS_WRITE = 2     # a0 = buffer address, a1 = length; returns length
SYS_BRK = 3       # a0 = new break (0 queries); returns current break
SYS_YIELD = 4     # give up the CPU
SYS_GETPID = 5    # returns process id
SYS_TIME = 6      # returns retired-instruction count

SYSCALL_NAMES = {
    SYS_EXIT: "exit",
    SYS_WRITE: "write",
    SYS_BRK: "brk",
    SYS_YIELD: "yield",
    SYS_GETPID: "getpid",
    SYS_TIME: "time",
}
