"""Reproduction of *Increasing Cache Port Efficiency for Dynamic
Superscalar Microprocessors* (Wilson, Olukotun, Rosenblum — ISCA 1996).

The package builds the full stack the paper's evaluation needs, from
scratch: a mini RISC ISA and assembler, a functional simulator with a
small operating system (so kernel activity appears in the traces), a
cycle-level dynamic superscalar core, and — the paper's contribution —
a configurable L1 data-cache **port subsystem**: line buffer, write
buffer with store combining, and wide-port access combining.

Quick start::

    from repro import build_trace, machine, simulate

    trace = build_trace("stream", "small")        # functional run
    single = simulate(trace, machine("1P"))       # plain single port
    tech = simulate(trace, machine("1P-wide+LB+SC"))
    dual = simulate(trace, machine("2P"))         # dual-ported cache
    print(single.ipc, tech.ipc, dual.ipc)

See ``examples/`` for runnable scenarios and ``repro.experiments`` for
the harness regenerating every table and figure.
"""

from .asm import AsmError, assemble
from .core import CoreConfig, CoreResult, MachineConfig, OoOCore, simulate
from .func import RunResult, SimError, SimHalted, run_bare
from .kernel import assemble_user, build_system, run_system
from .presets import (
    BEST_SINGLE_PORT,
    CONFIG_NAMES,
    DUAL_PORT,
    STRONG_DUAL_PORT,
    machine,
    paper_machines,
)
from .trace import SyntheticConfig, TraceRecord, generate, load_trace, save_trace
from .workloads import SUITE_NAMES, WORKLOADS, build_os_mix_trace, build_trace

__version__ = "1.0.0"

__all__ = [
    "AsmError",
    "assemble",
    "CoreConfig",
    "CoreResult",
    "MachineConfig",
    "OoOCore",
    "simulate",
    "RunResult",
    "SimError",
    "SimHalted",
    "run_bare",
    "assemble_user",
    "build_system",
    "run_system",
    "BEST_SINGLE_PORT",
    "CONFIG_NAMES",
    "DUAL_PORT",
    "STRONG_DUAL_PORT",
    "machine",
    "paper_machines",
    "SyntheticConfig",
    "TraceRecord",
    "generate",
    "load_trace",
    "save_trace",
    "SUITE_NAMES",
    "WORKLOADS",
    "build_os_mix_trace",
    "build_trace",
    "__version__",
]
