"""Validation and regression comparison for benchmark manifests.

A benchmark manifest mixes two kinds of content with different
comparison rules:

* **deterministic** content — the matrix itself and each cell's
  simulated ``instructions`` / ``cycles`` / ``ipc`` — must match
  *exactly* between a baseline and a candidate from the same source
  revision.  A mismatch means the simulator's functional behaviour
  changed, which no throughput tolerance should paper over.
* **throughput** content — the per-cell median kIPS — compares within
  a relative tolerance, because host timing is noisy.

:func:`compare_bench` runs both comparisons through
:func:`repro.obs.compare.compare_documents` and reports them
separately, so ``repro bench --compare`` can exit 1 for "slower" and
2 for "different" (see the CLI).
"""

from __future__ import annotations

import datetime
import socket
from pathlib import Path

from ..obs.compare import compare_documents, render_comparison
from ..obs.report import SchemaError, _check_code_version, _require
from .harness import BENCH_SCHEMA

#: Relative tolerance ``--compare`` applies to throughput by default.
DEFAULT_TOLERANCE = 0.1


def default_bench_path(directory: str | Path = ".") -> Path:
    """The conventional manifest name: ``BENCH_<host>_<date>.json``."""
    stamp = datetime.date.today().isoformat()
    return Path(directory) / f"BENCH_{socket.gethostname()}_{stamp}.json"


def validate_bench_manifest(manifest: dict) -> None:
    """Raise :class:`~repro.obs.report.SchemaError` unless *manifest*
    is a structurally valid ``repro.bench/1`` document."""
    problems: list[str] = []
    if not isinstance(manifest, dict):
        raise SchemaError(["bench manifest must be an object"])
    _require(manifest, {
        "schema": str,
        "schema_version": int,
        "mode": str,
        "settings": dict,
        "matrix": list,
        "results": list,
        "tracegen": list,
        "host": dict,
    }, problems, "bench")
    if manifest.get("schema") not in (None, BENCH_SCHEMA):
        problems.append(f"bench: schema is {manifest['schema']!r}, "
                        f"expected {BENCH_SCHEMA!r}")
    if manifest.get("mode") not in (None, "quick", "full"):
        problems.append(f"bench: mode is {manifest['mode']!r}, "
                        f"expected 'quick' or 'full'")
    _check_code_version(manifest, problems, "bench")
    settings = manifest.get("settings")
    if isinstance(settings, dict):
        _require(settings, {"repeats": int, "warmup": int},
                 problems, "bench.settings")
    for index, cell in enumerate(manifest.get("matrix") or ()):
        if not isinstance(cell, dict):
            problems.append(f"bench.matrix[{index}]: must be an object")
            continue
        _require(cell, {"workload": str, "scale": str, "config": str},
                 problems, f"bench.matrix[{index}]")
    for index, result in enumerate(manifest.get("results") or ()):
        if not isinstance(result, dict):
            problems.append(f"bench.results[{index}]: must be an object")
            continue
        context = f"bench.results[{index}]"
        _require(result, {
            "label": str,
            "workload": str,
            "scale": str,
            "config": str,
            "instructions": int,
            "cycles": int,
            "ipc": (int, float),
            "seconds": dict,
            "kips": dict,
            "cps": (int, float),
        }, problems, context)
        if "used_fastpath" in result:  # optional: pre-PR8 manifests
            if not isinstance(result["used_fastpath"], bool):
                problems.append(f"{context}: used_fastpath must be a "
                                f"boolean")
            reason = result.get("fastpath_reason")
            if reason is not None and not isinstance(reason, str):
                problems.append(f"{context}: fastpath_reason must be a "
                                f"string or null")
            if result["used_fastpath"] is True and \
                    isinstance(reason, str):
                problems.append(f"{context}: used_fastpath=true cannot "
                                f"carry a fastpath_reason")
        for key in ("seconds", "kips"):
            stats = result.get(key)
            if not isinstance(stats, dict):
                continue
            _require(stats, {"values": list, "median": (int, float),
                             "iqr": (int, float)},
                     problems, f"{context}.{key}")
            values = stats.get("values")
            if isinstance(values, list) and not all(
                    isinstance(value, (int, float)) and
                    not isinstance(value, bool) for value in values):
                problems.append(f"{context}.{key}: values must be "
                                f"numbers")
    for index, timing in enumerate(manifest.get("tracegen") or ()):
        if not isinstance(timing, dict):
            problems.append(f"bench.tracegen[{index}]: must be an "
                            f"object")
            continue
        _require(timing, {"label": str, "instructions": int,
                          "cold_s": (int, float),
                          "warm_s": (int, float)},
                 problems, f"bench.tracegen[{index}]")
    if problems:
        raise SchemaError(problems)


def _cell_label(cell: dict) -> str:
    return f"{cell.get('workload')}@{cell.get('scale')}" \
           f"/{cell.get('config')}"


def _deterministic_view(manifest: dict,
                        labels: frozenset[str]) -> dict:
    """The exact-match subset of a manifest, restricted to the cell
    labels both sides ran (matrix growth is additive, not a diff)."""
    return {
        "schema": manifest.get("schema"),
        "mode": manifest.get("mode"),
        "matrix": [cell for cell in manifest.get("matrix") or ()
                   if isinstance(cell, dict)
                   and _cell_label(cell) in labels],
        "results": [{key: result.get(key)
                     for key in ("label", "workload", "scale", "config",
                                 "instructions", "cycles", "ipc")}
                    for result in manifest.get("results") or ()
                    if result.get("label") in labels],
    }


def _throughput_view(manifest: dict, labels: frozenset[str]) -> dict:
    """The tolerance-compared subset: per-cell median kIPS."""
    return {"kips": {result["label"]: result["kips"]["median"]
                     for result in manifest.get("results") or ()
                     if result.get("label") in labels}}


def compare_bench(baseline: dict, candidate: dict,
                  tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Compare two benchmark manifests.

    Returns a report with two embedded ``repro.compare/1`` documents:
    ``deterministic`` (tolerance 0 — simulated results must match
    exactly) and ``throughput`` (median kIPS within *tolerance*).
    ``ok`` is true iff both compare clean; ``deterministic_ok`` false
    means the two manifests disagree about *what was simulated*, not
    just how fast.

    Both comparisons cover only the cell labels present in **both**
    manifests: the pinned matrix grows over time, so a cell only the
    candidate ran is reported under ``new_cells`` (and a cell only the
    baseline ran under ``removed_cells``) as a note, never a failure.
    """
    base_labels = {result.get("label")
                   for result in baseline.get("results") or ()}
    cand_labels = {result.get("label")
                   for result in candidate.get("results") or ()}
    common = frozenset(base_labels & cand_labels)
    deterministic = compare_documents(
        _deterministic_view(baseline, common),
        _deterministic_view(candidate, common),
        tolerance=0.0, ignore=frozenset())
    throughput = compare_documents(_throughput_view(baseline, common),
                                   _throughput_view(candidate, common),
                                   tolerance=tolerance,
                                   ignore=frozenset())
    return {
        "schema": "repro.bench.compare/1",
        "schema_version": 1,
        "tolerance": tolerance,
        "new_cells": sorted(str(label)
                            for label in cand_labels - base_labels),
        "removed_cells": sorted(str(label)
                                for label in base_labels - cand_labels),
        "deterministic": deterministic,
        "throughput": throughput,
        "deterministic_ok": deterministic["equal"],
        "throughput_ok": throughput["equal"],
        "ok": deterministic["equal"] and throughput["equal"],
    }


def render_bench_comparison(report: dict, label_a: str,
                            label_b: str) -> str:
    """Human-readable rendering of a :func:`compare_bench` report."""
    lines = []
    for label in report.get("new_cells") or ():
        lines.append(f"note: {label} is a new cell (only in {label_b}); "
                     f"not compared")
    for label in report.get("removed_cells") or ():
        lines.append(f"note: {label} only in {label_a}; not compared")
    if report["deterministic_ok"]:
        lines.append("deterministic results: identical")
    else:
        lines.append("deterministic results DIFFER — the two manifests "
                     "did not simulate the same thing:")
        lines.append(render_comparison(report["deterministic"],
                                       label_a, label_b))
    verdict = "within tolerance" if report["throughput_ok"] else \
        "OUT OF TOLERANCE"
    lines.append(f"throughput (tolerance "
                 f"{report['tolerance']:g}): {verdict}")
    lines.append(render_comparison(report["throughput"],
                                   label_a, label_b))
    return "\n".join(lines)
