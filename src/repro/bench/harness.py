"""The benchmark harness: timed simulation over a pinned matrix.

Methodology
-----------

* The matrix is **pinned** (module constants, not flags) so every
  manifest measures the same work and any two manifests from the same
  source revision are comparable.  ``--quick`` selects a tiny-scale
  matrix for CI smoke runs; the full matrix uses the ``small`` scale.
* Every cell is simulated ``warmup`` times untimed (page cache, JIT-
  warmed dict layouts, branch predictors — the host's, not the
  simulated one), then ``repeats`` times timed.  The manifest stores
  every timed wall-clock sample plus the **median** and the **IQR**
  (inter-quartile range), which are robust to the one-off scheduler
  hiccups that poison means.
* Simulated results (instructions, cycles) are recorded per cell:
  they must be identical run-to-run, which is what lets
  :func:`repro.bench.compare.compare_bench` split "the simulator got
  slower" from "the simulator computes something different".
* Trace generation is timed separately — once **cold** (memory tier
  cleared, disk tier disabled, so the functional simulator really
  runs) and once **warm** (straight from the in-memory cache) per
  distinct workload.

All timings land under per-cell ``seconds``/``kips``/``tracegen``
subtrees; everything else in a manifest is deterministic.
"""

from __future__ import annotations

import platform
import socket
import sys
import time
from dataclasses import dataclass

from ..core.pipeline import OoOCore
from ..obs.codeversion import code_version
from ..presets import machine as preset_machine
from ..workloads import suite

#: Schema tag carried by every benchmark manifest.
SCHEMA_VERSION = 1
BENCH_SCHEMA = f"repro.bench/{SCHEMA_VERSION}"


@dataclass(frozen=True)
class BenchCell:
    """One matrix cell: simulate *workload* at *scale* on *config*."""

    workload: str
    scale: str
    config: str

    @property
    def label(self) -> str:
        return f"{self.workload}@{self.scale}/{self.config}"


#: CI smoke matrix: the port-bandwidth extremes plus the techniques
#: config, over short memory-heavy and control-heavy workloads, plus
#: one OS-activity scenario so full-system throughput is tracked
#: longitudinally (scenario cells run at each scenario's default seed).
QUICK_MATRIX = (
    BenchCell("stream", "tiny", "1P"),
    BenchCell("stream", "tiny", "2P"),
    BenchCell("memops", "tiny", "1P-wide+LB+SC"),
    BenchCell("memops", "tiny", "2P"),
    BenchCell("qsort", "tiny", "1P"),
    BenchCell("qsort", "tiny", "2P+SC"),
    BenchCell("iostorm", "tiny", "2P+SC"),
)

#: The full matrix: small-scale runs across the paper's main configs.
FULL_MATRIX = (
    BenchCell("stream", "small", "1P"),
    BenchCell("stream", "small", "1P-wide+LB+SC"),
    BenchCell("stream", "small", "2P"),
    BenchCell("memops", "small", "1P"),
    BenchCell("memops", "small", "1P-wide+LB+SC"),
    BenchCell("memops", "small", "2P"),
    BenchCell("qsort", "small", "1P"),
    BenchCell("qsort", "small", "2P+SC"),
    BenchCell("linked", "small", "1P"),
    BenchCell("linked", "small", "2P+SC"),
)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _iqr(values: list[float]) -> float:
    """Inter-quartile range via linear interpolation."""
    ordered = sorted(values)
    if len(ordered) < 2:
        return 0.0

    def quantile(q: float) -> float:
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        return ordered[low] + (ordered[high] - ordered[low]) \
            * (position - low)

    return quantile(0.75) - quantile(0.25)


def _summarize(values: list[float]) -> dict[str, object]:
    return {"values": values, "median": _median(values),
            "iqr": _iqr(values)}


def _cell_trace(workload: str, scale: str):
    """Build a matrix cell's trace: scenario names route to the
    scenario-corpus builder (default seed), everything else to the
    workload suite."""
    from ..scenarios import SCENARIOS
    if workload in SCENARIOS:
        return suite.build_scenario_trace(workload, scale)
    return suite.build_trace(workload, scale)


def _bench_cell(cell: BenchCell, warmup: int, repeats: int,
                ) -> dict[str, object]:
    trace = _cell_trace(cell.workload, cell.scale)
    config = preset_machine(cell.config)
    for _ in range(warmup):
        OoOCore(config).run(trace)
    samples: list[float] = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = OoOCore(config).run(trace)
        samples.append(time.perf_counter() - start)
    seconds = _summarize(samples)
    return {
        "label": cell.label,
        "workload": cell.workload,
        "scale": cell.scale,
        "config": cell.config,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "used_fastpath": result.used_fastpath,
        "fastpath_reason": result.fastpath_reason,
        "seconds": seconds,
        "kips": _summarize([result.instructions / 1000 / s
                            for s in samples]),
        "cps": result.cycles / seconds["median"],
    }


def _time_trace_gen(matrix: tuple[BenchCell, ...]) -> list[dict]:
    """Cold and warm trace-generation timings per distinct workload.

    Cold = functional simulation from scratch: the in-memory tier is
    cleared and the disk tier disabled for the duration, then both are
    restored (the cold build is left in memory, so subsequent cells
    still get cache hits)."""
    timings = []
    previous_dir = suite.trace_cache_dir()
    for workload, scale in dict.fromkeys((cell.workload, cell.scale)
                                         for cell in matrix):
        suite.set_trace_cache_dir(None)
        suite.clear_trace_cache()
        try:
            start = time.perf_counter()
            _cell_trace(workload, scale)
            cold = time.perf_counter() - start
        finally:
            suite.set_trace_cache_dir(previous_dir)
        start = time.perf_counter()
        trace = _cell_trace(workload, scale)
        warm = time.perf_counter() - start
        timings.append({"label": f"{workload}@{scale}",
                        "workload": workload, "scale": scale,
                        "instructions": len(trace),
                        "cold_s": cold, "warm_s": warm})
    return timings


def run_bench(quick: bool = False, repeats: int | None = None,
              warmup: int = 1) -> dict[str, object]:
    """Run the benchmark matrix and assemble a ``repro.bench/1``
    manifest.  ``repeats`` defaults to 3 for ``--quick`` and 5
    otherwise."""
    matrix = QUICK_MATRIX if quick else FULL_MATRIX
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup cannot be negative")
    start = time.perf_counter()
    results = [_bench_cell(cell, warmup, repeats) for cell in matrix]
    tracegen = _time_trace_gen(matrix)
    return {
        "schema": BENCH_SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "code_version": code_version(),
        "mode": "quick" if quick else "full",
        "settings": {"repeats": repeats, "warmup": warmup},
        "matrix": [{"workload": cell.workload, "scale": cell.scale,
                    "config": cell.config} for cell in matrix],
        "results": results,
        "tracegen": tracegen,
        "host": {
            "hostname": socket.gethostname(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "wall_time_s": time.perf_counter() - start,
        },
    }
