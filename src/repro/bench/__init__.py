"""Simulator-performance benchmarking: the ``repro bench`` harness.

This package measures the **simulator's own** throughput — how fast
the host machine pushes simulated instructions and cycles — so a
change to the timing core's hot loop shows up as a number, not a
hunch.  It is the host-performance counterpart to ``repro
experiment``'s simulated-performance tables:

* :mod:`repro.bench.harness` runs a pinned matrix of workloads ×
  machine configurations with warmup and repeats, records
  median/IQR kilo-instructions-per-second (kIPS) and cycles-per-second
  figures plus cold/warm trace-generation timings, and assembles a
  versioned ``repro.bench/1`` manifest (``BENCH_<host>_<date>.json``
  by convention).
* :mod:`repro.bench.compare` validates manifests and diffs two of
  them: simulated results (instructions, cycles, the matrix itself)
  must match **exactly**; host throughput compares within a relative
  tolerance.  ``repro bench --compare baseline.json`` builds the
  regression-gating workflow on top.

See the "Simulator performance" section of ``docs/OBSERVABILITY.md``.
"""

from .compare import (
    compare_bench,
    default_bench_path,
    render_bench_comparison,
    validate_bench_manifest,
)
from .harness import (
    BENCH_SCHEMA,
    FULL_MATRIX,
    QUICK_MATRIX,
    run_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "FULL_MATRIX",
    "QUICK_MATRIX",
    "compare_bench",
    "default_bench_path",
    "render_bench_comparison",
    "run_bench",
    "validate_bench_manifest",
]
