"""Setup shim so legacy (non-PEP-660) editable installs work offline."""
from setuptools import setup

setup()
