"""Unit tests for the victim cache and its D-cache integration."""

import pytest

from repro.mem import CacheGeometry, VictimCache
from repro.stats import Stats
from tests.test_mem_dcache import make_dcache


class TestVictimCacheUnit:
    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            VictimCache(0)

    def test_insert_and_extract(self):
        vc = VictimCache(4)
        vc.insert(10, dirty=False)
        assert vc.extract(10) is False
        assert vc.extract(10) is None  # gone after extraction

    def test_extract_preserves_dirty(self):
        vc = VictimCache(4)
        vc.insert(10, dirty=True)
        assert vc.extract(10) is True

    def test_lru_overflow(self):
        vc = VictimCache(2)
        assert vc.insert(1, False) is None
        assert vc.insert(2, False) is None
        pushed = vc.insert(3, True)
        assert pushed == (1, False)
        assert vc.contents() == [2, 3]

    def test_reinsert_merges_dirty_and_refreshes(self):
        vc = VictimCache(2)
        vc.insert(1, dirty=False)
        vc.insert(2, dirty=False)
        vc.insert(1, dirty=True)     # refresh + dirty merge
        pushed = vc.insert(3, False)
        assert pushed == (2, False)  # 1 was refreshed, 2 is LRU
        assert vc.extract(1) is True

    def test_stats(self):
        stats = Stats()
        vc = VictimCache(2, stats=stats)
        vc.insert(1, False)
        vc.extract(1)
        vc.extract(9)
        assert stats["victim.inserts"] == 1
        assert stats["victim.hits"] == 1
        assert stats["victim.misses"] == 1

    def test_full_buffer_overflow_returns_dirty_victim(self):
        # The caller owns the writeback of a pushed-out dirty line; a
        # full-buffer insert must hand it back, not drop it.
        vc = VictimCache(2)
        vc.insert(1, dirty=True)
        vc.insert(2, dirty=False)
        assert vc.insert(3, dirty=False) == (1, True)

    def test_occupancy_never_exceeds_capacity(self):
        stats = Stats()
        vc = VictimCache(2, stats=stats)
        for line in range(10):
            vc.insert(line, dirty=line % 2 == 0)
            assert len(vc) <= 2
        assert stats["victim.overflows"] == 8

    def test_reinsert_when_full_does_not_overflow(self):
        vc = VictimCache(2)
        vc.insert(1, False)
        vc.insert(2, False)
        assert vc.insert(1, True) is None   # refresh, not a new entry
        assert len(vc) == 2


class TestVictimIntegration:
    def _conflict_dcache(self, victim_entries=4):
        # 2 sets, direct-mapped: lines 0 and 2 conflict.
        return make_dcache(
            geometry=CacheGeometry(size=64, line_size=32, assoc=1),
            victim_entries=victim_entries, ports=4, mshrs=4)

    def test_conflict_miss_recovered_from_victim(self):
        dcache = self._conflict_dcache()
        first = dcache.load_access(0)       # cold miss
        dcache.begin_cycle(first.ready + 1)
        second = dcache.load_access(2)      # evicts 0 into the VC
        dcache.begin_cycle(second.ready + 1)
        back = dcache.load_access(0)        # VC hit: short latency
        assert back.ready == second.ready + 1 + 2  # victim_latency = 2
        assert dcache.stats["victim.hits"] == 1

    def test_dirty_state_survives_the_round_trip(self):
        dcache = self._conflict_dcache()
        dcache.store_access(0)              # dirty line 0
        dcache.begin_cycle(200)
        dcache.load_access(2)               # 0 -> victim cache (dirty)
        dcache.begin_cycle(400)
        dcache.load_access(0)               # back from VC, still dirty
        dcache.begin_cycle(600)
        dcache.load_access(2)               # 0 evicted again -> VC dirty
        dcache.begin_cycle(800)
        # Push line 0 out of the VC by filling it with other victims.
        for line in (4, 6, 8, 10, 12, 14, 16, 18):
            dcache.begin_cycle(800 + line * 100)
            dcache.load_access(line)
        assert dcache.stats["dcache.writebacks"] >= 1

    def test_no_victim_cache_pays_l2(self):
        dcache = self._conflict_dcache(victim_entries=0)
        first = dcache.load_access(0)
        dcache.begin_cycle(first.ready + 1)
        second = dcache.load_access(2)
        dcache.begin_cycle(1000)
        back = dcache.load_access(0)
        assert back.ready >= 1000 + 10      # at least the L2 latency
