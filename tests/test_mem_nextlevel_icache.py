"""Unit tests for the shared next level (L2 + memory) and the I-cache."""

from repro.mem import (
    CacheGeometry,
    ICacheConfig,
    ICacheSystem,
    NextLevel,
    NextLevelConfig,
)
from repro.stats import Stats


def make_next_level(hit=10, mem=50, occ=2):
    return NextLevel(NextLevelConfig(
        geometry=CacheGeometry(size=4 * 1024, line_size=32, assoc=4),
        hit_latency=hit, memory_latency=mem, occupancy=occ))


class TestNextLevel:
    def test_cold_miss_latency(self):
        nl = make_next_level()
        assert nl.request(1, cycle=0) == 60

    def test_hit_latency_after_fill(self):
        nl = make_next_level()
        nl.request(1, cycle=0)
        assert nl.request(1, cycle=100) == 110

    def test_occupancy_serialises_bursts(self):
        nl = make_next_level(occ=3)
        nl.request(1, cycle=0)
        nl.request(1, cycle=100)
        nl.request(1, cycle=200)
        # Three back-to-back requests at cycle 300 queue behind each other.
        first = nl.request(1, cycle=300)
        second = nl.request(1, cycle=300)
        third = nl.request(1, cycle=300)
        assert first == 310
        assert second == 313
        assert third == 316

    def test_queue_delay_counted(self):
        nl = make_next_level(occ=2)
        nl.request(1, 0)
        nl.request(2, 0)
        assert nl.stats["l2.queue_delay"] == 2

    def test_writeback_marks_resident_line_dirty(self):
        nl = make_next_level()
        nl.request(1, 0)
        nl.writeback(1, 10)
        assert nl.stats["l2.l1_writebacks"] == 1
        # Force an eviction of line 1 to see the dirty writeback.
        # 4KB/32B/4-way = 32 sets: lines 1, 33, 65, 97, 129 share a set.
        for line in (33, 65, 97, 129):
            nl.request(line, 100)
        assert nl.stats["l2.writebacks"] >= 1

    def test_writeback_of_absent_line_installs_dirty(self):
        nl = make_next_level()
        nl.writeback(7, 0)
        assert nl.cache.lookup(7)

    def test_hit_miss_counters(self):
        nl = make_next_level()
        nl.request(1, 0)
        nl.request(1, 100)
        assert nl.stats["l2.misses"] == 1
        assert nl.stats["l2.hits"] == 1


class TestICache:
    def _icache(self):
        stats = Stats()
        nl = NextLevel(NextLevelConfig(
            geometry=CacheGeometry(size=4 * 1024, line_size=32, assoc=4),
            hit_latency=10, memory_latency=50, occupancy=2), stats=stats)
        config = ICacheConfig(
            geometry=CacheGeometry(size=512, line_size=32, assoc=2),
            fetch_bytes=16)
        return ICacheSystem(config, nl, stats=stats)

    def test_block_of(self):
        icache = self._icache()
        assert icache.block_of(0) == 0
        assert icache.block_of(16) == 1
        assert icache.block_of(0x1000) == 0x100

    def test_hit_is_fetchable_now(self):
        icache = self._icache()
        ready = icache.fetch(0x1000, cycle=0)     # cold miss
        assert ready == 60
        assert icache.fetch(0x1000, cycle=100) == 100

    def test_pending_fill_returns_fill_time(self):
        icache = self._icache()
        ready = icache.fetch(0x1000, 0)
        assert icache.fetch(0x1008, 5) == ready   # same line, in flight
        assert icache.stats["icache.pending_hits"] == 1

    def test_both_blocks_of_a_line_hit(self):
        icache = self._icache()
        ready = icache.fetch(0x1000, 0)
        assert icache.fetch(0x1010, ready + 1) == ready + 1

    def test_miss_counters(self):
        icache = self._icache()
        icache.fetch(0x1000, 0)
        icache.fetch(0x2000, 200)
        icache.fetch(0x1000, 400)
        assert icache.stats["icache.misses"] == 2
        assert icache.stats["icache.hits"] == 1
