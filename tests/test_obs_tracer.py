"""Tests for the structured event tracer and its readers."""

import gzip
import io
import json

from repro.core import OoOCore
from repro.obs import JsonlTracer, NULL_TRACER, Tracer, iter_events, \
    summarize_events
from repro.presets import machine
from repro.workloads import build_trace


class TestNullTracer:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(0, "anything", junk=1)  # must be a no-op
        NULL_TRACER.close()

    def test_context_manager(self):
        with Tracer() as tracer:
            assert tracer.enabled is False


class TestJsonlTracer:
    def test_writes_compact_jsonl(self):
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer)
        tracer.emit(5, "wb.add", line=3, merged=True)
        tracer.close()
        assert buffer.getvalue() == \
            '{"cycle":5,"event":"wb.add","line":3,"merged":true}\n'
        assert tracer.emitted == 1

    def test_event_filter(self):
        buffer = io.StringIO()
        tracer = JsonlTracer(buffer, events={"keep"})
        tracer.emit(0, "drop", x=1)
        tracer.emit(1, "keep", x=2)
        tracer.close()
        records = [json.loads(line) for line in
                   buffer.getvalue().splitlines()]
        assert [r["event"] for r in records] == ["keep"]
        assert tracer.emitted == 1

    def test_gzip_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl.gz")
        with JsonlTracer(path) as tracer:
            tracer.emit(1, "e")
        with gzip.open(path, "rt") as handle:
            assert json.loads(handle.read())["event"] == "e"
        assert list(iter_events(path)) == [{"cycle": 1, "event": "e"}]


class TestReaders:
    def _capture(self, tmp_path):
        path = str(tmp_path / "ev.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.emit(0, "a", n=1)
            tracer.emit(5, "b")
            tracer.emit(9, "a", n=2)
        return path

    def test_iter_filters(self, tmp_path):
        path = self._capture(tmp_path)
        assert len(list(iter_events(path))) == 3
        assert [r["n"] for r in iter_events(path, events={"a"})] == [1, 2]
        assert [r["cycle"] for r in iter_events(path, since=1)] == [5, 9]
        assert [r["cycle"] for r in iter_events(path, until=5)] == [0, 5]

    def test_pc_filters(self, tmp_path):
        path = str(tmp_path / "pc.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.emit(0, "fetch.mispredict", pc=0x1000)
            tracer.emit(1, "branch.resolve", pc=0x2000)
            tracer.emit(2, "commit")  # no pc field: dropped by PC filters
            tracer.emit(3, "fetch.mispredict", pc=0x3000)
        assert [r["pc"] for r in iter_events(path, pc=0x2000)] \
            == [0x2000]
        assert [r["pc"] for r in
                iter_events(path, pc_range=(0x1000, 0x2000))] \
            == [0x1000, 0x2000]
        assert [r["pc"] for r in
                iter_events(path, pc_range=(None, 0x2000))] \
            == [0x1000, 0x2000]
        assert [r["pc"] for r in
                iter_events(path, pc_range=(0x2000, None))] \
            == [0x2000, 0x3000]
        summary = summarize_events(path, pc=0x3000)
        assert summary.total == 1

    def test_summary(self, tmp_path):
        summary = summarize_events(self._capture(tmp_path))
        assert summary.total == 3
        assert summary.counts == {"a": 2, "b": 1}
        assert (summary.first_cycle, summary.last_cycle) == (0, 9)
        text = summary.render()
        assert "3 events over cycles 0..9" in text

    def test_empty_summary(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        assert summarize_events(path).render() == "(no events)"


class TestPipelineIntegration:
    def test_traced_run_matches_untraced(self, tmp_path):
        """Tracing must observe, never perturb, the simulation."""
        trace = build_trace("memops", "tiny")
        config = machine("1P-wide+LB+SC")
        baseline = OoOCore(config).run(trace)
        path = str(tmp_path / "run.jsonl")
        tracer = JsonlTracer(path)
        traced = OoOCore(config, tracer=tracer).run(trace)
        tracer.close()
        assert traced.cycles == baseline.cycles
        assert traced.ipc == baseline.ipc
        assert dict(traced.stats.as_dict()) == dict(baseline.stats.as_dict())
        summary = summarize_events(path)
        assert summary.total == tracer.emitted > 0
        # The wired layers all show up in one memory-heavy run.
        for event in ("commit", "stall", "lsq.load", "dcache.load",
                      "wb.add"):
            assert summary.counts.get(event), f"missing {event} events"

    def test_stall_events_match_ledger(self, tmp_path):
        trace = build_trace("stream", "tiny")
        path = str(tmp_path / "stalls.jsonl")
        tracer = JsonlTracer(path, events={"stall"})
        core = OoOCore(machine("1P"), tracer=tracer)
        core.run(trace)
        tracer.close()
        emitted = sum(r["lost"] for r in iter_events(path))
        assert emitted == core.ledger.total_lost
