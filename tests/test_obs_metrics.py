"""Tests for interval time-series telemetry.

The headline acceptance property mirrors the stall ledger's: for every
workload/configuration pair of the F2 experiment, every interval series
is a partition of the end-of-run value (cycles, committed instructions,
every tracked counter, every occupancy histogram).
"""

import pytest

from repro.core import OoOCore
from repro.experiments.runner import ROW_NAMES, run_one, suite_traces
from repro.obs import IntervalMetrics
from repro.obs.metrics import (DEFAULT_METRICS_INTERVAL,
                               OCCUPANCY_STRUCTURES, TRACKED_COUNTERS)
from repro.presets import (BEST_SINGLE_PORT, DUAL_PORT, STRONG_DUAL_PORT,
                          machine)
from repro.stats import Stats

F2_CONFIGS = ("1P", BEST_SINGLE_PORT, DUAL_PORT, STRONG_DUAL_PORT)


class TestCollectorUnit:
    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            IntervalMetrics(Stats(), ports=1, interval=0)
        with pytest.raises(ValueError):
            IntervalMetrics(Stats(), ports=0)

    def test_default_interval(self):
        metrics = IntervalMetrics(Stats(), ports=2)
        assert metrics.interval == DEFAULT_METRICS_INTERVAL

    def test_closes_interval_on_boundary(self):
        stats = Stats()
        metrics = IntervalMetrics(stats, ports=1, interval=4)
        committed = 0
        for cycle in range(8):
            committed += 1
            stats.inc("dcache.port_uses")
            metrics.on_cycle(cycle, committed, rob=2, iq=1, lq=0, sq=0,
                             wb=0, ports_used=1, mshr_busy=0)
        assert len(metrics.intervals) == 2
        first, second = metrics.intervals
        assert (first.start_cycle, first.cycles) == (0, 4)
        assert (second.start_cycle, second.cycles) == (4, 4)
        assert first.committed == 4 and second.committed == 4
        assert first.counters["dcache.port_uses"] == 4
        assert first.ipc == 1.0

    def test_finalize_closes_partial_interval(self):
        stats = Stats()
        metrics = IntervalMetrics(stats, ports=1, interval=100)
        for cycle in range(7):
            metrics.on_cycle(cycle, cycle + 1, 1, 1, 0, 0, 0, 0, 0)
        assert not metrics.intervals
        metrics.finalize(7)
        assert len(metrics.intervals) == 1
        assert metrics.intervals[0].cycles == 7
        metrics.finalize(7)  # idempotent on an already-closed run
        assert len(metrics.intervals) == 1

    def test_occupancy_means_and_histograms(self):
        metrics = IntervalMetrics(Stats(), ports=2, interval=2)
        metrics.on_cycle(0, 0, rob=4, iq=2, lq=1, sq=1, wb=0,
                         ports_used=2, mshr_busy=1)
        metrics.on_cycle(1, 0, rob=6, iq=2, lq=1, sq=1, wb=2,
                         ports_used=0, mshr_busy=1)
        interval = metrics.intervals[0]
        assert interval.occupancy["rob"] == 5.0
        assert interval.occupancy["wb"] == 1.0
        assert metrics.histograms["rob"].as_dict() == {4: 1, 6: 1}
        assert metrics.histograms["ports"].as_dict() == {0: 1, 2: 1}

    def test_port_utilization(self):
        stats = Stats()
        metrics = IntervalMetrics(stats, ports=2, interval=2)
        stats.inc("dcache.port_uses", 3)
        metrics.on_cycle(0, 0, 0, 0, 0, 0, 0, 2, 0)
        metrics.on_cycle(1, 0, 0, 0, 0, 0, 0, 1, 0)
        assert metrics.port_utilization(metrics.intervals[0]) == 0.75

    def test_series_and_summary(self):
        stats = Stats()
        metrics = IntervalMetrics(stats, ports=1, interval=1)
        stats.inc("lb.hits", 2)
        metrics.on_cycle(0, 1, 0, 0, 0, 0, 0, 1, 0)
        stats.inc("lb.hits", 3)
        metrics.on_cycle(1, 2, 0, 0, 0, 0, 0, 0, 0)
        assert metrics.series("lb.hits") == [2, 3]
        assert "2 intervals" in metrics.summary()
        assert IntervalMetrics(Stats(), ports=1).summary() == \
            "no intervals recorded"

    def test_as_dict_shape(self):
        stats = Stats()
        metrics = IntervalMetrics(stats, ports=2, interval=4)
        for cycle in range(6):
            metrics.on_cycle(cycle, cycle, 1, 1, 0, 0, 0, 1, 0)
        metrics.finalize(6)
        snapshot = metrics.as_dict()
        assert snapshot["n_intervals"] == 2
        assert snapshot["cycles"] == [4, 2]
        assert len(snapshot["ipc"]) == 2
        assert set(snapshot["counters"]) == set(TRACKED_COUNTERS)
        assert set(snapshot["occupancy"]) == set(OCCUPANCY_STRUCTURES)
        assert snapshot["occupancy"]["rob"]["samples"] == 6

    def test_conservation_detects_drift(self):
        stats = Stats()
        metrics = IntervalMetrics(stats, ports=1, interval=4)
        metrics.on_cycle(0, 1, 0, 0, 0, 0, 0, 0, 0)
        metrics.finalize(1)
        assert metrics.check_conservation(cycles=1, instructions=1) == []
        # A counter bumped after the last close is unaccounted drift.
        stats.inc("dcache.port_uses")
        problems = metrics.check_conservation(cycles=1, instructions=1)
        assert any("dcache.port_uses" in p for p in problems)
        assert metrics.check_conservation(cycles=2, instructions=3)


@pytest.fixture(scope="module")
def f2_tiny_metrics():
    """Run the full F2 grid at tiny scale with telemetry enabled."""
    traces = suite_traces("tiny")
    runs = {}
    for config_name in F2_CONFIGS:
        config = machine(config_name)
        for workload, trace in traces.items():
            result = OoOCore(config, metrics_interval=256).run(trace)
            runs[(workload, config_name)] = result
    return runs


class TestConservationOnF2Grid:
    """Acceptance: every F2 (workload, config) pair's interval series
    partition the end-of-run counters exactly."""

    @pytest.mark.parametrize("workload", ROW_NAMES)
    @pytest.mark.parametrize("config_name", F2_CONFIGS)
    def test_intervals_conserve(self, f2_tiny_metrics, workload,
                                config_name):
        result = f2_tiny_metrics[(workload, config_name)]
        problems = result.metrics.check_conservation(
            result.cycles, result.instructions)
        assert problems == [], (
            f"{workload} on {config_name}: {problems}")

    @pytest.mark.parametrize("config_name", F2_CONFIGS)
    def test_series_cover_the_run(self, f2_tiny_metrics, config_name):
        result = f2_tiny_metrics[("stream", config_name)]
        metrics = result.metrics
        assert metrics.total_cycles == result.cycles
        assert metrics.total_committed == result.instructions
        assert all(i.cycles == 256 for i in metrics.intervals[:-1])
        assert 0 < metrics.intervals[-1].cycles <= 256

    def test_port_utilization_bounded(self, f2_tiny_metrics):
        for result in f2_tiny_metrics.values():
            metrics = result.metrics
            for interval in metrics.intervals:
                assert 0.0 <= metrics.port_utilization(interval) <= 1.0


class TestTelemetryIsInert:
    def test_off_by_default_and_identical_results(self):
        trace = suite_traces("tiny", names=("memops",))["memops"]
        config = machine("2P")
        plain = OoOCore(config).run(trace)
        assert plain.metrics is None
        sampled = OoOCore(config, metrics_interval=128).run(trace)
        assert plain.cycles == sampled.cycles
        assert plain.stats.as_dict() == sampled.stats.as_dict()

    def test_run_one_threads_interval(self):
        trace = suite_traces("tiny", names=("memops",))["memops"]
        result = run_one(trace, machine("1P"), metrics_interval=512)
        assert result.metrics is not None
        assert result.metrics.interval == 512
        assert run_one(trace, machine("1P")).metrics is None


class TestReportIntegration:
    def test_report_carries_and_validates_metrics(self):
        from repro.obs import build_run_report, validate_run_report
        trace = suite_traces("tiny", names=("stream",))["stream"]
        config = machine("2P")
        result = OoOCore(config, metrics_interval=256).run(trace)
        report = build_run_report(result, config, workload="stream",
                                  scale="tiny", wall_time=0.1)
        validate_run_report(report)
        metrics = report["metrics"]
        assert sum(metrics["cycles"]) == report["cycles"]
        assert sum(metrics["committed"]) == report["instructions"]

    def test_validator_rejects_nonconserving_metrics(self):
        import copy

        from repro.obs import (SchemaError, build_run_report,
                               validate_run_report)
        trace = suite_traces("tiny", names=("stream",))["stream"]
        config = machine("2P")
        result = OoOCore(config, metrics_interval=256).run(trace)
        report = build_run_report(result, config, wall_time=0.1)
        broken = copy.deepcopy(report)
        broken["metrics"]["cycles"][0] += 1
        with pytest.raises(SchemaError, match="sum to run cycles"):
            validate_run_report(broken)
        broken = copy.deepcopy(report)
        del broken["metrics"]["port_util"]
        with pytest.raises(SchemaError, match="port_util"):
            validate_run_report(broken)


class TestEngineAggregation:
    def test_parallel_reports_carry_identical_metrics(self):
        """Per-job telemetry crosses the worker-pool boundary and the
        captured series are byte-identical to a serial run."""
        import json

        from repro.experiments.engine import Engine, SimJob, TraceSpec
        from repro.experiments.runner import capture_reports
        jobs = [SimJob((name, cfg), TraceSpec.workload(name, "tiny"),
                       machine(cfg))
                for name in ("memops", "qsort")
                for cfg in ("1P", "2P")]
        captured = {}
        for workers in (1, 2):
            engine = Engine(jobs=workers, metrics_interval=256)
            with capture_reports() as reports:
                results = engine.execute(jobs)
            assert len(results) == len(jobs)
            for report in reports:
                assert report["metrics"] is not None
                report["host"] = None  # the only nondeterministic part
            captured[workers] = json.dumps(reports, sort_keys=True)
        assert captured[1] == captured[2]
