"""Unit tests for the load/store queue port scheduler."""

from repro.core.config import CoreConfig
from repro.core.lsq import LoadStoreQueue
from repro.core.uop import Uop
from repro.isa import OpClass
from repro.mem import (
    CacheGeometry,
    DataCacheSystem,
    DCacheConfig,
    LineBufferFill,
    NextLevel,
    NextLevelConfig,
)
from repro.stats import Stats
from repro.trace.record import TraceRecord


def make_lsq(combine=False, ports=1, port_width=8, line_buffer=False,
             speculative=False, max_combine=4):
    stats = Stats()
    next_level = NextLevel(NextLevelConfig(), stats=stats)
    dconfig = DCacheConfig(
        geometry=CacheGeometry(size=4 * 1024, line_size=32, assoc=2),
        ports=ports, port_width=port_width, combine_loads=combine,
        line_buffer_entries=1 if line_buffer else 0,
        line_buffer_fill=(LineBufferFill.ON_ACCESS if line_buffer
                          else LineBufferFill.NONE))
    dcache = DataCacheSystem(dconfig, next_level, stats=stats)
    core = CoreConfig(speculative_loads=speculative,
                      max_combine=max_combine)
    lsq = LoadStoreQueue(core, dcache, stats=stats)
    dcache.begin_cycle(0)
    return lsq, dcache


def mem_uop(seq, addr, size=8, is_load=True, addr_known=True,
            lsq=None):
    record = TraceRecord(pc=0x1000 + 4 * seq,
                         opclass=OpClass.LOAD if is_load else OpClass.STORE,
                         mem_addr=addr, mem_size=size, is_load=is_load,
                         is_store=not is_load)
    uop = Uop(record, seq)
    if addr_known and lsq is not None:
        lsq.resolve_address(uop)
    return uop


class _Completions:
    def __init__(self):
        self.done: dict[int, int] = {}

    def __call__(self, uop, ready):
        self.done[uop.seq] = ready


class TestBasicScheduling:
    def test_load_uses_port(self):
        lsq, dcache = make_lsq()
        done = _Completions()
        load = mem_uop(0, 0x100, lsq=lsq)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert load.mem_done
        assert 0 in done.done
        assert dcache.stats["lsq.port_loads"] == 1

    def test_unresolved_address_waits(self):
        lsq, _ = make_lsq()
        done = _Completions()
        load = mem_uop(0, 0x100, addr_known=False)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert not load.mem_done

    def test_port_exhaustion_leaves_younger_loads(self):
        lsq, _ = make_lsq(ports=1)
        done = _Completions()
        loads = [mem_uop(i, 0x100 + 64 * i, lsq=lsq) for i in range(3)]
        for load in loads:
            lsq.add_load(load)
        lsq.schedule(0, done)
        assert loads[0].mem_done
        assert not loads[1].mem_done and not loads[2].mem_done

    def test_oldest_load_gets_the_port(self):
        lsq, _ = make_lsq(ports=1)
        done = _Completions()
        young = mem_uop(5, 0x500, lsq=lsq)
        old = mem_uop(1, 0x100, lsq=lsq)
        lsq.add_load(old)
        lsq.add_load(young)
        lsq.schedule(0, done)
        assert old.mem_done and not young.mem_done


class TestOrdering:
    def test_load_blocked_by_unknown_older_store_address(self):
        lsq, _ = make_lsq()
        done = _Completions()
        store = mem_uop(0, 0x100, is_load=False, addr_known=False)
        load = mem_uop(1, 0x200, lsq=lsq)
        lsq.add_store(store)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert not load.mem_done
        assert lsq.stats["lsq.order_stalls"] == 1

    def test_speculative_loads_pass_unknown_stores(self):
        lsq, _ = make_lsq(speculative=True)
        done = _Completions()
        store = mem_uop(0, 0x100, is_load=False, addr_known=False)
        load = mem_uop(1, 0x200, lsq=lsq)
        lsq.add_store(store)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert load.mem_done

    def test_load_older_than_store_proceeds(self):
        lsq, _ = make_lsq()
        done = _Completions()
        load = mem_uop(0, 0x200, lsq=lsq)
        store = mem_uop(1, 0x100, is_load=False, addr_known=False)
        lsq.add_load(load)
        lsq.add_store(store)
        lsq.schedule(0, done)
        assert load.mem_done


class TestForwarding:
    def _store_with_data(self, lsq, seq, addr, size=8, data_ready=True):
        store = mem_uop(seq, addr, size=size, is_load=False, lsq=lsq)
        store.data_waiting = 0 if data_ready else 1
        return store

    def test_full_coverage_forwards_without_port(self):
        lsq, dcache = make_lsq()
        done = _Completions()
        store = self._store_with_data(lsq, 0, 0x100)
        load = mem_uop(1, 0x100, lsq=lsq)
        lsq.add_store(store)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert load.mem_done
        assert done.done[1] == 1
        assert dcache.stats["lsq.sq_forwards"] == 1
        assert dcache.stats["dcache.port_uses"] == 0

    def test_forward_waits_for_store_data(self):
        lsq, _ = make_lsq()
        done = _Completions()
        store = self._store_with_data(lsq, 0, 0x100, data_ready=False)
        load = mem_uop(1, 0x100, lsq=lsq)
        lsq.add_store(store)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert not load.mem_done
        assert lsq.stats["lsq.sq_waits"] == 1

    def test_partial_overlap_waits(self):
        lsq, _ = make_lsq()
        done = _Completions()
        store = self._store_with_data(lsq, 0, 0x100, size=4)
        load = mem_uop(1, 0x100, size=8, lsq=lsq)
        lsq.add_store(store)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert not load.mem_done

    def test_newest_matching_store_forwards(self):
        lsq, _ = make_lsq()
        done = _Completions()
        old_store = self._store_with_data(lsq, 0, 0x100, data_ready=False)
        new_store = self._store_with_data(lsq, 1, 0x100)
        load = mem_uop(2, 0x100, lsq=lsq)
        lsq.add_store(old_store)
        lsq.add_store(new_store)
        lsq.add_load(load)
        lsq.schedule(0, done)
        assert load.mem_done  # newest store has its data

    def test_write_buffer_forward_and_conflict(self):
        lsq, dcache = make_lsq()
        done = _Completions()
        dcache.buffer_store(dcache.line_of(0x100),
                            dcache.byte_mask(0x100, 8))
        covered = mem_uop(0, 0x100, lsq=lsq)
        partial = mem_uop(1, 0x104, size=4, lsq=lsq)  # covered too
        lsq.add_load(covered)
        lsq.add_load(partial)
        lsq.schedule(0, done)
        assert covered.mem_done and partial.mem_done
        assert dcache.stats["lsq.wb_forwards"] == 2


class TestLineBuffer:
    def test_lb_hit_skips_port(self):
        lsq, dcache = make_lsq(line_buffer=True, ports=1)
        done = _Completions()
        first = mem_uop(0, 0x100, lsq=lsq)
        lsq.add_load(first)
        lsq.schedule(0, done)           # captures the line (miss)
        ready = done.done[0]
        dcache.begin_cycle(ready + 1)
        second = mem_uop(1, 0x108, lsq=lsq)   # same line
        third = mem_uop(2, 0x400, lsq=lsq)    # different line
        lsq.loads.clear()
        lsq.add_load(second)
        lsq.add_load(third)
        lsq.schedule(ready + 1, done)
        assert second.mem_done and third.mem_done
        assert dcache.stats["lsq.lb_loads"] == 1


class TestCombining:
    def _ready_loads(self, lsq, addrs, start_seq=0):
        loads = []
        for offset, addr in enumerate(addrs):
            load = mem_uop(start_seq + offset, addr, lsq=lsq)
            lsq.add_load(load)
            loads.append(load)
        return loads

    def test_same_chunk_loads_share_one_port(self):
        lsq, dcache = make_lsq(combine=True, port_width=16, ports=1)
        done = _Completions()
        loads = self._ready_loads(lsq, [0x100, 0x108])
        lsq.schedule(0, done)
        assert all(load.mem_done for load in loads)
        assert dcache.stats["dcache.port_uses"] == 1
        assert dcache.stats["lsq.combined_loads"] == 1

    def test_different_chunks_need_two_ports(self):
        lsq, dcache = make_lsq(combine=True, port_width=16, ports=1)
        done = _Completions()
        loads = self._ready_loads(lsq, [0x100, 0x110])
        lsq.schedule(0, done)
        assert loads[0].mem_done and not loads[1].mem_done

    def test_no_combining_without_flag(self):
        lsq, dcache = make_lsq(combine=False, port_width=16, ports=1)
        done = _Completions()
        loads = self._ready_loads(lsq, [0x100, 0x108])
        lsq.schedule(0, done)
        assert loads[0].mem_done and not loads[1].mem_done

    def test_max_combine_splits_batches(self):
        lsq, dcache = make_lsq(combine=True, port_width=32, ports=2,
                               max_combine=2)
        done = _Completions()
        self._ready_loads(lsq, [0x100, 0x108, 0x110, 0x118])
        lsq.schedule(0, done)
        assert dcache.stats["dcache.port_uses"] == 2
        assert dcache.stats["lsq.port_loads"] == 4

    def test_combined_loads_get_same_ready_time(self):
        lsq, _ = make_lsq(combine=True, port_width=16, ports=1)
        done = _Completions()
        self._ready_loads(lsq, [0x100, 0x108])
        lsq.schedule(0, done)
        assert done.done[0] == done.done[1]


class TestOccupancy:
    def test_queue_capacity_flags(self):
        lsq, _ = make_lsq()
        assert not lsq.lq_full and not lsq.sq_full
        for seq in range(lsq.config.lq_size):
            lsq.add_load(mem_uop(seq, 0x100 + 8 * seq))
        assert lsq.lq_full

    def test_retire_frees_slots(self):
        lsq, _ = make_lsq()
        load = mem_uop(0, 0x100)
        store = mem_uop(1, 0x200, is_load=False)
        lsq.add_load(load)
        lsq.add_store(store)
        lsq.retire_load(load)
        lsq.retire_store(store)
        assert not lsq.loads and not lsq.stores
