"""Microarchitectural invariant checker tests.

Clean simulations must break no invariant on any configuration; an
intentionally injected LSQ ordering bug must be caught; and the
zero-overhead-when-off wiring (``validator=None`` default plus the
``REPRO_VALIDATE`` escape hatch) must behave as documented.
"""

import pytest

from repro.core import OoOCore
from repro.core import pipeline
from repro.core.lsq import LoadStoreQueue
from repro.presets import CONFIG_NAMES, machine
from repro.validate import (
    MAX_VIOLATIONS,
    InvariantChecker,
    ValidationError,
    ValidationSuite,
    Violation,
)
from repro.workloads import build_trace


@pytest.fixture(scope="module")
def qsort_trace():
    return build_trace("qsort", "tiny")


def _inject_lsq_bug(monkeypatch):
    """Break load-queue age ordering: dispatch inserts at the head."""
    monkeypatch.setattr(LoadStoreQueue, "add_load",
                        lambda self, uop: self.loads.insert(0, uop))


class TestCleanRuns:
    @pytest.mark.parametrize("config", CONFIG_NAMES)
    def test_no_violations_on_any_config(self, config, qsort_trace):
        checker = InvariantChecker()
        OoOCore(machine(config), validator=checker).run(qsort_trace)
        assert checker.ok, checker.violations

    def test_core_defaults_to_no_validator(self, monkeypatch, qsort_trace):
        # Pin the env switch off so the assertion holds even when the
        # suite itself runs under REPRO_VALIDATE=1.
        monkeypatch.setattr(pipeline, "_ENV_VALIDATE", False)
        core = OoOCore(machine("1P"))
        assert core._validate is None


class TestInjectedBug:
    def test_lsq_ordering_bug_is_caught(self, monkeypatch, qsort_trace):
        _inject_lsq_bug(monkeypatch)
        checker = InvariantChecker()
        OoOCore(machine("1P"), validator=checker).run(qsort_trace)
        assert not checker.ok
        assert checker.violations[0].check == "lsq.load_order"

    def test_strict_mode_raises(self, monkeypatch, qsort_trace):
        _inject_lsq_bug(monkeypatch)
        checker = InvariantChecker(strict=True)
        with pytest.raises(ValidationError, match="lsq.load_order"):
            OoOCore(machine("1P"), validator=checker).run(qsort_trace)

    def test_violations_are_bounded(self, monkeypatch, qsort_trace):
        _inject_lsq_bug(monkeypatch)
        checker = InvariantChecker()
        OoOCore(machine("1P"), validator=checker).run(qsort_trace)
        assert len(checker.violations) <= MAX_VIOLATIONS

    def test_custom_bound(self, monkeypatch, qsort_trace):
        _inject_lsq_bug(monkeypatch)
        checker = InvariantChecker(max_violations=5)
        OoOCore(machine("1P"), validator=checker).run(qsort_trace)
        assert len(checker.violations) == 5


class TestEnvironmentWiring:
    def test_env_flag_attaches_strict_checker(self, monkeypatch,
                                              qsort_trace):
        import repro.core.pipeline as pipeline
        monkeypatch.setattr(pipeline, "_ENV_VALIDATE", True)
        core = OoOCore(machine("1P"))
        assert isinstance(core._validate, InvariantChecker)
        assert core._validate.strict
        core.run(qsort_trace)  # clean run: strict checker stays silent

    def test_explicit_validator_wins_over_env(self, monkeypatch):
        import repro.core.pipeline as pipeline
        monkeypatch.setattr(pipeline, "_ENV_VALIDATE", True)
        checker = InvariantChecker()
        core = OoOCore(machine("1P"), validator=checker)
        assert core._validate is checker


class TestViolationType:
    def test_str_and_dict(self):
        violation = Violation(cycle=42, check="rob.order", detail="boom")
        assert str(violation) == "[cycle 42] rob.order: boom"
        assert violation.as_dict() == {"cycle": 42, "check": "rob.order",
                                       "detail": "boom"}


class TestValidationSuite:
    def test_fans_out_and_aggregates(self, monkeypatch, qsort_trace):
        _inject_lsq_bug(monkeypatch)
        first = InvariantChecker(max_violations=3)
        second = InvariantChecker(max_violations=3)
        suite = ValidationSuite([first, second])
        OoOCore(machine("1P"), validator=suite).run(qsort_trace)
        assert not suite.ok
        assert len(first.violations) == 3
        assert len(second.violations) == 3
        assert len(suite.all_violations) == 6

    def test_clean_suite_is_ok(self, qsort_trace):
        suite = ValidationSuite([InvariantChecker(), InvariantChecker()])
        OoOCore(machine("2P"), validator=suite).run(qsort_trace)
        assert suite.ok
        assert suite.all_violations == []
