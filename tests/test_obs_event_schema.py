"""Every emitted event type, checked against the documented schema.

Two cross-checks keep ``EVENT_SCHEMA``, the emit sites, and the table
in ``docs/OBSERVABILITY.md`` from drifting apart:

* the documentation table is parsed and must list exactly the schema's
  event names with exactly the schema's field tuples;
* instrumented simulations chosen to exercise **every** event type run
  under a capturing tracer, and every captured record must carry
  ``cycle``/``event`` plus exactly its schema'd fields.
"""

import io
import re
from pathlib import Path

import pytest

from repro.core import OoOCore
from repro.mem.config import LineBufferOnStore
from repro.obs import EVENT_SCHEMA, JsonlTracer, iter_events
from repro.presets import BEST_SINGLE_PORT, machine
from repro.workloads import build_trace

DOCS = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"


def _documented_schema() -> dict[str, tuple[str, ...]]:
    """Parse the event table out of docs/OBSERVABILITY.md."""
    table: dict[str, tuple[str, ...]] = {}
    in_table = False
    for line in DOCS.read_text(encoding="utf-8").splitlines():
        if line.startswith("| event |"):
            in_table = True
            continue
        if in_table:
            if not line.startswith("|"):
                break
            cells = [cell.strip() for cell in line.strip("|").split("|")]
            if len(cells) != 3 or set(cells[0]) <= {"-"}:
                continue
            name = cells[0].strip("`")
            fields = tuple(re.findall(r"`([^`]+)`", cells[2]))
            table[name] = fields
    return table


class TestDocumentationMatchesSchema:
    def test_table_found(self):
        assert _documented_schema(), "event table missing from docs"

    def test_same_event_names(self):
        assert set(_documented_schema()) == set(EVENT_SCHEMA)

    @pytest.mark.parametrize("event", sorted(EVENT_SCHEMA))
    def test_same_fields(self, event):
        documented = _documented_schema()[event]
        # The docs may annotate fields with extra backticked literals
        # in parentheses; the leading fields must match in order.
        assert documented[:len(EVENT_SCHEMA[event])] == \
            EVENT_SCHEMA[event], (
            f"{event}: docs say {documented}, "
            f"schema says {EVENT_SCHEMA[event]}")


def _capture(workload, config, **overrides):
    trace = build_trace(workload, "tiny")
    buffer = io.StringIO()
    tracer = JsonlTracer(buffer)
    OoOCore(machine(config, **overrides), tracer=tracer).run(trace)
    tracer.close()
    buffer.seek(0)
    import json
    return [json.loads(line) for line in buffer if line.strip()]


def _capture_injected_violation():
    """``validate.violation``: run with the invariant checker attached
    and an intentionally broken LSQ (loads enqueued out of age order),
    so the checker has something real to report into the stream."""
    from repro.core.lsq import LoadStoreQueue
    from repro.validate import InvariantChecker
    trace = build_trace("qsort", "tiny")
    buffer = io.StringIO()
    tracer = JsonlTracer(buffer)
    original = LoadStoreQueue.add_load
    LoadStoreQueue.add_load = lambda self, uop: self.loads.insert(0, uop)
    try:
        OoOCore(machine("1P"), tracer=tracer,
                validator=InvariantChecker(tracer=tracer)).run(trace)
    finally:
        LoadStoreQueue.add_load = original
    tracer.close()
    buffer.seek(0)
    import json
    return [json.loads(line) for line in buffer if line.strip()]


@pytest.fixture(scope="module")
def all_captured_events():
    """Four runs chosen so every schema'd event type fires at least
    once: a port-starved streaming run, a branchy run on the line-buffer
    configuration, a store-heavy run with invalidate-on-store, and a
    validated run with an injected invariant violation."""
    records = []
    records += _capture("stream", "1P")
    records += _capture("qsort", BEST_SINGLE_PORT)
    records += _capture("compress", "1P+LB",
                        line_buffer_on_store=LineBufferOnStore.INVALIDATE)
    records += _capture_injected_violation()
    return records


class TestEmittedEventsMatchSchema:
    def test_every_event_type_fires(self, all_captured_events):
        seen = {record["event"] for record in all_captured_events}
        assert seen == set(EVENT_SCHEMA), (
            f"never emitted: {sorted(set(EVENT_SCHEMA) - seen)}; "
            f"undocumented: {sorted(seen - set(EVENT_SCHEMA))}")

    def test_every_record_has_exact_fields(self, all_captured_events):
        for record in all_captured_events:
            event = record["event"]
            expected = {"cycle", "event", *EVENT_SCHEMA[event]}
            assert set(record) == expected, (
                f"{event} at cycle {record['cycle']}: "
                f"fields {sorted(record)} != schema {sorted(expected)}")
            assert isinstance(record["cycle"], int)
            assert record["cycle"] >= 0

    def test_load_sources_are_known(self, all_captured_events):
        known = {"sq", "wb", "lb", "hit", "miss", "secondary"}
        for record in all_captured_events:
            if record["event"] in ("lsq.load", "dcache.load"):
                assert record["source"] in known


class TestIterEventsAgainstSchema:
    def test_filtered_iteration_round_trips(self, tmp_path):
        trace = build_trace("stream", "tiny")
        path = str(tmp_path / "run.jsonl")
        with JsonlTracer(path) as tracer:
            OoOCore(machine("2P+SC"), tracer=tracer).run(trace)
        for record in iter_events(path, events={"wb.drain"}):
            assert set(record) == {"cycle", "event",
                                   *EVENT_SCHEMA["wb.drain"]}
