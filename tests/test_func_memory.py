"""Unit and property tests for sparse memory and devices."""

import pytest
from hypothesis import given, strategies as st

from repro.func import ConsoleDevice, Device, Memory, MemoryFault
from repro.func.memory import NULL_GUARD, PAGE_SIZE


class TestScalarAccess:
    def test_store_load_round_trip(self):
        memory = Memory()
        memory.store(0x2000, 8, 0x1122334455667788)
        assert memory.load(0x2000, 8) == 0x1122334455667788

    def test_little_endian_layout(self):
        memory = Memory()
        memory.store(0x2000, 4, 0x0A0B0C0D)
        assert memory.load(0x2000, 1) == 0x0D
        assert memory.load(0x2003, 1) == 0x0A

    def test_store_truncates_to_size(self):
        memory = Memory()
        memory.store(0x2000, 1, 0x1FF)
        assert memory.load(0x2000, 1) == 0xFF

    def test_unwritten_memory_reads_zero(self):
        assert Memory().load(0x9999_0000, 8) == 0

    def test_load_signed(self):
        memory = Memory()
        memory.store(0x2000, 1, 0x80)
        assert memory.load_signed(0x2000, 1) == (1 << 64) - 128
        memory.store(0x2010, 2, 0x7FFF)
        assert memory.load_signed(0x2010, 2) == 0x7FFF

    def test_cross_page_access(self):
        memory = Memory()
        addr = 0x3000 + PAGE_SIZE - 4
        memory.store(addr, 8, 0xA1B2C3D4E5F60718)
        assert memory.load(addr, 8) == 0xA1B2C3D4E5F60718


class TestFaults:
    def test_null_guard_load(self):
        with pytest.raises(MemoryFault, match="null-guard"):
            Memory().load(0, 8)

    def test_null_guard_boundary(self):
        memory = Memory()
        with pytest.raises(MemoryFault):
            memory.load(NULL_GUARD - 1, 1)
        memory.load(NULL_GUARD, 1)  # first legal byte

    def test_negative_address(self):
        with pytest.raises(MemoryFault):
            Memory().load(-8, 8)

    def test_beyond_64_bit_space(self):
        with pytest.raises(MemoryFault):
            Memory().load((1 << 64) - 4, 8)


class TestBulkAccess:
    def test_write_read_bytes(self):
        memory = Memory()
        blob = bytes(range(100))
        memory.write_bytes(0x2000, blob)
        assert memory.read_bytes(0x2000, 100) == blob

    def test_bulk_cross_page(self):
        memory = Memory()
        blob = b"x" * (PAGE_SIZE + 100)
        memory.write_bytes(0x2f00, blob)
        assert memory.read_bytes(0x2f00, len(blob)) == blob

    def test_read_cstring(self):
        memory = Memory()
        memory.write_bytes(0x2000, b"hello\x00world")
        assert memory.read_cstring(0x2000) == b"hello"

    def test_read_cstring_unterminated(self):
        memory = Memory()
        memory.write_bytes(0x2000, b"x" * 64)
        with pytest.raises(MemoryFault, match="unterminated"):
            memory.read_cstring(0x2000, limit=16)

    def test_mapped_bytes_grows_on_touch(self):
        memory = Memory()
        assert memory.mapped_bytes == 0
        memory.store(0x2000, 1, 1)
        assert memory.mapped_bytes == PAGE_SIZE


class TestDevices:
    def test_console_collects_output(self):
        memory = Memory()
        console = ConsoleDevice()
        memory.add_device(console)
        for byte in b"ok":
            memory.store(console.base, 1, byte)
        assert console.text() == "ok"

    def test_console_multibyte_store(self):
        console = ConsoleDevice()
        console.store(console.base, 2, 0x6261)  # "ab" little-endian
        assert console.output == b"ab"

    def test_console_is_write_only(self):
        memory = Memory()
        console = ConsoleDevice()
        memory.add_device(console)
        with pytest.raises(MemoryFault, match="write-only"):
            memory.load(console.base, 1)

    def test_overlapping_devices_rejected(self):
        memory = Memory()
        memory.add_device(Device(0x5000_0000, 0x1000))
        with pytest.raises(ValueError, match="overlap"):
            memory.add_device(Device(0x5000_0800, 0x1000))

    def test_device_store_default_read_only(self):
        device = Device(0x5000_0000, 16)
        with pytest.raises(MemoryFault):
            device.store(0x5000_0000, 1, 1)


class TestProperties:
    @given(st.integers(0x2000, 0x10_0000), st.binary(min_size=1,
                                                     max_size=300))
    def test_write_read_round_trip(self, address, blob):
        memory = Memory()
        memory.write_bytes(address, blob)
        assert memory.read_bytes(address, len(blob)) == blob

    @given(st.integers(0x2000, 0x10_0000),
           st.integers(0, (1 << 64) - 1),
           st.sampled_from([1, 2, 4, 8]))
    def test_scalar_round_trip_masks(self, address, value, size):
        memory = Memory()
        memory.store(address, size, value)
        assert memory.load(address, size) == value & ((1 << (8 * size)) - 1)

    @given(st.integers(0x2000, 0x8000), st.binary(min_size=8, max_size=64))
    def test_byte_and_scalar_views_agree(self, address, blob):
        memory = Memory()
        memory.write_bytes(address, blob)
        first_dword = int.from_bytes(blob[:8], "little")
        assert memory.load(address, 8) == first_dword
