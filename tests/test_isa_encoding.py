"""Unit and property tests for the binary instruction encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    EncodingError,
    Instruction,
    Opcode,
    decode,
    decode_program_text,
    encode,
    encode_program_text,
)
from repro.isa.encoding import IMM15_MAX, IMM15_MIN, IMM20_MAX, IMM20_MIN
from repro.isa.opcodes import OPCODE_INFO, Bank, Format
from repro.isa.registers import fp_reg


class TestBasics:
    def test_encodes_to_32_bits(self):
        word = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        assert 0 <= word < (1 << 32)

    def test_distinct_opcodes_distinct_words(self):
        a = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
        b = encode(Instruction(Opcode.SUB, rd=1, rs1=2, rs2=3))
        assert a != b

    def test_round_trip_r_format(self):
        instr = Instruction(Opcode.XOR, rd=31, rs1=30, rs2=29)
        assert decode(encode(instr)) == instr

    def test_round_trip_negative_immediate(self):
        instr = Instruction(Opcode.ADDI, rd=4, rs1=5, imm=-1)
        assert decode(encode(instr)) == instr

    def test_round_trip_store(self):
        instr = Instruction(Opcode.SD, rs1=2, rs2=8, imm=-16)
        assert decode(encode(instr)) == instr

    def test_round_trip_fp_banks(self):
        instr = Instruction(Opcode.FADD, rd=fp_reg(1), rs1=fp_reg(2),
                            rs2=fp_reg(3))
        assert decode(encode(instr)) == instr

    def test_round_trip_mixed_banks(self):
        instr = Instruction(Opcode.FCVT_L_D, rd=7, rs1=fp_reg(9))
        assert decode(encode(instr)) == instr

    def test_round_trip_fp_store(self):
        instr = Instruction(Opcode.FSD, rs1=4, rs2=fp_reg(11), imm=24)
        assert decode(encode(instr)) == instr

    def test_round_trip_u_format(self):
        instr = Instruction(Opcode.JAL, rd=1, imm=IMM20_MIN)
        assert decode(encode(instr)) == instr

    def test_round_trip_branch(self):
        instr = Instruction(Opcode.BLTU, rs1=9, rs2=10, imm=IMM15_MAX)
        assert decode(encode(instr)) == instr


class TestErrors:
    def test_imm15_overflow(self):
        with pytest.raises(EncodingError, match="immediate"):
            encode(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=IMM15_MAX + 1))

    def test_imm15_underflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADDI, rd=1, rs1=2, imm=IMM15_MIN - 1))

    def test_imm20_overflow(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.J, imm=IMM20_MAX + 1))

    def test_fp_register_in_int_field(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.ADD, rd=fp_reg(1), rs1=2, rs2=3))

    def test_int_register_in_fp_field(self):
        with pytest.raises(EncodingError):
            encode(Instruction(Opcode.FADD, rd=3, rs1=fp_reg(1),
                               rs2=fp_reg(2)))

    def test_decode_unknown_opcode(self):
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode(0xFFFF_FFFF)

    def test_decode_not_32_bit(self):
        with pytest.raises(EncodingError):
            decode(1 << 32)
        with pytest.raises(EncodingError):
            decode(-1)


class TestProgramText:
    def test_round_trip(self):
        text = [Instruction(Opcode.ADDI, rd=5, rs1=0, imm=7),
                Instruction(Opcode.SLLI, rd=5, rs1=5, imm=2),
                Instruction(Opcode.HALT)]
        blob = encode_program_text(text)
        assert len(blob) == 12
        assert decode_program_text(blob) == text

    def test_bad_length(self):
        with pytest.raises(EncodingError, match="multiple of 4"):
            decode_program_text(b"\x01\x02\x03")


def _instruction_strategy():
    """Random valid instructions respecting per-opcode operand banks."""
    def build(opcode, fields):
        info = OPCODE_INFO[opcode]
        rd_local, rs1_local, rs2_local, imm15, imm20 = fields

        def reg(bank, local):
            if bank is Bank.NONE:
                return 0
            return local if bank is Bank.INT else local + 32

        imm = 0
        if info.fmt in (Format.I, Format.MEM, Format.B, Format.SYS):
            imm = imm15 if info.has_imm else 0
            if info.fmt is Format.SYS and info.has_imm:
                imm = imm15 % 16  # system register number
        elif info.fmt is Format.U:
            imm = imm20
        return Instruction(
            opcode,
            rd=reg(info.rd_bank, rd_local),
            rs1=reg(info.rs1_bank, rs1_local),
            rs2=reg(info.rs2_bank, rs2_local),
            imm=imm,
        )

    fields = st.tuples(
        st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
        st.integers(IMM15_MIN, IMM15_MAX), st.integers(IMM20_MIN, IMM20_MAX))
    return st.builds(build, st.sampled_from(list(Opcode)), fields)


class TestProperties:
    @given(_instruction_strategy())
    def test_encode_decode_round_trip(self, instr):
        assert decode(encode(instr)) == instr

    @given(_instruction_strategy())
    def test_encoding_is_32_bit(self, instr):
        assert 0 <= encode(instr) < (1 << 32)

    @given(st.lists(_instruction_strategy(), max_size=20))
    def test_program_text_round_trip(self, instructions):
        blob = encode_program_text(instructions)
        assert decode_program_text(blob) == instructions
